"""Random peer sampling (RPS) protocol.

The lower gossip layer of WUP (paper Section II): "the random-peer-sampling
protocol ensures connectivity by building and maintaining a continuously
changing random topology".  We implement the push–pull shuffle of Jelasity
et al. (ACM TOCS 2007) with tail peer selection, as the paper prescribes:

1. periodically, each node selects the entry in its RPS view with the
   **oldest** timestamp;
2. it sends that peer its own fresh descriptor plus **half of its view**
   (the typical parameter, per the paper);
3. the receiver replies symmetrically (push–pull) and both sides merge: the
   union of own and received entries, deduplicated per peer keeping the
   freshest descriptor, then trimmed back to capacity by **uniform random
   sampling**.

The union of all RPS views then approximates a random graph, which gives
BEEP's dislike-orientation a pool of taste-unbiased candidates and gives the
clustering layer a steady stream of fresh candidates.

The protocol object is transport-agnostic: :meth:`RpsProtocol.initiate`
returns a message to deliver, :meth:`RpsProtocol.handle` consumes one and
possibly returns a reply.  The simulation engine (or a real network stack)
shuttles the messages.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.gossip.views import (
    ArrayView,
    ViewEntry,
    make_view,
    shipment_wire_size,
)

__all__ = ["RpsMessage", "RpsProtocol"]


class RpsMessage(NamedTuple):
    """One RPS gossip message (request or reply).

    A NamedTuple: two messages are built per exchange, every cycle, for
    every node — C-level construction keeps them off the hot path.

    Attributes
    ----------
    sender:
        Originating node id.
    entries:
        The shipped descriptors: the sender's own fresh descriptor plus a
        random half of its view.
    is_request:
        ``True`` for the push half of the exchange; the receiver answers a
        request with a reply (``False``), closing the push–pull.
    wire:
        Precomputed :meth:`wire_size`, when the sender's view could price
        the shipment off its wire column (array state plane); ``None``
        falls back to the per-descriptor walk.  Both paths produce the
        same byte count — the sizes are memoised per profile snapshot.
    cols:
        The shipped ``(ids, ts, wire)`` columns aligned with *entries*,
        sliced from the sender's view columns — the receiver's merge
        consumes them directly (:meth:`ArrayView.upsert_columns`) with no
        per-entry field marshaling.  ``None`` on the legacy backend.
    """

    sender: int
    entries: tuple[ViewEntry, ...]
    is_request: bool
    wire: int | None = None
    cols: "tuple | None" = None

    def wire_size(self) -> int:
        """Modelled serialized size in bytes (entries + 1-byte flag)."""
        if self.wire is not None:
            return self.wire
        return 1 + shipment_wire_size(self.entries)


class RpsProtocol:
    """Per-node RPS instance.

    Parameters
    ----------
    node_id:
        Owner's identifier.
    view_size:
        View capacity (the paper's ``RPSvs``, default 30 — Table II).
    rng:
        Dedicated random generator (view sampling, shuffle halves).
    address:
        Modelled network address used in descriptors.
    """

    __slots__ = ("node_id", "view", "rng", "address")

    def __init__(
        self,
        node_id: int,
        view_size: int,
        rng: np.random.Generator,
        address: str | None = None,
    ) -> None:
        self.node_id = node_id
        self.view = make_view(view_size, owner_id=node_id)
        self.rng = rng
        self.address = (
            address
            if address is not None
            else f"10.0.{node_id >> 8 & 255}.{node_id & 255}"
        )

    # -- descriptor -------------------------------------------------------

    def descriptor(self, profile, now: int) -> ViewEntry:
        """Build this node's own fresh descriptor.

        *profile* is the node's current user-profile snapshot
        (:class:`~repro.core.profiles.FrozenProfile`).
        """
        return ViewEntry(
            node_id=self.node_id,
            address=self.address,
            profile=profile,
            timestamp=now,
        )

    # -- active thread ----------------------------------------------------

    def select_partner(self) -> int | None:
        """The gossip partner for this cycle: oldest entry in the view."""
        oldest = self.view.oldest()
        return None if oldest is None else oldest.node_id

    def initiate(self, profile, now: int) -> tuple[int, RpsMessage] | None:
        """Start one gossip exchange.

        Returns ``(partner_id, request)`` or ``None`` when the view is empty
        (an isolated node waits for contact or re-bootstraps).
        """
        partner = self.select_partner()
        if partner is None:
            return None
        payload, wire, cols = self._shipment(profile, now, exclude=partner)
        return partner, RpsMessage(
            self.node_id, payload, is_request=True, wire=wire, cols=cols
        )

    # -- passive thread ---------------------------------------------------

    def handle(self, msg: RpsMessage, profile, now: int) -> RpsMessage | None:
        """Process an incoming message; return the reply for a request.

        Both request and reply handling merge the received entries into the
        view (union, freshest-per-peer, random trim) — the paper's "keep a
        random sample of the union of its own view and the received one".
        """
        reply: RpsMessage | None = None
        if msg.is_request:
            payload, wire, cols = self._shipment(
                profile, now, exclude=msg.sender
            )
            reply = RpsMessage(
                self.node_id, payload, is_request=False, wire=wire, cols=cols
            )
        self.view.upsert_columns(msg.entries, msg.cols)
        self.view.trim_random(self.rng)
        return reply

    # -- internals --------------------------------------------------------

    def _shipment(
        self, profile, now: int, exclude: int
    ) -> "tuple[tuple[ViewEntry, ...], int | None, tuple | None]":
        """Own fresh descriptor + a random half of the view, plus columns.

        The partner's own entry is excluded from the shipped half (it learns
        nothing from its own descriptor), matching standard shuffle
        implementations.  Returns ``(payload, wire, cols)``: on the array
        state plane the shipment's ``(ids, ts, wire)`` columns are sliced
        off the view's own columns and its byte size comes from one wire-
        column sum; the legacy backend returns ``(payload, None, None)``
        and the message measures itself by walking descriptors — same
        bytes either way.
        """
        view = self.view
        half = len(view) // 2
        if isinstance(view, ArrayView):
            # columnar path: sample over the candidate *count* (no list is
            # materialised), then gather the picked slots in one pass
            cand_count, excl_slot = view.shipment_candidates(exclude)
            sel = None
            if half > 0 and cand_count:
                k = min(half, cand_count)
                sel = self.rng.permutation(cand_count)[:k]
            own = self.descriptor(profile, now)
            shipped, cols, wire = view.ship_selected(
                sel, excl_slot, own, self.node_id, now
            )
            return (own, *shipped), wire, cols
        candidates = view.entries_except(exclude)
        if half > 0 and candidates:
            k = min(half, len(candidates))
            # a permutation prefix is a uniform sample without replacement
            # and draws measurably faster than Generator.choice
            idx = self.rng.permutation(len(candidates))[:k].tolist()
            shipped = [candidates[i] for i in idx]
        else:
            shipped = []
        return (self.descriptor(profile, now), *shipped), None, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RpsProtocol(node={self.node_id}, view={len(self.view)})"
