"""Bounded peer views for gossip protocols (paper Section II).

Each protocol at each node maintains a *view*: a bounded data structure of
entries, one per known peer, where every entry carries

* the peer's network address (modelled; used only for wire-size accounting),
* the peer's node identifier,
* the peer's interest profile (a :class:`~repro.core.profiles.FrozenProfile`
  snapshot taken when the peer last gossiped), and
* a timestamp recording when the peer generated that information.

Both the RPS and the clustering protocol periodically contact the entry with
the **oldest** timestamp — the paper follows Jelasity et al.'s tail-based
peer selection, which actively refreshes the stalest information and evicts
dead peers.
"""

from __future__ import annotations

import heapq
from operator import index as _index
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, NamedTuple

import numpy as np

from repro._native import kernel as _native
from repro.core.profiles import FrozenProfile
from repro.utils.exceptions import ConfigurationError

__all__ = ["ViewEntry", "View", "descriptor_wire_size", "shipment_wire_size"]

#: Modelled wire size of an entry's fixed fields: IPv4 address (4) + node id
#: (8) + timestamp (8).
_ENTRY_FIXED_BYTES = 4 + 8 + 8

#: Native ranked-trim crossover: below this many candidate rows the Python
#: tuple sort beats the kernel call's array-marshaling overhead.
_NATIVE_TRIM_MIN_ROWS = 16

#: Gossiped profiles travel as compact set digests, not as full triplet
#: lists: the similarity metrics only need the liked/rated *sets*, so a
#: production implementation ships two Bloom filters at ~10 bits per entry
#: (1.25 B) plus a 16-byte filter header.  This keeps WUP's view-management
#: bandwidth in the paper's "about 4 Kbps" regime (Section V-F) instead of
#: ballooning with the profile window.
_PROFILE_DIGEST_HEADER_BYTES = 16
_PROFILE_DIGEST_BYTES_PER_ENTRY = 1.25


def shipment_wire_size(entries: Iterable[ViewEntry]) -> int:
    """Total modelled size of shipped descriptors, in bytes.

    The hoisted form of ``sum(descriptor_wire_size(e) for e in entries)``:
    gossip messages measure their payload once per transmission, and at
    paper scale that sum runs over ~10⁵ descriptors per cycle — reading
    the memo slot inline skips a Python call per descriptor.
    """
    total = 0
    for e in entries:
        size = getattr(e[2], "wire_cache", None)  # e[2] = entry.profile
        if size is None:
            size = descriptor_wire_size(e)
        total += size
    return total


def descriptor_wire_size(entry: "ViewEntry") -> int:
    """Modelled serialized size of one view entry, in bytes.

    The size depends only on the (immutable) profile snapshot, so it is
    memoised on the snapshot — descriptors are re-shipped every cycle but
    re-measured once.  ``ceil(1.25 * n)`` is computed in integer arithmetic.
    """
    profile = entry.profile
    size = getattr(profile, "wire_cache", None)
    if size is None:
        size = (
            _ENTRY_FIXED_BYTES
            + _PROFILE_DIGEST_HEADER_BYTES
            + (5 * len(profile) + 3) // 4
        )
        try:
            profile.wire_cache = size
        except AttributeError:
            pass  # mutable / foreign profile-likes: recompute per call
    return size


class ViewEntry(NamedTuple):
    """One peer descriptor inside a view.

    A NamedTuple: descriptors are constructed per shipment and their fields
    read per merged candidate on the gossip hot path, where C-level tuple
    construction and access beat a (frozen) dataclass measurably.

    Attributes
    ----------
    node_id:
        The peer's identifier.
    address:
        The peer's (modelled) network address.
    profile:
        Immutable snapshot of the peer's user profile at *timestamp*.
    timestamp:
        Cycle at which the peer generated this descriptor.  Fresher
        descriptors for the same peer always win during merges.
    """

    node_id: int
    address: str
    profile: FrozenProfile
    timestamp: int

    def aged_copy(self, timestamp: int) -> "ViewEntry":
        """Return the same descriptor with a rewritten timestamp."""
        return self._replace(timestamp=timestamp)


class View:
    """A bounded, per-peer-deduplicated set of :class:`ViewEntry`.

    Parameters
    ----------
    capacity:
        Maximum number of entries (the paper's ``RPSvs`` / ``WUPvs``).
    owner_id:
        The owning node's id; descriptors for the owner are never stored
        (a node does not keep itself in its own view).
    """

    __slots__ = (
        "capacity",
        "owner_id",
        "_entries",
        "_mutations",
        "_list_cache",
        "_list_tag",
    )

    def __init__(self, capacity: int, owner_id: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"view capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self.owner_id = int(owner_id)
        self._entries: dict[int, ViewEntry] = {}
        self._mutations: int = 0
        #: entry-list memo, keyed by the mutation counter: the list is
        #: rebuilt at most once per content change however many times the
        #: gossip layer reads it within an exchange
        self._list_cache: list[ViewEntry] = []
        self._list_tag: int = -1

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._entries.values())

    def _entry_list(self) -> list[ViewEntry]:
        """The memoised entry list (shared — callers must not mutate)."""
        if self._list_tag != self._mutations:
            self._list_cache = list(self._entries.values())
            self._list_tag = self._mutations
        return self._list_cache

    def entries(self) -> list[ViewEntry]:
        """All entries (insertion order; do not rely on ordering)."""
        return list(self._entry_list())

    def entries_except(self, exclude: int) -> list[ViewEntry]:
        """All entries but the one for *exclude* (single pass).

        Gossip shipments exclude the partner's own descriptor; this avoids
        materialising the full :meth:`entries` list first.
        """
        entries = self._entry_list()
        if exclude not in self._entries:
            return list(entries)
        return [e for e in entries if e.node_id != exclude]

    def node_ids(self) -> list[int]:
        """Identifiers of all peers currently in the view."""
        return list(self._entries.keys())

    def get(self, node_id: int) -> ViewEntry | None:
        """The entry for *node_id*, or ``None``."""
        return self._entries.get(node_id)

    @property
    def mutation_count(self) -> int:
        """Counter bumped on every content change (cache invalidation tag)."""
        return self._mutations

    #: (timestamp, node_id) sort key for :meth:`oldest` — a C-level
    #: itemgetter over the NamedTuple fields keeps the per-cycle partner
    #: selection off the Python bytecode loop (it runs twice per node per
    #: cycle; field indices follow :class:`ViewEntry`)
    _OLDEST_KEY = itemgetter(3, 0)

    def oldest(self) -> ViewEntry | None:
        """The entry with the smallest timestamp (gossip target selection).

        Ties are broken by node id so behaviour is deterministic under a
        fixed seed.
        """
        if not self._entries:
            return None
        return min(self._entries.values(), key=View._OLDEST_KEY)

    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # -- mutation ---------------------------------------------------------

    def upsert(self, entry: ViewEntry) -> None:
        """Insert *entry*, keeping the freshest descriptor per peer.

        Ignores descriptors of the owner.  May grow the view beyond capacity;
        callers must follow with :meth:`trim_random` or :meth:`trim_ranked`.
        """
        if entry.node_id == self.owner_id:
            return
        current = self._entries.get(entry.node_id)
        if current is None or entry.timestamp >= current.timestamp:
            self._entries[entry.node_id] = entry
            self._mutations += 1

    def upsert_all(self, entries: Iterable[ViewEntry]) -> None:
        """Bulk :meth:`upsert` (inlined: this runs per merged descriptor).

        Fields are read by tuple index (``entry[0]`` = node id, ``entry[3]``
        = timestamp): C-level indexing on the hottest loop of the gossip
        layer, where every merged descriptor passes through.
        """
        stored = self._entries
        owner = self.owner_id
        get = stored.get
        changed = 0
        for entry in entries:
            nid = entry[0]
            if nid == owner:
                continue
            current = get(nid)
            if current is None or entry[3] >= current[3]:
                stored[nid] = entry
                changed += 1
        if changed:
            self._mutations += changed

    def remove(self, node_id: int) -> None:
        """Drop the entry for *node_id* (no-op if absent)."""
        if self._entries.pop(node_id, None) is not None:
            self._mutations += 1

    def evict_older_than(self, cutoff: int) -> int:
        """Drop entries with ``timestamp < cutoff`` (churn healing).

        Returns the number of entries evicted.
        """
        stale = [nid for nid, e in self._entries.items() if e.timestamp < cutoff]
        for nid in stale:
            del self._entries[nid]
        if stale:
            self._mutations += 1
        return len(stale)

    def trim_random(self, rng: np.random.Generator) -> None:
        """Shrink to capacity by keeping a uniform random sample.

        This is the RPS merge rule: "the receiving node renews its view by
        keeping a random sample of the union of its own view and the
        received one" (Section II).
        """
        excess = len(self._entries) - self.capacity
        if excess <= 0:
            return
        ids = list(self._entries.keys())
        # permutation prefix = uniform sample without replacement, cheaper
        # than Generator.choice for the small sizes views work at
        drop = rng.permutation(len(ids))[:excess].tolist()
        for idx in drop:
            del self._entries[ids[idx]]
        self._mutations += 1

    def trim_ranked(
        self,
        key: "Callable[[ViewEntry], float] | None" = None,
        *,
        scores: "Mapping[int, float] | None" = None,
        default: float = 0.0,
    ) -> None:
        """Shrink to capacity keeping the entries with the **highest** score.

        This is the clustering merge rule: keep the candidates whose profiles
        are closest to the owner's.  Ties are broken by descriptor freshness
        then node id for determinism.

        Parameters
        ----------
        key:
            Maps a :class:`ViewEntry` to a sortable score (scalar path).
        scores:
            Precomputed ``node_id -> score`` mapping (batch path); entries
            missing from the mapping score *default*.  Exactly one of *key*
            and *scores* must be given.

        Only the top ``capacity`` entries are selected (``heapq.nlargest``),
        avoiding a full sort of the merge's candidate pool.
        """
        if (key is None) == (scores is None):
            raise ConfigurationError(
                "trim_ranked needs exactly one of `key` and `scores`"
            )
        if len(self._entries) <= self.capacity:
            return
        if scores is not None:
            # delegate to the aligned fast path — one ranking implementation
            get = scores.get
            entries = list(self._entries.values())
            self.trim_ranked_aligned(
                entries, [get(e.node_id, default) for e in entries]
            )
            return

        def rank(e: ViewEntry):
            return (key(e), e.timestamp, -e.node_id)

        keep = heapq.nlargest(self.capacity, self._entries.values(), key=rank)
        self._entries = {e.node_id: e for e in keep}
        self._mutations += 1

    def keep_ranked(
        self, entries: "list[ViewEntry]", indices: "np.ndarray"
    ) -> None:
        """Replace the view's contents with a ranked selection.

        *entries* is the snapshot the caller just scored and *indices* the
        kept entry indices **in rank order** (best first) — the output of
        the native ``merge_rank`` kernel.  The rebuilt dict's insertion
        order matches :meth:`trim_ranked_aligned`'s exactly, which keeps
        every downstream iteration (sampling, shipping) and hence RNG
        consumption identical.
        """
        self._entries = {
            entries[i][0]: entries[i] for i in indices.tolist()
        }
        self._mutations += 1

    def trim_ranked_aligned(
        self, entries: "list[ViewEntry]", scores: "list[float]"
    ) -> None:
        """Ranked trim from scores aligned with an :meth:`entries` snapshot.

        The fast path behind :meth:`trim_ranked`'s mapping form: *entries*
        must be the snapshot the caller just scored (``self.entries()``
        taken after its last mutation) and *scores* its aligned scores.
        One pass builds ``(score, timestamp, -node_id, index)`` rows and a
        C-level tuple sort selects the top ``capacity`` — the same total
        order as :meth:`trim_ranked` without a key call per candidate.
        (``numpy.lexsort`` and ``heapq.nlargest`` formulations were both
        measured and rejected: slower at the merge pool sizes the
        protocols produce, ~40-70 candidates.)

        With the native tier active (:mod:`repro._native`) the selection
        runs through the compiled ``rank_topk`` kernel instead — the same
        descending ``(score, timestamp, -node_id)`` total order (node ids
        are unique, so the order is deterministic), the same kept set, the
        same kept *dict order*, hence identical downstream RNG draws.
        """
        k = len(entries)
        if k <= self.capacity:
            return
        nk = _native()
        if nk is not None and k >= _NATIVE_TRIM_MIN_ROWS:
            try:
                # operator.index rejects non-integer keys (a float
                # timestamp would otherwise be silently truncated by the
                # int64 conversion and sort on different keys than the
                # Python tuple sort below)
                keep = nk.rank_topk(
                    np.fromiter(scores, dtype=np.float64, count=k),
                    np.fromiter(
                        (_index(e[3]) for e in entries), np.int64, count=k
                    ),
                    np.fromiter(
                        (_index(e[0]) for e in entries), np.int64, count=k
                    ),
                    self.capacity,
                )
            except (OverflowError, ValueError, TypeError):
                # exotic timestamps / node ids (non-integers, outside
                # int64): the Python tuple sort handles arbitrary keys
                keep = None
            if keep is not None:
                self.keep_ranked(entries, keep)
                return
        rows = sorted(
            (
                (scores[i], e[3], -e[0], i)
                for i, e in enumerate(entries)
            ),
            reverse=True,
        )
        self._entries = {
            entries[row[3]][0]: entries[row[3]]
            for row in rows[: self.capacity]
        }
        self._mutations += 1

    def sample(self, k: int, rng: np.random.Generator) -> list[ViewEntry]:
        """Uniform sample (without replacement) of ``min(k, len)`` entries."""
        entries = self._entry_list()
        if k >= len(entries):
            return list(entries)
        idx = rng.permutation(len(entries))[:k].tolist()
        return [entries[i] for i in idx]

    def wire_size(self) -> int:
        """Modelled serialized size of the whole view, in bytes."""
        return shipment_wire_size(self._entries.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"View(owner={self.owner_id}, size={len(self)}/{self.capacity})"
        )
