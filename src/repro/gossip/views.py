"""Bounded peer views for gossip protocols (paper Section II).

Each protocol at each node maintains a *view*: a bounded data structure of
entries, one per known peer, where every entry carries

* the peer's network address (modelled; used only for wire-size accounting),
* the peer's node identifier,
* the peer's interest profile (a :class:`~repro.core.profiles.FrozenProfile`
  snapshot taken when the peer last gossiped), and
* a timestamp recording when the peer generated that information.

Both the RPS and the clustering protocol periodically contact the entry with
the **oldest** timestamp — the paper follows Jelasity et al.'s tail-based
peer selection, which actively refreshes the stalest information and evicts
dead peers.
"""

from __future__ import annotations

import heapq
from contextlib import suppress
from operator import index as _index
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, NamedTuple

import numpy as np

from repro._native import kernel as _native
from repro.core.arraystate import array_state_enabled
from repro.core.profiles import FrozenProfile
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ViewEntry",
    "View",
    "ArrayView",
    "make_view",
    "descriptor_wire_size",
    "shipment_wire_size",
]

#: Modelled wire size of an entry's fixed fields: IPv4 address (4) + node id
#: (8) + timestamp (8).
_ENTRY_FIXED_BYTES = 4 + 8 + 8

#: Native ranked-trim crossover: below this many candidate rows the Python
#: tuple sort beats the kernel call's array-marshaling overhead.
_NATIVE_TRIM_MIN_ROWS = 16

#: Gossiped profiles travel as compact set digests, not as full triplet
#: lists: the similarity metrics only need the liked/rated *sets*, so a
#: production implementation ships two Bloom filters at ~10 bits per entry
#: (1.25 B) plus a 16-byte filter header.  This keeps WUP's view-management
#: bandwidth in the paper's "about 4 Kbps" regime (Section V-F) instead of
#: ballooning with the profile window.
_PROFILE_DIGEST_HEADER_BYTES = 16
_PROFILE_DIGEST_BYTES_PER_ENTRY = 1.25


def shipment_wire_size(entries: Iterable[ViewEntry]) -> int:
    """Total modelled size of shipped descriptors, in bytes.

    The hoisted form of ``sum(descriptor_wire_size(e) for e in entries)``:
    gossip messages measure their payload once per transmission, and at
    paper scale that sum runs over ~10⁵ descriptors per cycle — reading
    the memo slot inline skips a Python call per descriptor.
    """
    total = 0
    for e in entries:
        size = getattr(e[2], "wire_cache", None)  # e[2] = entry.profile
        if size is None:
            size = descriptor_wire_size(e)
        total += size
    return total


def descriptor_wire_size(entry: "ViewEntry") -> int:
    """Modelled serialized size of one view entry, in bytes.

    The size depends only on the (immutable) profile snapshot, so it is
    memoised on the snapshot — descriptors are re-shipped every cycle but
    re-measured once.  ``ceil(1.25 * n)`` is computed in integer arithmetic.
    """
    profile = entry.profile
    size = getattr(profile, "wire_cache", None)
    if size is None:
        size = (
            _ENTRY_FIXED_BYTES
            + _PROFILE_DIGEST_HEADER_BYTES
            + (5 * len(profile) + 3) // 4
        )
        with suppress(AttributeError):
            # mutable / foreign profile-likes: recompute per call
            profile.wire_cache = size
    return size


class ViewEntry(NamedTuple):
    """One peer descriptor inside a view.

    A NamedTuple: descriptors are constructed per shipment and their fields
    read per merged candidate on the gossip hot path, where C-level tuple
    construction and access beat a (frozen) dataclass measurably.

    Attributes
    ----------
    node_id:
        The peer's identifier.
    address:
        The peer's (modelled) network address.
    profile:
        Immutable snapshot of the peer's user profile at *timestamp*.
    timestamp:
        Cycle at which the peer generated this descriptor.  Fresher
        descriptors for the same peer always win during merges.
    """

    node_id: int
    address: str
    profile: FrozenProfile
    timestamp: int

    def aged_copy(self, timestamp: int) -> "ViewEntry":
        """Return the same descriptor with a rewritten timestamp."""
        return self._replace(timestamp=timestamp)


class View:
    """A bounded, per-peer-deduplicated set of :class:`ViewEntry`.

    Parameters
    ----------
    capacity:
        Maximum number of entries (the paper's ``RPSvs`` / ``WUPvs``).
    owner_id:
        The owning node's id; descriptors for the owner are never stored
        (a node does not keep itself in its own view).
    """

    __slots__ = (
        "capacity",
        "owner_id",
        "_entries",
        "_mutations",
        "_list_cache",
        "_list_tag",
    )

    def __init__(self, capacity: int, owner_id: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"view capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self.owner_id = int(owner_id)
        self._entries: dict[int, ViewEntry] = {}
        self._mutations: int = 0
        #: entry-list memo, keyed by the mutation counter: the list is
        #: rebuilt at most once per content change however many times the
        #: gossip layer reads it within an exchange
        self._list_cache: list[ViewEntry] = []
        self._list_tag: int = -1

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._entries.values())

    def _entry_list(self) -> list[ViewEntry]:
        """The memoised entry list (shared — callers must not mutate)."""
        if self._list_tag != self._mutations:
            self._list_cache = list(self._entries.values())
            self._list_tag = self._mutations
        return self._list_cache

    def entries(self) -> list[ViewEntry]:
        """All entries (insertion order; do not rely on ordering)."""
        return list(self._entry_list())

    def entries_except(self, exclude: int) -> list[ViewEntry]:
        """All entries but the one for *exclude* (single pass).

        Gossip shipments exclude the partner's own descriptor; this avoids
        materialising the full :meth:`entries` list first.
        """
        entries = self._entry_list()
        if exclude not in self._entries:
            return list(entries)
        return [e for e in entries if e.node_id != exclude]

    def node_ids(self) -> list[int]:
        """Identifiers of all peers currently in the view."""
        return list(self._entries.keys())

    def profiles(self) -> list:
        """The stored peers' profile snapshots, in entry order.

        The facade accessor consumers (BEEP's orientation pool, the
        cold-start popularity scan) use instead of reaching into entry
        internals — it survives any storage-backend swap.
        """
        return [e[2] for e in self._entry_list()]

    def get(self, node_id: int) -> ViewEntry | None:
        """The entry for *node_id*, or ``None``."""
        return self._entries.get(node_id)

    @property
    def mutation_count(self) -> int:
        """Counter bumped on every content change (cache invalidation tag)."""
        return self._mutations

    #: (timestamp, node_id) sort key for :meth:`oldest` — a C-level
    #: itemgetter over the NamedTuple fields keeps the per-cycle partner
    #: selection off the Python bytecode loop (it runs twice per node per
    #: cycle; field indices follow :class:`ViewEntry`)
    _OLDEST_KEY = itemgetter(3, 0)

    def oldest(self) -> ViewEntry | None:
        """The entry with the smallest timestamp (gossip target selection).

        Ties are broken by node id so behaviour is deterministic under a
        fixed seed.
        """
        if not self._entries:
            return None
        return min(self._entries.values(), key=View._OLDEST_KEY)

    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # -- mutation ---------------------------------------------------------

    def upsert(self, entry: ViewEntry) -> None:
        """Insert *entry*, keeping the freshest descriptor per peer.

        Ignores descriptors of the owner.  May grow the view beyond capacity;
        callers must follow with :meth:`trim_random` or :meth:`trim_ranked`.
        """
        if entry.node_id == self.owner_id:
            return
        current = self._entries.get(entry.node_id)
        if current is None or entry.timestamp >= current.timestamp:
            self._entries[entry.node_id] = entry
            self._mutations += 1

    def upsert_columns(
        self,
        entries: "tuple[ViewEntry, ...] | list[ViewEntry]",
        cols: "object | None" = None,
    ) -> None:
        """Merge a shipment; the legacy backend ignores shipped columns.

        The facade twin of :meth:`ArrayView.upsert_columns`: callers hand
        over whatever the message carried and each backend consumes what
        it can use.
        """
        self.upsert_all(entries)

    def entries_with_columns(self):
        """``(entries, None)`` — the legacy backend has no columns."""
        return self._entry_list(), None

    def upsert_all(self, entries: Iterable[ViewEntry]) -> None:
        """Bulk :meth:`upsert` (inlined: this runs per merged descriptor).

        Fields are read by tuple index (``entry[0]`` = node id, ``entry[3]``
        = timestamp): C-level indexing on the hottest loop of the gossip
        layer, where every merged descriptor passes through.
        """
        stored = self._entries
        owner = self.owner_id
        get = stored.get
        changed = 0
        for entry in entries:
            nid = entry[0]
            if nid == owner:
                continue
            current = get(nid)
            if current is None or entry[3] >= current[3]:
                stored[nid] = entry
                changed += 1
        if changed:
            self._mutations += changed

    def remove(self, node_id: int) -> None:
        """Drop the entry for *node_id* (no-op if absent)."""
        if self._entries.pop(node_id, None) is not None:
            self._mutations += 1

    def evict_older_than(self, cutoff: int) -> int:
        """Drop entries with ``timestamp < cutoff`` (churn healing).

        Returns the number of entries evicted.
        """
        stale = [nid for nid, e in self._entries.items() if e.timestamp < cutoff]
        for nid in stale:
            del self._entries[nid]
        if stale:
            self._mutations += 1
        return len(stale)

    def trim_random(self, rng: np.random.Generator) -> None:
        """Shrink to capacity by keeping a uniform random sample.

        This is the RPS merge rule: "the receiving node renews its view by
        keeping a random sample of the union of its own view and the
        received one" (Section II).
        """
        excess = len(self._entries) - self.capacity
        if excess <= 0:
            return
        ids = list(self._entries.keys())
        # permutation prefix = uniform sample without replacement, cheaper
        # than Generator.choice for the small sizes views work at
        drop = rng.permutation(len(ids))[:excess].tolist()
        for idx in drop:
            del self._entries[ids[idx]]
        self._mutations += 1

    def trim_ranked(
        self,
        key: "Callable[[ViewEntry], float] | None" = None,
        *,
        scores: "Mapping[int, float] | None" = None,
        default: float = 0.0,
    ) -> None:
        """Shrink to capacity keeping the entries with the **highest** score.

        This is the clustering merge rule: keep the candidates whose profiles
        are closest to the owner's.  Ties are broken by descriptor freshness
        then node id for determinism.

        Parameters
        ----------
        key:
            Maps a :class:`ViewEntry` to a sortable score (scalar path).
        scores:
            Precomputed ``node_id -> score`` mapping (batch path); entries
            missing from the mapping score *default*.  Exactly one of *key*
            and *scores* must be given.

        Only the top ``capacity`` entries are selected (``heapq.nlargest``),
        avoiding a full sort of the merge's candidate pool.
        """
        if (key is None) == (scores is None):
            raise ConfigurationError(
                "trim_ranked needs exactly one of `key` and `scores`"
            )
        if len(self._entries) <= self.capacity:
            return
        if scores is not None:
            # delegate to the aligned fast path — one ranking implementation
            get = scores.get
            entries = list(self._entries.values())
            self.trim_ranked_aligned(
                entries, [get(e.node_id, default) for e in entries]
            )
            return

        def rank(e: ViewEntry):
            return (key(e), e.timestamp, -e.node_id)

        keep = heapq.nlargest(self.capacity, self._entries.values(), key=rank)
        self._entries = {e.node_id: e for e in keep}
        self._mutations += 1

    def keep_ranked(
        self, entries: "list[ViewEntry]", indices: "np.ndarray"
    ) -> None:
        """Replace the view's contents with a ranked selection.

        *entries* is the snapshot the caller just scored and *indices* the
        kept entry indices **in rank order** (best first) — the output of
        the native ``merge_rank`` kernel.  The rebuilt dict's insertion
        order matches :meth:`trim_ranked_aligned`'s exactly, which keeps
        every downstream iteration (sampling, shipping) and hence RNG
        consumption identical.
        """
        self._entries = {
            entries[i][0]: entries[i] for i in indices.tolist()
        }
        self._mutations += 1

    def trim_ranked_aligned(
        self, entries: "list[ViewEntry]", scores: "list[float]"
    ) -> None:
        """Ranked trim from scores aligned with an :meth:`entries` snapshot.

        The fast path behind :meth:`trim_ranked`'s mapping form: *entries*
        must be the snapshot the caller just scored (``self.entries()``
        taken after its last mutation) and *scores* its aligned scores.
        One pass builds ``(score, timestamp, -node_id, index)`` rows and a
        C-level tuple sort selects the top ``capacity`` — the same total
        order as :meth:`trim_ranked` without a key call per candidate.
        (``numpy.lexsort`` and ``heapq.nlargest`` formulations were both
        measured and rejected: slower at the merge pool sizes the
        protocols produce, ~40-70 candidates.)

        With the native tier active (:mod:`repro._native`) the selection
        runs through the compiled ``rank_topk`` kernel instead — the same
        descending ``(score, timestamp, -node_id)`` total order (node ids
        are unique, so the order is deterministic), the same kept set, the
        same kept *dict order*, hence identical downstream RNG draws.
        """
        k = len(entries)
        if k <= self.capacity:
            return
        nk = _native()
        if nk is not None and k >= _NATIVE_TRIM_MIN_ROWS:
            try:
                # operator.index rejects non-integer keys (a float
                # timestamp would otherwise be silently truncated by the
                # int64 conversion and sort on different keys than the
                # Python tuple sort below)
                keep = nk.rank_topk(
                    np.fromiter(scores, dtype=np.float64, count=k),
                    np.fromiter(
                        (_index(e[3]) for e in entries), np.int64, count=k
                    ),
                    np.fromiter(
                        (_index(e[0]) for e in entries), np.int64, count=k
                    ),
                    self.capacity,
                )
            except (OverflowError, ValueError, TypeError):
                # exotic timestamps / node ids (non-integers, outside
                # int64): the Python tuple sort handles arbitrary keys
                keep = None
            if keep is not None:
                self.keep_ranked(entries, keep)
                return
        rows = sorted(
            (
                (scores[i], e[3], -e[0], i)
                for i, e in enumerate(entries)
            ),
            reverse=True,
        )
        self._entries = {
            entries[row[3]][0]: entries[row[3]]
            for row in rows[: self.capacity]
        }
        self._mutations += 1

    def sample(self, k: int, rng: np.random.Generator) -> list[ViewEntry]:
        """Uniform sample (without replacement) of ``min(k, len)`` entries."""
        entries = self._entry_list()
        if k >= len(entries):
            return list(entries)
        idx = rng.permutation(len(entries))[:k].tolist()
        return [entries[i] for i in idx]

    def wire_size(self) -> int:
        """Modelled serialized size of the whole view, in bytes."""
        return shipment_wire_size(self._entries.values())

    def storage_nbytes(self) -> int:
        """In-memory footprint of the view's own containers, in bytes.

        Counts the storage this backend owns (dict + list memo), not the
        shared :class:`ViewEntry`/profile objects — the facade accessor
        the memory benchmarks use on either backend.
        """
        import sys

        return sys.getsizeof(self._entries) + sys.getsizeof(self._list_cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"View(owner={self.owner_id}, size={len(self)}/{self.capacity})"
        )


class ArrayView:
    """Array-backed view storage behind the :class:`View` facade.

    The columnar twin of :class:`View`.  Entries live in one preallocated
    state block per view:

    * ``_cols`` — a ``(3, alloc)`` ``int64`` block whose rows are the
      node-id, timestamp and wire-size columns (``_ids``/``_ts``/``_wire``
      are row views into it);
    * ``_pobj`` — the payload-reference column: a numpy *object* array
      holding the :class:`ViewEntry` objects, slot-aligned with the
      columns.

    The base addresses of both are cached on the view (refreshed on
    reallocation), so the native bookkeeping kernels
    (:meth:`~repro._native.NativeKernel.state_upsert`,
    ``state_select``, ``state_oldest``) receive plain integers and walk
    the columns — including moving the payload references — entirely in
    C, with no per-call buffer marshaling and no per-entry field reads.

    Slot order replicates dict insertion-order semantics exactly —
    replacement keeps the slot, insertion appends, deletion compacts
    preserving relative order — and every method draws RNG exactly as its
    :class:`View` counterpart, so a fixed-seed run is **bitwise
    identical** under either backend (the array-state equivalence tests
    enforce this end to end).

    Node ids and timestamps must fit ``int64`` (every simulation id is a
    small int; exotic keys belong on the legacy backend).

    Columnar shipments are described by a ``(ref, stride, count)`` tuple
    — the backing ``(3, stride)`` array (kept alive by the tuple), its
    row stride and the number of shipped rows — produced by
    :meth:`ship_selected` / :meth:`ship_all_except` /
    :meth:`entries_with_columns` and consumed by :meth:`upsert_columns`.
    """

    __slots__ = (
        "capacity",
        "owner_id",
        "_n",
        "_alloc",
        "_cols",
        "_ids",
        "_ts",
        "_wire",
        "_pobj",
        "_cols_addr",
        "_pobj_addr",
        "_index",
        "_index_tag",
        "_mutations",
    )

    def __init__(self, capacity: int, owner_id: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"view capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self.owner_id = int(owner_id)
        self._n = 0
        self._mutations = 0
        #: id -> slot map, rebuilt lazily when a lookup finds it stale
        self._index: dict[int, int] = {}
        self._index_tag: int = -1
        self._allocate(max(self.capacity + 8, 16))

    # -- internals --------------------------------------------------------

    def _allocate(self, alloc: int) -> None:
        """(Re)allocate the state block, carrying the live slots over."""
        cols = np.empty((3, alloc), dtype=np.int64)
        pobj = np.empty(alloc, dtype=object)
        n = self._n
        if n:
            cols[:, :n] = self._cols[:, :n]
            pobj[:n] = self._pobj[:n]
        self._cols = cols
        self._pobj = pobj
        self._ids = cols[0]
        self._ts = cols[1]
        self._wire = cols[2]
        self._alloc = alloc
        self._cols_addr = cols.ctypes.data
        self._pobj_addr = pobj.ctypes.data

    def _reserve(self, extra: int) -> None:
        """Grow the state block so ``extra`` appends cannot overrun it."""
        need = self._n + extra
        if need > self._alloc:
            self._allocate(max(self._alloc * 2, need))

    def _ensure_index(self) -> dict[int, int]:
        """The id→slot map, rebuilt only when a mutation left it stale."""
        if self._index_tag != self._mutations:
            self._index = {
                nid: i for i, nid in enumerate(self._ids[: self._n].tolist())
            }
            self._index_tag = self._mutations
        return self._index

    @staticmethod
    def _wire_of(entry: ViewEntry) -> int:
        """Memoised descriptor wire size, or ``-1`` when not memoisable."""
        profile = entry[2]
        size = getattr(profile, "wire_cache", None)
        if size is not None:
            return size
        size = descriptor_wire_size(entry)
        # mutable / foreign profile-likes take no memo: store a sentinel so
        # wire sums recompute them per call, exactly like the legacy walk
        if getattr(profile, "wire_cache", None) is None:
            return -1
        return size

    def _select(self, sel: np.ndarray) -> None:
        """Keep exactly the slots in *sel* (any order), in ``sel`` order.

        The shared backend of compaction and ranked reordering: one
        ``state_select`` kernel call, or the equivalent numpy gather.
        """
        k = sel.size
        n = self._n
        nk = _native()
        if nk is None or not nk.state_select(
            self._cols_addr, self._alloc, self._pobj_addr, n, sel, k
        ):
            self._cols[:, :k] = self._cols[:, :n][:, sel]
            self._pobj[:k] = self._pobj[:n][sel]
            self._pobj[k:n] = None
        self._n = k
        self._mutations += 1

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._ensure_index()

    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._pobj[: self._n].tolist())

    def entries(self) -> list[ViewEntry]:
        """All entries (insertion order; do not rely on ordering)."""
        return self._pobj[: self._n].tolist()

    def entries_except(self, exclude: int) -> list[ViewEntry]:
        """All entries but the one for *exclude* (single column scan)."""
        n = self._n
        hits = np.nonzero(self._ids[:n] == exclude)[0]
        pobj = self._pobj
        if hits.size == 0:
            return pobj[:n].tolist()
        s = int(hits[0])
        return pobj[:s].tolist() + pobj[s + 1 : n].tolist()

    def profiles(self) -> list:
        """The stored peers' profile snapshots, in slot order."""
        return [e[2] for e in self._pobj[: self._n].tolist()]

    def node_ids(self) -> list[int]:
        """Identifiers of all peers currently in the view."""
        return self._ids[: self._n].tolist()

    def get(self, node_id: int) -> ViewEntry | None:
        """The entry for *node_id*, or ``None``."""
        slot = self._ensure_index().get(node_id)
        return None if slot is None else self._pobj[slot]

    @property
    def mutation_count(self) -> int:
        """Counter bumped on every content change (cache invalidation tag)."""
        return self._mutations

    def oldest(self) -> ViewEntry | None:
        """The entry with the smallest ``(timestamp, node_id)`` key.

        The native tier resolves the tail selection in one pass over the
        columns; the numpy fallback takes a min + tie-scan.  Both produce
        the same slot as the legacy ``min(entries, key=(ts, nid))``.
        """
        n = self._n
        if n == 0:
            return None
        nk = _native()
        if nk is not None:
            slot = nk.state_oldest(self._cols_addr, self._alloc, n)
            if slot >= 0:
                return self._pobj[slot]
        ts = self._ts[:n]
        tied = np.nonzero(ts == ts.min())[0]
        if tied.size == 1:
            return self._pobj[int(tied[0])]
        return self._pobj[int(tied[int(self._ids[tied].argmin())])]

    def is_full(self) -> bool:
        return self._n >= self.capacity

    # -- shipping ---------------------------------------------------------

    def shipment_candidates(self, exclude: int) -> tuple[int, int]:
        """``(candidate_count, exclude_slot)`` without materialising lists.

        *candidate_count* is ``len(entries_except(exclude))`` — what the
        shipment sampler draws over; *exclude_slot* is the excluded
        entry's slot, or ``-1`` when absent.
        """
        n = self._n
        nk = _native()
        if nk is not None:
            slot = nk.state_find(self._cols_addr, self._alloc, n, exclude)
            return (n if slot < 0 else n - 1), slot
        hits = np.nonzero(self._ids[:n] == exclude)[0]
        if hits.size == 0:
            return n, -1
        return n - 1, int(hits[0])

    def ship_selected(
        self,
        sel: "np.ndarray | None",
        excl_slot: int,
        own_entry: ViewEntry,
        own_id: int,
        own_ts: int,
    ) -> tuple:
        """Build a columnar shipment from sampled candidate indices.

        *sel* (``int64``, mutated in place) indexes the candidate order
        of :meth:`shipment_candidates` — slot order minus the excluded
        slot; ``None`` ships the own descriptor alone.  Returns
        ``(shipped_entries, cols, wire)`` — the payload list for the
        message, the shipment's ``(ref, stride, count)`` column block
        (own descriptor row first), and its total modelled wire size
        (``None`` when a descriptor was not memoisable).  Off the native
        tier the columns are skipped entirely — the receiver's merge
        would not consume them.
        """
        nk = _native()
        own_wire = self._wire_of(own_entry)
        k = 0 if sel is None else sel.size
        if nk is None:
            if k:
                if excl_slot >= 0:
                    sel = sel + (sel >= excl_slot)
                pobj = self._pobj
                shipped = [pobj[i] for i in sel.tolist()]
            else:
                shipped = []
            return shipped, None, None
        out = np.empty((3, k + 1), dtype=np.int64)
        if k:
            total = nk.state_ship(
                self._cols_addr,
                self._alloc,
                sel,
                k,
                excl_slot,
                own_id,
                own_ts,
                own_wire,
                out,
            )
            shipped = self._pobj[sel].tolist()  # sel was bumped in place
        else:
            out[0, 0] = own_id
            out[1, 0] = own_ts
            out[2, 0] = own_wire
            total = own_wire
            shipped = []
        wire = 1 + total if total >= 0 else None
        return shipped, (out, k + 1, k + 1), wire

    def ship_all_except(
        self,
        exclude: int,
        own_entry: ViewEntry,
        own_id: int,
        own_ts: int,
    ) -> tuple:
        """Build a columnar shipment of the whole view but *exclude*.

        Same return shape as :meth:`ship_selected`.
        """
        n = self._n
        nk = _native()
        own_wire = self._wire_of(own_entry)
        pobj = self._pobj
        if nk is None:
            return self.entries_except(exclude), None, None
        s = nk.state_find(self._cols_addr, self._alloc, n, exclude)
        k = n if s < 0 else n - 1
        out = np.empty((3, k + 1), dtype=np.int64)
        total = nk.state_ship(
            self._cols_addr,
            self._alloc,
            None,
            k,
            s,
            own_id,
            own_ts,
            own_wire,
            out,
        )
        if s < 0:
            shipped = pobj[:n].tolist()
        else:
            shipped = pobj[:s].tolist() + pobj[s + 1 : n].tolist()
        wire = 1 + total if total >= 0 else None
        return shipped, (out, k + 1, k + 1), wire

    def entries_with_columns(self) -> tuple:
        """The entry list plus this view's live column block descriptor.

        For synchronous hand-off into another view's
        :meth:`upsert_columns` (the Vicinity merge folds the local RPS
        view in) — callers must consume the result before this view
        mutates again.
        """
        n = self._n
        return (
            self._pobj[:n].tolist(),
            (self._cols, self._alloc, n),
        )

    # -- mutation ---------------------------------------------------------

    def upsert(self, entry: ViewEntry) -> None:
        """Insert *entry*, keeping the freshest descriptor per peer."""
        nid = entry[0]
        if nid == self.owner_id:
            return
        index = self._ensure_index()
        slot = index.get(nid)
        if slot is None:
            self._reserve(1)
            slot = self._n
            self._ids[slot] = nid
            self._ts[slot] = entry[3]
            self._wire[slot] = self._wire_of(entry)
            self._pobj[slot] = entry
            index[nid] = slot
            self._n = slot + 1
        elif entry[3] >= self._ts[slot]:
            self._ts[slot] = entry[3]
            self._wire[slot] = self._wire_of(entry)
            self._pobj[slot] = entry
        else:
            return
        self._mutations += 1
        self._index_tag = self._mutations  # index kept coherent in place

    def upsert_columns(
        self,
        entries: "tuple[ViewEntry, ...] | list[ViewEntry]",
        cols: "tuple | None",
    ) -> None:
        """Merge a *columnar shipment*: entries plus their shipped columns.

        With columns and the native tier, the whole freshest-wins merge —
        id lookups, timestamp compares, wire accounting, payload-reference
        moves — runs in one ``state_upsert`` kernel call with zero
        marshaling.  Without columns (or off the native tier) this is
        exactly :meth:`upsert_all`; both apply identical replacements in
        identical order.
        """
        nk = _native()
        if cols is None or nk is None or not isinstance(entries, (tuple, list)):
            self.upsert_all(entries)
            return
        inc, stride, count = cols
        if count == 0:
            return
        self._reserve(count)
        new_n, applied = nk.state_upsert(
            self._cols_addr,
            self._alloc,
            self._pobj_addr,
            self._n,
            self._alloc,
            inc,
            stride,
            count,
            entries,
            self.owner_id,
        )
        self._n = new_n
        if applied:
            self._mutations += applied

    def upsert_all(self, entries: Iterable[ViewEntry]) -> None:
        """Bulk :meth:`upsert` — the same sequential freshest-wins loop
        as the legacy dict, applied to the columns, so both backends make
        identical replacements in identical order.  Columnar shipments
        take :meth:`upsert_columns` instead, which runs the loop in C.
        """
        if not isinstance(entries, (list, tuple)):
            entries = list(entries)
        n_inc = len(entries)
        if n_inc == 0:
            return
        index = self._ensure_index()
        self._reserve(n_inc)
        ids = self._ids
        ts = self._ts
        wire = self._wire
        pobj = self._pobj
        wire_of = self._wire_of
        owner = self.owner_id
        get = index.get
        n = self._n
        changed = 0
        for e in entries:
            nid = e[0]
            if nid == owner:
                continue
            slot = get(nid)
            if slot is None:
                ids[n] = nid
                ts[n] = e[3]
                wire[n] = wire_of(e)
                pobj[n] = e
                index[nid] = n
                n += 1
            elif e[3] >= ts[slot]:
                ts[slot] = e[3]
                wire[slot] = wire_of(e)
                pobj[slot] = e
            else:
                continue
            changed += 1
        self._n = n
        if changed:
            self._mutations += changed
            self._index_tag = self._mutations

    def remove(self, node_id: int) -> None:
        """Drop the entry for *node_id* (no-op if absent)."""
        slot = self._ensure_index().get(node_id)
        if slot is None:
            return
        n = self._n
        self._cols[:, slot : n - 1] = self._cols[:, slot + 1 : n]
        self._pobj[slot : n - 1] = self._pobj[slot + 1 : n]
        self._pobj[n - 1] = None
        self._n = n - 1
        self._mutations += 1

    def evict_older_than(self, cutoff: int) -> int:
        """Drop entries with ``timestamp < cutoff`` (churn healing)."""
        n = self._n
        if n == 0:
            return 0
        keep = np.nonzero(self._ts[:n] >= cutoff)[0]
        evicted = n - keep.size
        if evicted:
            self._select(keep)
        return evicted

    def trim_random(self, rng: np.random.Generator) -> None:
        """Shrink to capacity by keeping a uniform random sample.

        Draws the same ``rng.permutation`` prefix as the legacy backend,
        so both consume identical randomness and keep identical peers.
        """
        n = self._n
        excess = n - self.capacity
        if excess <= 0:
            return
        drop = rng.permutation(n)[:excess]
        nk = _native()
        if nk is not None:
            new_n = nk.state_trim_drop(
                self._cols_addr, self._alloc, self._pobj_addr, n, drop, excess
            )
            if new_n >= 0:
                self._n = new_n
                self._mutations += 1
                return
        keep_mask = np.ones(n, dtype=bool)
        keep_mask[drop] = False
        self._select(np.nonzero(keep_mask)[0])

    def trim_ranked(
        self,
        key: "Callable[[ViewEntry], float] | None" = None,
        *,
        scores: "Mapping[int, float] | None" = None,
        default: float = 0.0,
    ) -> None:
        """Shrink to capacity keeping the highest-scored entries.

        Same contract and total order as :meth:`View.trim_ranked`.
        """
        if (key is None) == (scores is None):
            raise ConfigurationError(
                "trim_ranked needs exactly one of `key` and `scores`"
            )
        if self._n <= self.capacity:
            return
        entries = self.entries()
        if scores is not None:
            get = scores.get
            self.trim_ranked_aligned(
                entries, [get(e.node_id, default) for e in entries]
            )
            return
        self.trim_ranked_aligned(entries, [key(e) for e in entries])

    def keep_ranked(
        self, entries: "list[ViewEntry]", indices: "np.ndarray"
    ) -> None:
        """Replace the view's contents with a ranked selection.

        *entries* must be the slot-aligned snapshot the caller just
        scored; the state block is rebuilt by one gather pass in rank
        order — the same kept order as the legacy dict rebuild.
        """
        n = self._n
        if len(entries) == n and (n == 0 or entries[0] is self._pobj[0]):
            # snapshot aligns with the slots: reorder the block in place
            self._select(indices)
            return
        self._rebuild([entries[i] for i in indices.tolist()])

    def _rebuild(self, kept: "list[ViewEntry]") -> None:
        """Reset the state block from an explicit entry list (rare path)."""
        k = len(kept)
        n_old = self._n
        self._n = 0
        self._reserve(k)
        ids = self._ids
        ts = self._ts
        wire = self._wire
        pobj = self._pobj
        wire_of = self._wire_of
        for i, e in enumerate(kept):
            ids[i] = e[0]
            ts[i] = e[3]
            wire[i] = wire_of(e)
            pobj[i] = e
        # release vacated payload slots, like every other compaction path
        if k < n_old:
            pobj[k:n_old] = None
        self._n = k
        self._mutations += 1

    def trim_ranked_aligned(
        self, entries: "list[ViewEntry]", scores: "list[float]"
    ) -> None:
        """Ranked trim from scores aligned with an :meth:`entries` snapshot.

        When the snapshot aligns with the slots (the hot case), the
        native ``rank_topk`` kernel reads the timestamp/id columns
        directly — no per-entry ``fromiter`` marshaling — and the Python
        fallback runs the same ``(score, timestamp, -node_id)`` tuple
        sort as the legacy backend.
        """
        k = len(entries)
        if k <= self.capacity:
            return
        nk = _native()
        if nk is not None and k >= _NATIVE_TRIM_MIN_ROWS and k == self._n:
            try:
                keep = nk.rank_topk(
                    np.asarray(scores, dtype=np.float64),
                    self._ts[:k],
                    self._ids[:k],
                    self.capacity,
                )
            except (OverflowError, ValueError, TypeError):
                keep = None  # non-numeric scores: the tuple sort handles them
            if keep is not None:
                self.keep_ranked(entries, keep)
                return
        rows = sorted(
            ((scores[i], e[3], -e[0], i) for i, e in enumerate(entries)),
            reverse=True,
        )
        self.keep_ranked(
            entries,
            np.fromiter(
                (row[3] for row in rows[: self.capacity]),
                np.int64,
                count=min(self.capacity, k),
            ),
        )

    def sample(self, k: int, rng: np.random.Generator) -> list[ViewEntry]:
        """Uniform sample (without replacement) of ``min(k, len)`` entries."""
        n = self._n
        if k >= n:
            return self._pobj[:n].tolist()
        idx = rng.permutation(n)[:k].tolist()
        pobj = self._pobj
        return [pobj[i] for i in idx]

    # -- process boundaries ------------------------------------------------

    def __getstate__(self) -> dict:
        """Serialize the live slots only (no addresses, no row views).

        The cached base addresses (``_cols_addr``/``_pobj_addr``) and the
        ``_ids``/``_ts``/``_wire`` row aliases are only meaningful inside
        the owning process; a naive slot pickle would carry stale
        addresses and turn the row views into detached copies.  The shard
        workers (:mod:`repro.simulation.sharding`) round-trip node state
        through this reduced form.
        """
        n = self._n
        return {
            "capacity": self.capacity,
            "owner_id": self.owner_id,
            "cols": self._cols[:, :n].copy(),
            "entries": self._pobj[:n].tolist(),
            "mutations": self._mutations,
        }

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.owner_id = state["owner_id"]
        cols = state["cols"]
        n = cols.shape[1]
        self._n = 0
        # the mutation counter survives the round trip: consumers (BEEP's
        # packed-pool memo) tag caches with it, and a reset could collide
        # with a stale tag taken before the transfer
        self._mutations = int(state["mutations"])
        self._index = {}
        self._index_tag = -1
        self._allocate(max(self.capacity + 8, 16, n))
        self._cols[:, :n] = cols
        pobj = self._pobj
        for i, entry in enumerate(state["entries"]):
            pobj[i] = entry
        self._n = n

    def rehome(self, cols: np.ndarray) -> None:
        """Move the numeric state block into caller-provided storage.

        *cols* must be a writable C-contiguous ``(3, alloc)`` ``int64``
        array — typically a view over a :mod:`multiprocessing.shared_memory`
        arena block (see ``repro.simulation.sharding``).  Live rows are
        copied over, the row views and cached base addresses are rebound,
        and every subsequent mutation — including the native state
        kernels, which receive the new base address — operates on the
        mapped memory.  The payload-reference column stays in private
        memory (object references cannot cross a process boundary).

        If the view later outgrows the mapped block, :meth:`_allocate`
        falls back to a fresh private allocation; the arena block is
        simply abandoned (the shard arena is a bump allocator).
        """
        alloc = int(cols.shape[1])
        n = self._n
        if cols.shape[0] != 3 or alloc < n:
            raise ConfigurationError(
                f"rehome block shape {cols.shape} cannot hold {n} rows"
            )
        cols[:, :n] = self._cols[:, :n]
        pobj = self._pobj
        if pobj.shape[0] != alloc:
            grown = np.empty(alloc, dtype=object)
            grown[:n] = pobj[:n]
            pobj = grown
        self._cols = cols
        self._pobj = pobj
        self._ids = cols[0]
        self._ts = cols[1]
        self._wire = cols[2]
        self._alloc = alloc
        self._cols_addr = cols.ctypes.data
        self._pobj_addr = pobj.ctypes.data

    def wire_size(self) -> int:
        """Modelled serialized size of the whole view: one column sum."""
        n = self._n
        sizes = self._wire[:n]
        if n == 0 or sizes.min() >= 0:
            return int(sizes.sum())
        # sentinel slots (non-memoisable profiles) re-measure per call,
        # matching the legacy walk's behaviour for mutable profile-likes
        total = 0
        entries = self._pobj[:n].tolist()
        for i, size in enumerate(sizes.tolist()):
            total += size if size >= 0 else descriptor_wire_size(entries[i])
        return total

    def storage_nbytes(self) -> int:
        """In-memory footprint of the view's own containers, in bytes.

        The preallocated column block + payload-reference column + the
        lazy id index; shared entry/profile objects are not counted.
        """
        import sys

        return (
            self._cols.nbytes
            + self._pobj.nbytes
            + sys.getsizeof(self._index)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayView(owner={self.owner_id}, "
            f"size={len(self)}/{self.capacity})"
        )


def make_view(capacity: int, owner_id: int) -> "View | ArrayView":
    """Construct a view on the active state plane.

    The facade factory every protocol goes through: array-backed columns
    by default, the legacy dict store under ``REPRO_ARRAY_STATE=0`` (see
    :mod:`repro.core.arraystate`).  Both backends expose the same API and
    produce bitwise-identical outcomes at fixed seeds.
    """
    if array_state_enabled():
        return ArrayView(capacity, owner_id)
    return View(capacity, owner_id)
