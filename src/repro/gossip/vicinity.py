"""Vicinity-style clustering protocol (the WUP overlay layer).

The upper gossip layer of WUP (paper Section II): each node greedily keeps in
its view the peers whose profiles are **most similar to its own**.  Following
Voulgaris & van Steen's Vicinity (Euro-Par 2005), as instantiated by the
paper:

1. periodically, each node selects the entry with the oldest timestamp in its
   clustering view;
2. it sends that peer its own fresh descriptor plus its **entire view**
   (unlike the RPS, which ships half — Section II);
3. the receiver replies symmetrically, and both sides merge: from the union
   of their own view, the received entries, **and the local RPS view** (the
   clustering layer feeds on the random layer for fresh candidates), keep the
   ``view_size`` entries whose profiles maximise the similarity metric.

The similarity metric is pluggable: WHATSUP uses the asymmetric WUP metric
(:func:`repro.core.similarity.wup_similarity`); the paper's WHATSUP-Cos
variant swaps in classical cosine.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

import numpy as np

from repro._native import kernel as _native
from repro.core.similarity import (
    MetricFn,
    ScoreCache,
    _native_pool_code,
    batch_scoring_enabled,
    default_score_cache,
    get_metric,
    metric_name_of,
    score_candidates,
)
from repro.gossip.views import (
    ArrayView,
    ViewEntry,
    make_view,
    shipment_wire_size,
)

__all__ = ["ClusteringMessage", "ClusteringProtocol"]


class ClusteringMessage(NamedTuple):
    """One clustering-layer gossip message (request or reply).

    A NamedTuple for the same hot-path construction economics as
    :class:`~repro.gossip.rps.RpsMessage`.  *wire* carries the
    precomputed byte size when the sender's view priced the shipment off
    its wire column (array state plane); ``None`` → per-descriptor walk.
    """

    sender: int
    entries: tuple[ViewEntry, ...]
    is_request: bool
    wire: int | None = None
    cols: "tuple | None" = None

    def wire_size(self) -> int:
        """Modelled serialized size in bytes (entries + 1-byte flag)."""
        if self.wire is not None:
            return self.wire
        return 1 + shipment_wire_size(self.entries)


class ClusteringProtocol:
    """Per-node clustering (WUP social network) instance.

    Parameters
    ----------
    node_id:
        Owner's identifier.
    view_size:
        View capacity (the paper's ``WUPvs``; WHATSUP sets it to twice the
        like-fanout — Table II).
    metric:
        Similarity function ``metric(own_profile, candidate_profile)`` used
        to rank candidates, or a registered metric name.  Registered metrics
        are scored through the vectorised batch kernel
        (:func:`repro.core.similarity.score_candidates`); unregistered
        callables fall back to per-candidate scalar calls.
    rng:
        Dedicated random generator (used only for deterministic tie-breaks
        through shuffling when scores tie exactly).
    address:
        Modelled network address used in descriptors.
    cache:
        Score cache for the batch path; defaults to the process-wide shared
        cache (:func:`repro.core.similarity.default_score_cache`).
    """

    __slots__ = ("node_id", "view", "metric", "metric_name", "rng", "address", "cache")

    def __init__(
        self,
        node_id: int,
        view_size: int,
        metric: MetricFn | str,
        rng: np.random.Generator,
        address: str | None = None,
        cache: ScoreCache | None = None,
    ) -> None:
        self.node_id = node_id
        self.view = make_view(view_size, owner_id=node_id)
        self.metric_name = metric_name_of(metric)
        self.metric = get_metric(metric) if isinstance(metric, str) else metric
        self.rng = rng
        self.address = (
            address
            if address is not None
            else f"10.0.{node_id >> 8 & 255}.{node_id & 255}"
        )
        self.cache = cache if cache is not None else default_score_cache()

    def __getstate__(self) -> dict:
        """Serialize protocol state without the process-wide score cache."""
        return {
            name: getattr(self, name)
            for name in ClusteringProtocol.__slots__
            if name != "cache"
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self.cache = default_score_cache()

    def descriptor(self, profile, now: int) -> ViewEntry:
        """Build this node's own fresh descriptor."""
        return ViewEntry(
            node_id=self.node_id,
            address=self.address,
            profile=profile,
            timestamp=now,
        )

    # -- active thread ----------------------------------------------------

    def select_partner(self) -> int | None:
        """The gossip partner for this cycle: oldest entry in the view."""
        oldest = self.view.oldest()
        return None if oldest is None else oldest.node_id

    def initiate(
        self, profile, now: int, ranking_profile=None
    ) -> tuple[int, ClusteringMessage] | None:
        """Start one exchange: ship own descriptor + the **entire** view.

        *profile* goes into the shipped descriptor (what others learn);
        *ranking_profile*, when given, is used for the local merge instead
        (a privacy-conscious node shares a distorted profile but ranks
        candidates against its true interests).
        """
        partner = self.select_partner()
        if partner is None:
            return None
        return partner, self._message(profile, now, partner, is_request=True)

    def _message(
        self, profile, now: int, exclude: int, is_request: bool
    ) -> ClusteringMessage:
        """Own fresh descriptor + the whole view but *exclude*, priced.

        On the array state plane the shipment's byte size comes off the
        view's wire column in one pass; the legacy backend leaves it
        ``None`` and the message measures itself by walking descriptors.
        """
        view = self.view
        own = self.descriptor(profile, now)
        if isinstance(view, ArrayView):
            shipped, cols, wire = view.ship_all_except(
                exclude, own, self.node_id, now
            )
        else:
            shipped, cols, wire = view.entries_except(exclude), None, None
        return ClusteringMessage(
            self.node_id, (own, *shipped), is_request, wire, cols
        )

    # -- passive thread ---------------------------------------------------

    def handle(
        self,
        msg: ClusteringMessage,
        profile,
        now: int,
        rps_entries: Iterable[ViewEntry] = (),
        ranking_profile=None,
        rps_cols: "tuple | None" = None,
    ) -> ClusteringMessage | None:
        """Process an incoming message; return the reply for a request.

        *profile* is shipped in the reply descriptor; *ranking_profile*
        (default: *profile*) is the merge's ranking reference;
        *rps_entries* is the owner's current RPS view, folded into the
        candidate pool as Vicinity prescribes — with *rps_cols* its
        ``(ids, ts, wire)`` columns when the RPS view is array-backed
        (:meth:`~repro.gossip.views.ArrayView.entries_with_columns`).
        """
        reply: ClusteringMessage | None = None
        if msg.is_request:
            reply = self._message(profile, now, msg.sender, is_request=False)
        self.merge(
            ranking_profile if ranking_profile is not None else profile,
            msg.entries,
            rps_entries,
            received_cols=msg.cols,
            rps_cols=rps_cols,
        )
        return reply

    # -- merge ------------------------------------------------------------

    def merge(
        self,
        profile,
        received: Iterable[ViewEntry],
        rps_entries: Iterable[ViewEntry] = (),
        *,
        received_cols: "tuple | None" = None,
        rps_cols: "tuple | None" = None,
    ) -> None:
        """Union own view + received + RPS candidates; keep the closest.

        Candidate scores use ``metric(own_profile, candidate_profile)`` —
        the owner is the "chooser" ``n`` of the asymmetric metric.  When
        the metric is registered, the whole pool is scored in one pass
        through the three-tier dispatch
        (:func:`~repro.core.similarity.score_candidates`: native C kernel
        → numpy → set algebra) and the trim selection follows the same
        dispatch inside :meth:`~repro.gossip.views.View.trim_ranked_aligned`
        — on the native tier the entire merge inner loop (scoring + trim)
        runs in compiled code.  Unchanged ``(owner version, candidate
        version)`` pairs are served from the score cache on the Python
        tiers (a native rescore is cheaper than the cache's per-pair dict
        traffic, so the native tier skips it); every tier produces
        bitwise-identical rankings.
        """
        view = self.view
        view.upsert_columns(received, received_cols)
        view.upsert_columns(rps_entries, rps_cols)
        if len(view) <= view.capacity:
            return  # nothing to evict: skip scoring entirely
        if self.metric_name is not None and batch_scoring_enabled():
            entries = view.entries()
            nk = _native()
            if nk is not None:
                code = _native_pool_code(
                    self.metric_name, "n", getattr(profile, "is_binary", False)
                )
                if code is not None:
                    keep = nk.merge_rank(
                        profile, entries, code, view.capacity
                    )
                    if keep is not None:
                        view.keep_ranked(entries, keep)
                        return
            scores = score_candidates(
                profile,
                [e.profile for e in entries],
                self.metric_name,
                cache=self.cache,
            )
            view.trim_ranked_aligned(entries, scores)
        else:
            metric = self.metric
            view.trim_ranked(lambda e: metric(profile, e.profile))

    def refresh(
        self,
        profile,
        rps_entries: Iterable[ViewEntry],
        rps_cols: "tuple | None" = None,
    ) -> None:
        """Re-rank the view against *profile* using only RPS candidates.

        Called when the owner's profile changed substantially outside a
        gossip exchange (e.g. after the cold-start bootstrap) so the view
        reflects current interests without waiting a full cycle.
        """
        self.merge(profile, (), rps_entries, rps_cols=rps_cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusteringProtocol(node={self.node_id}, view={len(self.view)})"
