"""Gossip substrate: peer-sampling and clustering overlays.

WHATSUP's WUP layer (paper Section II) is built on two classic gossip
protocols, both implemented here from scratch:

* :mod:`repro.gossip.views` — the *view* data structure both protocols
  maintain: a bounded set of entries ``(address, node id, profile,
  timestamp)``;
* :mod:`repro.gossip.rps` — the random-peer-sampling layer (Jelasity et al.,
  ACM TOCS 2007): periodic push–pull exchanges of half views with the oldest
  known peer, merged by uniform sampling, yielding a continuously changing
  random graph that keeps the network connected;
* :mod:`repro.gossip.vicinity` — the clustering layer (Voulgaris & van
  Steen's Vicinity, Euro-Par 2005): full-view exchanges merged by greedy
  similarity ranking, which WUP instantiates with the paper's asymmetric
  metric to form the implicit social network.

These classes are engine-agnostic: they build and consume message
dataclasses; the simulation engine (or a deployment shim) moves the messages.
"""

from repro.gossip.rps import RpsMessage, RpsProtocol
from repro.gossip.views import View, ViewEntry, descriptor_wire_size
from repro.gossip.vicinity import ClusteringMessage, ClusteringProtocol

__all__ = [
    "View",
    "ViewEntry",
    "descriptor_wire_size",
    "RpsMessage",
    "RpsProtocol",
    "ClusteringMessage",
    "ClusteringProtocol",
]
