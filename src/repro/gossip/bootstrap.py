"""Initial overlay bootstrap.

A real deployment seeds a joining node's views from an out-of-band contact
(tracker, address cache, or the cold-start contact of Section II-D).  For
simulation start-up, every system — WHATSUP and the gossip-based baselines —
fills its nodes' views with uniformly random peers whose (empty) profile
snapshots are stamped at cycle 0; the overlays then evolve by gossip.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.gossip.views import View, ViewEntry

__all__ = ["random_view_bootstrap"]


def random_view_bootstrap(
    nodes: Sequence,
    rng: np.random.Generator,
    views_of: Callable[[object], Iterable[View]],
) -> None:
    """Fill each node's views with uniformly random peers.

    Parameters
    ----------
    nodes:
        The population; every element must expose ``node_id``, ``profile``
        (with ``snapshot()``) and ``rps.address``.
    rng:
        Randomness for peer selection.
    views_of:
        Maps a node to the views to seed (e.g. RPS only for the gossip
        baseline; RPS + clustering for WHATSUP and CF).
    """
    n = len(nodes)
    if n <= 1:
        return
    for node in nodes:
        for view in views_of(node):
            k = min(view.capacity, n - 1)
            picks = rng.choice(n, size=min(k + 1, n), replace=False)
            added = 0
            for idx in picks:
                peer = nodes[int(idx)]
                if peer.node_id == node.node_id or added >= k:
                    continue
                view.upsert(
                    ViewEntry(
                        node_id=peer.node_id,
                        address=peer.rps.address,
                        profile=peer.profile.snapshot(),
                        timestamp=0,
                    )
                )
                added += 1
