"""Privacy extensions (paper Section VII, future work).

The paper's conclusion sketches two directions the authors explored but did
not evaluate in the published text:

* **profile obfuscation** — "hide the exact tastes of users", trading
  recommendation accuracy for disclosure
  (:mod:`repro.privacy.obfuscation`);
* **proxy-based exchanges** — "a proxy-based solution inspired by Onion
  routing to anonymize both the exchange of user profiles and news
  dissemination ... unchanged recommendation quality at the cost of
  increased bandwidth consumption" (:mod:`repro.privacy.proxy`).

Both are implemented as drop-in components over the standard stack so the
``ext-privacy`` benchmark can quantify the trade-offs the paper describes
qualitatively.
"""

from repro.privacy.obfuscation import (
    ObfuscatingWhatsUpNode,
    obfuscate_snapshot,
    obfuscated_whatsup_system,
)
from repro.privacy.proxy import OnionRoutedTransport

__all__ = [
    "ObfuscatingWhatsUpNode",
    "obfuscate_snapshot",
    "obfuscated_whatsup_system",
    "OnionRoutedTransport",
]
