"""Proxy-chain (onion-lite) anonymization of gossip and dissemination.

The paper's conclusion: "a proxy-based solution inspired by Onion routing
to anonymize both the exchange of user profiles and news dissemination ...
provides unchanged recommendation quality at the cost of increased
bandwidth consumption".

We model a relay chain of ``extra_hops`` proxies in front of every
transmission:

* **bandwidth** — each message is re-transmitted once per relay leg, so the
  network carries ``extra_hops + 1`` copies (plus a small per-leg onion
  header for the layered encryption);
* **reliability** — every leg independently traverses the underlying
  transport's loss model, so a message survives only if *all* legs do;
* **content** — unchanged: the destination receives exactly what the source
  sent, hence recommendation quality is untouched on a lossless network.

The wrapper decorates any :class:`~repro.network.transport.Transport`; the
engine's byte accounting is scaled by reporting through
:meth:`bandwidth_multiplier`.
"""

from __future__ import annotations

import numpy as np

from repro.network.message import Envelope
from repro.network.transport import PerfectTransport, Transport
from repro.utils.validation import check_non_negative

__all__ = ["OnionRoutedTransport"]

#: modelled per-leg onion-layer overhead (ephemeral key + MAC), bytes
ONION_HEADER_BYTES = 48


class OnionRoutedTransport(Transport):
    """Route every message through ``extra_hops`` relay legs.

    Parameters
    ----------
    inner:
        The underlying delivery model (defaults to perfect delivery).
    extra_hops:
        Number of proxy relays; ``0`` degenerates to the inner transport.
    """

    def __init__(
        self, inner: Transport | None = None, extra_hops: int = 2
    ) -> None:
        check_non_negative("extra_hops", extra_hops)
        self.inner = inner if inner is not None else PerfectTransport()
        self.extra_hops = int(extra_hops)

    # -- Transport interface -------------------------------------------------

    def setup(self, node_ids, rng: np.random.Generator) -> None:
        self.inner.setup(node_ids, rng)

    def begin_cycle(self) -> None:
        self.inner.begin_cycle()

    def attempt(self, envelope: Envelope, rng: np.random.Generator) -> bool:
        # every leg must survive the underlying loss model
        return all(
            self.inner.attempt(envelope, rng)
            for _ in range(self.extra_hops + 1)
        )

    # -- accounting helpers ----------------------------------------------------

    @property
    def legs(self) -> int:
        """Transmission legs per message (relays + final hop)."""
        return self.extra_hops + 1

    def bandwidth_multiplier(self, payload_bytes: int) -> float:
        """Factor by which the chain inflates a payload's network cost."""
        if payload_bytes <= 0:
            return float(self.legs)
        per_leg = payload_bytes + ONION_HEADER_BYTES
        return self.legs * per_leg / payload_bytes

    def effective_bytes(self, payload_bytes: int) -> int:
        """Total bytes the network carries for one payload."""
        return self.legs * (payload_bytes + ONION_HEADER_BYTES)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnionRoutedTransport(inner={self.inner!r}, "
            f"extra_hops={self.extra_hops})"
        )
