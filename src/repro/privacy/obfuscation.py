"""Profile obfuscation: trade accuracy for opinion privacy.

WHATSUP's gossip layers ship user profiles to arbitrary peers, so "users
who do not want to disclose their profiles" (Section VII) need the
*published* profile to differ from the true one while remaining useful for
similarity clustering.  We implement the classic **randomized response**
mechanism on the shared snapshot:

* each profile entry is *suppressed* (not disclosed) with probability
  ``suppress``;
* each disclosed entry's opinion is *flipped* (like↔dislike) with
  probability ``flip``.

The node's own forwarding decisions and view ranking keep using its true
profile (only the disclosure is distorted), matching the design sketched in
the paper's conclusion: obfuscation degrades how well *others* can route to
you, not how well you route.

With flip probability ``p`` the mechanism provides plausible deniability of
any individual opinion at level ``ln((1-p)/p)`` (the local-DP log-odds
bound); the ``ext-privacy`` benchmark reports F1 as a function of the
obfuscation level, reproducing the trade-off the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import WhatsUpConfig
from repro.core.node import OpinionFn, WhatsUpNode
from repro.core.profiles import FrozenProfile, UserProfile
from repro.utils.rng import RngStreams
from repro.utils.validation import check_probability

__all__ = [
    "obfuscate_snapshot",
    "ObfuscatingWhatsUpNode",
    "obfuscated_whatsup_system",
]


def obfuscate_snapshot(
    profile: UserProfile,
    rng: np.random.Generator,
    *,
    flip: float = 0.1,
    suppress: float = 0.2,
) -> FrozenProfile:
    """Build a randomized-response snapshot of *profile*.

    Parameters
    ----------
    profile:
        The true user profile.
    rng:
        The node's private obfuscation stream.
    flip:
        Per-entry probability of inverting the disclosed opinion.
    suppress:
        Per-entry probability of omitting the entry entirely.
    """
    check_probability("flip", flip)
    check_probability("suppress", suppress)
    disclosed: dict[int, float] = {}
    for iid, score in profile.scores.items():
        if suppress and rng.random() < suppress:
            continue
        if flip and rng.random() < flip:
            score = 1.0 - score
        disclosed[iid] = score
    return FrozenProfile(disclosed, is_binary=True)


class ObfuscatingWhatsUpNode(WhatsUpNode):
    """A WHATSUP node that gossips randomized-response profiles.

    The obfuscated snapshot is re-drawn whenever the underlying profile
    changes (memoised per profile version, like the plain snapshot), so a
    curious peer cannot average repeated disclosures of the same profile
    state to denoise it.
    """

    __slots__ = ("flip", "suppress", "_obf_rng", "_obf_snapshot", "_obf_version")

    def __init__(
        self,
        node_id: int,
        config: WhatsUpConfig,
        opinion: OpinionFn,
        streams: RngStreams,
        *,
        flip: float = 0.1,
        suppress: float = 0.2,
    ) -> None:
        super().__init__(node_id, config, opinion, streams)
        check_probability("flip", flip)
        check_probability("suppress", suppress)
        self.flip = flip
        self.suppress = suppress
        self._obf_rng = streams.fresh(f"node-{node_id}-obfuscation")
        self._obf_snapshot: FrozenProfile | None = None
        self._obf_version = -1

    def public_profile(self) -> FrozenProfile:
        if (
            self._obf_snapshot is None
            or self._obf_version != self.profile.version
        ):
            self._obf_snapshot = obfuscate_snapshot(
                self.profile,
                self._obf_rng,
                flip=self.flip,
                suppress=self.suppress,
            )
            self._obf_version = self.profile.version
        return self._obf_snapshot


def obfuscated_whatsup_system(
    dataset,
    config: WhatsUpConfig | None = None,
    *,
    flip: float = 0.1,
    suppress: float = 0.2,
    seed: int = 0,
    transport=None,
):
    """A :class:`~repro.core.system.WhatsUpSystem` of obfuscating nodes."""
    from repro.core.system import WhatsUpSystem

    system = WhatsUpSystem(
        dataset,
        config,
        seed=seed,
        transport=transport,
        node_cls=ObfuscatingWhatsUpNode,
        node_kwargs={"flip": flip, "suppress": suppress},
    )
    system.system_name = f"whatsup-obf(flip={flip},suppress={suppress})"
    return system
