"""The paper's contribution: profiles, the WUP metric, WUP, and BEEP.

Public surface:

* data structures — :class:`UserProfile`, :class:`ItemProfile`,
  :class:`NewsItem`, :class:`ItemCopy`;
* the similarity metrics — :func:`wup_similarity` (the paper's asymmetric
  metric), :func:`cosine_similarity`, and the :func:`get_metric` registry;
* the protocol stack — :class:`WhatsUpNode` (WUP + BEEP per node),
  :class:`BeepForwarder`, cold-start helpers;
* assembly — :class:`WhatsUpConfig` (Table II) and :class:`WhatsUpSystem`
  (a runnable deployment over a workload).
"""

from repro.core.beep import BeepForwarder
from repro.core.coldstart import bootstrap_from_contact, popular_items_in_views
from repro.core.config import WhatsUpConfig
from repro.core.news import ItemCopy, NewsItem
from repro.core.node import WhatsUpNode
from repro.core.profiles import (
    FrozenProfile,
    ItemProfile,
    Profile,
    ProfileEntry,
    UserProfile,
)
from repro.core.similarity import (
    available_metrics,
    cosine_similarity,
    get_metric,
    jaccard_similarity,
    overlap_similarity,
    pairwise_cosine,
    pairwise_wup,
    similarity_matrix,
    wup_similarity,
)
from repro.core.system import WhatsUpSystem, seed_random_views

__all__ = [
    "BeepForwarder",
    "bootstrap_from_contact",
    "popular_items_in_views",
    "WhatsUpConfig",
    "ItemCopy",
    "NewsItem",
    "WhatsUpNode",
    "FrozenProfile",
    "ItemProfile",
    "Profile",
    "ProfileEntry",
    "UserProfile",
    "available_metrics",
    "cosine_similarity",
    "get_metric",
    "jaccard_similarity",
    "overlap_similarity",
    "pairwise_cosine",
    "pairwise_wup",
    "similarity_matrix",
    "wup_similarity",
    "WhatsUpSystem",
    "seed_random_views",
]
