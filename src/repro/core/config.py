"""WHATSUP system parameters (paper Table II).

+----------------+---------------------------------------------+---------+
| Parameter      | Description                                 | Paper   |
+================+=============================================+=========+
| ``RPSvs``      | Size of the random sample (RPS view)        | 30      |
| ``RPSf``       | Frequency of gossip in the RPS              | 1 cycle |
| ``WUPvs``      | Size of the social network (WUP view)       | 2·fLIKE |
| Profile window | News item TTL inside profiles               | 13 cyc. |
| BEEP TTL       | Dissemination TTL for dislike               | 4       |
+----------------+---------------------------------------------+---------+

The like fanout ``fLIKE`` is the headline sweep parameter of every figure;
Table III's best WHATSUP operating point is ``fLIKE = 10``.  The paper keeps
the dislike fanout fixed at 1 (Algorithm 2 forwards a disliked item to a
single RPS target), exposed here as ``f_dislike`` for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.similarity import available_metrics
from repro.utils.exceptions import ConfigurationError

__all__ = ["WhatsUpConfig"]


@dataclass(frozen=True)
class WhatsUpConfig:
    """Per-node parameterisation of the WHATSUP stack.

    Attributes
    ----------
    f_like:
        BEEP's like fanout — number of WUP-view targets a liked item is
        forwarded to (amplification).
    wup_view_size:
        WUP (clustering) view capacity; ``None`` → ``2 * f_like``, the
        paper's best trade-off (Section IV-D).
    rps_view_size:
        RPS view capacity (paper: 30; good between 20 and 40).
    beep_ttl:
        Maximum value of an item copy's dislike counter; a disliked copy
        whose counter reached the TTL is dropped (paper: 4).
    f_dislike:
        Targets per dislike-forward (paper: fixed 1; exposed for ablation).
    profile_window:
        Age bound, in cycles, for profile entries (paper: 13 cycles ≈ 1/5
        of the experiment duration).
    similarity:
        Metric name for both WUP clustering and BEEP orientation
        (``"wup"`` for WHATSUP, ``"cosine"`` for the WHATSUP-Cos variant).
    rps_every / wup_every:
        Gossip periods in cycles (paper: every cycle, with the cycle length
        setting wall-clock frequency).
    cycle_seconds:
        Modelled wall-clock duration of one cycle, used only for bandwidth
        conversion (30 s in the paper's deployment experiments).
    """

    f_like: int = 10
    wup_view_size: int | None = None
    rps_view_size: int = 30
    beep_ttl: int = 4
    f_dislike: int = 1
    profile_window: int = 13
    similarity: str = "wup"
    rps_every: int = 1
    wup_every: int = 1
    cycle_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.f_like <= 0:
            raise ConfigurationError(f"f_like must be > 0, got {self.f_like}")
        if self.rps_view_size <= 0:
            raise ConfigurationError(
                f"rps_view_size must be > 0, got {self.rps_view_size}"
            )
        if self.beep_ttl < 0:
            raise ConfigurationError(
                f"beep_ttl must be >= 0, got {self.beep_ttl}"
            )
        if self.f_dislike < 0:
            raise ConfigurationError(
                f"f_dislike must be >= 0, got {self.f_dislike}"
            )
        if self.profile_window <= 0:
            raise ConfigurationError(
                f"profile_window must be > 0, got {self.profile_window}"
            )
        if self.rps_every <= 0 or self.wup_every <= 0:
            raise ConfigurationError("gossip periods must be > 0")
        if self.cycle_seconds <= 0:
            raise ConfigurationError(
                f"cycle_seconds must be > 0, got {self.cycle_seconds}"
            )
        if self.similarity.lower() not in available_metrics():
            raise ConfigurationError(
                f"unknown similarity {self.similarity!r}; "
                f"available: {available_metrics()}"
            )
        if self.wup_view_size is not None and self.wup_view_size < self.f_like:
            # the paper: WUPvs "must be at least as large as" fLIKE
            raise ConfigurationError(
                f"wup_view_size ({self.wup_view_size}) must be >= f_like "
                f"({self.f_like})"
            )

    @property
    def effective_wup_view_size(self) -> int:
        """The WUP view capacity actually used (``2·fLIKE`` default)."""
        return (
            self.wup_view_size
            if self.wup_view_size is not None
            else 2 * self.f_like
        )

    def with_fanout(self, f_like: int) -> "WhatsUpConfig":
        """A copy at a different like fanout (sweep helper).

        Keeps ``wup_view_size`` tied to the new fanout when it was
        defaulted.
        """
        return replace(self, f_like=f_like)

    def with_metric(self, similarity: str) -> "WhatsUpConfig":
        """A copy using another similarity metric (WHATSUP-Cos, ablations)."""
        return replace(self, similarity=similarity)

    def table2_rows(self) -> list[tuple[str, str, str]]:
        """The Table II rows (parameter, description, value)."""
        return [
            ("RPSvs", "Size of the random sample", str(self.rps_view_size)),
            ("RPSf", "Frequency of gossip in the RPS", f"{self.rps_every} cycle(s)"),
            (
                "WUPvs",
                "Size of the social network",
                f"{self.effective_wup_view_size} (2·fLIKE)",
            ),
            ("Profile window", "News item TTL", f"{self.profile_window} cycles"),
            ("BEEP TTL", "Dissemination TTL for dislike", str(self.beep_ttl)),
        ]
