"""User and item interest profiles (paper Section II-B/II-C).

A *profile* is a set of triplets ``<identifier, timestamp, score>`` with at
most one entry per item identifier:

* a **user profile** (the paper's ``P̃``) records the node's own opinions;
  scores are binary — ``1`` for *like*, ``0`` for *dislike*;
* an **item profile** (the paper's ``P^I``) travels with each circulating
  copy of a news item and aggregates, by score averaging, the user profiles
  of the nodes that liked the item along that copy's dissemination path
  (Algorithm 1, ``addToNewsProfile``).  Scores are reals in ``[0, 1]``.

Both kinds are purged of entries older than the *profile window*
(Section II-E), which keeps similarity focused on current interests and
makes inactive users look like fresh joiners.

Performance notes
-----------------
Similarity computations (``repro.core.similarity``) dominate the simulation's
run time, so profiles maintain, incrementally:

* ``liked`` — the set of identifiers with a strictly positive score (for a
  binary profile, exactly the liked items);
* ``norm`` — the Euclidean norm of the score vector, cached and invalidated
  on mutation.

User profiles additionally expose :meth:`UserProfile.snapshot`, a cheap
immutable copy (memoised per mutation-version) that gossip messages carry,
mirroring the profile field of view entries in the paper's protocols.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import NamedTuple

__all__ = ["ProfileEntry", "Profile", "UserProfile", "ItemProfile", "FrozenProfile"]


class ProfileEntry(NamedTuple):
    """One ``<identifier, timestamp, score>`` triplet of a profile."""

    item_id: int
    timestamp: int
    score: float


class Profile:
    """Mutable mapping from item identifier to ``(timestamp, score)``.

    This is the common machinery shared by :class:`UserProfile` and
    :class:`ItemProfile`; it is rarely instantiated directly.
    """

    __slots__ = ("_scores", "_timestamps", "_liked", "_norm2", "_version")

    #: Whether scores are guaranteed binary (0/1).  Similarity metrics use
    #: this to select a set-algebra fast path.
    is_binary = False

    def __init__(self, entries: Iterable[ProfileEntry] = ()) -> None:
        self._scores: dict[int, float] = {}
        self._timestamps: dict[int, int] = {}
        self._liked: set[int] = set()
        self._norm2: float = 0.0
        self._version: int = 0
        for entry in entries:
            self.set(entry.item_id, entry.timestamp, entry.score)

    # -- mutation ---------------------------------------------------------

    def set(self, item_id: int, timestamp: int, score: float) -> None:
        """Insert or replace the entry for *item_id*.

        A profile holds a single entry per identifier (Section II-B); setting
        an existing identifier overwrites its timestamp and score.
        """
        old = self._scores.get(item_id)
        if old is not None:
            self._norm2 -= old * old
            if old > 0.0:
                self._liked.discard(item_id)
        self._scores[item_id] = score
        self._timestamps[item_id] = timestamp
        self._norm2 += score * score
        if score > 0.0:
            self._liked.add(item_id)
        self._version += 1

    def remove(self, item_id: int) -> None:
        """Drop the entry for *item_id* (no-op if absent)."""
        old = self._scores.pop(item_id, None)
        if old is None:
            return
        del self._timestamps[item_id]
        self._norm2 -= old * old
        if self._norm2 < 0.0:  # float drift guard
            self._norm2 = 0.0
        if old > 0.0:
            self._liked.discard(item_id)
        self._version += 1

    def purge_older_than(self, cutoff: int) -> int:
        """Remove all entries with ``timestamp < cutoff``.

        Implements the profile-window cleaning of Section II-E (user
        profiles, periodic) and Algorithm 1 lines 8-10 (item profiles, before
        forwarding).

        Returns
        -------
        int
            The number of entries removed.
        """
        stale = [iid for iid, ts in self._timestamps.items() if ts < cutoff]
        for iid in stale:
            self.remove(iid)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry."""
        self._scores.clear()
        self._timestamps.clear()
        self._liked.clear()
        self._norm2 = 0.0
        self._version += 1

    # -- queries ----------------------------------------------------------

    @property
    def scores(self) -> dict[int, float]:
        """Identifier → score mapping (do not mutate directly)."""
        return self._scores

    @property
    def liked(self) -> set[int]:
        """Identifiers with a strictly positive score."""
        return self._liked

    @property
    def norm(self) -> float:
        """Euclidean norm of the score vector, ``‖P‖``."""
        return math.sqrt(self._norm2) if self._norm2 > 0.0 else 0.0

    @property
    def version(self) -> int:
        """Mutation counter; increases on every change."""
        return self._version

    def score_of(self, item_id: int) -> float | None:
        """Score for *item_id*, or ``None`` when the item is unrated."""
        return self._scores.get(item_id)

    def timestamp_of(self, item_id: int) -> int | None:
        """Timestamp for *item_id*, or ``None`` when the item is unrated."""
        return self._timestamps.get(item_id)

    def entries(self) -> Iterator[ProfileEntry]:
        """Iterate over the profile's triplets (arbitrary order)."""
        for iid, score in self._scores.items():
            yield ProfileEntry(iid, self._timestamps[iid], score)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._scores

    def __len__(self) -> int:
        return len(self._scores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={len(self)}, liked={len(self._liked)})"


class FrozenProfile:
    """An immutable, hashable snapshot of a profile at a point in time.

    Gossip messages in the paper carry node profiles inside view entries.
    Simulated messages carry :class:`FrozenProfile` objects: they preserve
    the profile's state at send time even if the owner keeps rating items,
    and they precompute the sets and norm the similarity metrics need.
    """

    __slots__ = ("scores", "liked", "rated", "norm", "is_binary")

    def __init__(self, scores: dict[int, float], *, is_binary: bool) -> None:
        self.scores: dict[int, float] = dict(scores)
        self.liked: frozenset[int] = frozenset(
            iid for iid, s in scores.items() if s > 0.0
        )
        self.rated: frozenset[int] = frozenset(scores)
        norm2 = 0.0
        for s in scores.values():
            norm2 += s * s
        self.norm: float = math.sqrt(norm2) if norm2 > 0.0 else 0.0
        self.is_binary: bool = is_binary

    def __len__(self) -> int:
        return len(self.scores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenProfile(n={len(self.scores)}, liked={len(self.liked)})"


class UserProfile(Profile):
    """A node's own opinion record ``P̃`` (binary scores).

    Updated when the user clicks like/dislike on a received item (Algorithm 1
    lines 5 and 7) or publishes an item (line 14).
    """

    __slots__ = ("_snapshot", "_snapshot_version")

    is_binary = True

    def __init__(self, entries: Iterable[ProfileEntry] = ()) -> None:
        super().__init__(entries)
        self._snapshot: FrozenProfile | None = None
        self._snapshot_version: int = -1

    def record_opinion(self, item_id: int, timestamp: int, liked: bool) -> None:
        """Record the user's opinion on an item.

        Parameters
        ----------
        item_id:
            The item's 8-byte identifier.
        timestamp:
            The item's creation timestamp (profile entries age by *item*
            time, so purging drops old *news*, not old *opinions*).
        liked:
            ``True`` → score 1 (like); ``False`` → score 0 (dislike).
        """
        self.set(item_id, timestamp, 1.0 if liked else 0.0)

    @property
    def rated(self) -> set[int]:
        """All identifiers the user has expressed an opinion on."""
        return set(self._scores)

    def snapshot(self) -> FrozenProfile:
        """Return an immutable snapshot (memoised per mutation version)."""
        if self._snapshot is None or self._snapshot_version != self._version:
            self._snapshot = FrozenProfile(self._scores, is_binary=True)
            self._snapshot_version = self._version
        return self._snapshot


class ItemProfile(Profile):
    """The community profile ``P^I`` carried by a circulating item copy.

    Two copies of the same item travelling along different paths have
    *different* item profiles: each reflects the interests of the portion of
    the network its copy traversed (Section II-B).
    """

    __slots__ = ()

    def integrate(self, user_profile: Profile) -> None:
        """Fold a liker's user profile into this item profile.

        Implements Algorithm 1's loop over the user profile (lines 3-4 /
        15-16) with ``addToNewsProfile`` (lines 18-22): for each tuple of the
        user profile, average with the existing score when the identifier is
        already present, otherwise insert the user's tuple.
        """
        for iid, s_n in user_profile.scores.items():
            ts = user_profile.timestamp_of(iid)
            existing = self._scores.get(iid)
            if existing is not None:
                # average, keeping the freshest timestamp so the entry ages
                # from its latest sighting
                old_ts = self._timestamps[iid]
                new_ts = ts if ts is not None and ts > old_ts else old_ts
                self.set(iid, new_ts, (existing + s_n) / 2.0)
            else:
                assert ts is not None
                self.set(iid, ts, s_n)

    def copy(self) -> "ItemProfile":
        """Deep-copy the profile (a forwarded copy evolves independently)."""
        clone = ItemProfile()
        clone._scores = dict(self._scores)
        clone._timestamps = dict(self._timestamps)
        clone._liked = set(self._liked)
        clone._norm2 = self._norm2
        clone._version = 0
        return clone

    def freeze(self) -> FrozenProfile:
        """Immutable snapshot (used by similarity-ranking code paths)."""
        return FrozenProfile(self._scores, is_binary=False)
