"""User and item interest profiles (paper Section II-B/II-C).

A *profile* is a set of triplets ``<identifier, timestamp, score>`` with at
most one entry per item identifier:

* a **user profile** (the paper's ``P̃``) records the node's own opinions;
  scores are binary — ``1`` for *like*, ``0`` for *dislike*;
* an **item profile** (the paper's ``P^I``) travels with each circulating
  copy of a news item and aggregates, by score averaging, the user profiles
  of the nodes that liked the item along that copy's dissemination path
  (Algorithm 1, ``addToNewsProfile``).  Scores are reals in ``[0, 1]``.

Both kinds are purged of entries older than the *profile window*
(Section II-E), which keeps similarity focused on current interests and
makes inactive users look like fresh joiners.

Performance notes
-----------------
Similarity computations (``repro.core.similarity``) dominate the simulation's
run time, so profiles maintain, incrementally:

* ``liked`` — the set of identifiers with a strictly positive score (for a
  binary profile, exactly the liked items);
* ``norm`` — the Euclidean norm of the score vector, cached and invalidated
  on mutation;
* ``_min_ts`` — a lower bound on the oldest entry timestamp, so the
  per-receipt window purge can skip the full scan when nothing can be stale.

User profiles additionally expose :meth:`UserProfile.snapshot`, a cheap
immutable copy (memoised per mutation-version) that gossip messages carry,
mirroring the profile field of view entries in the paper's protocols.

:class:`FrozenProfile` snapshots carry two batching hooks for the vectorised
similarity kernel (:func:`repro.core.similarity.score_candidates`):

* packed sorted ``uint64`` id arrays (``liked_ids`` / ``rated_ids``) and the
  aligned ``rated_scores`` vector, computed lazily on first access and then
  reused for every batch scoring pass the snapshot participates in;
* a process-unique ``uid`` assigned at construction.  Because snapshots are
  memoised per mutation version, ``uid`` identifies one *(profile, version)*
  state: any ``set``/``remove``/``purge_older_than`` bumps the version, the
  next snapshot gets a fresh ``uid``, and every score cached under the old
  ``uid`` becomes unreachable — version-keyed cache invalidation for free.

Item-copy profiles are cloned on every BEEP forward; :meth:`ItemProfile.copy`
is copy-on-write (the clone shares the backing dicts until its first
mutation), which skips the dict copies entirely for the common
receive-dislike-forward path that never edits the profile.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator
from typing import NamedTuple

import numpy as np

from repro.core.arraystate import array_state_enabled

__all__ = [
    "ProfileEntry",
    "PackedView",
    "Profile",
    "UserProfile",
    "ItemProfile",
    "FrozenProfile",
]

_MASK64 = (1 << 64) - 1

#: Minimum packed-array size for the *incremental* pack-maintenance path
#: (array state plane): below it a fresh ``fromiter`` + ``argsort`` rebuild
#: is cheaper than per-mutation sorted inserts, so small profiles keep the
#: lazy-invalidate discipline.
_PACK_INCREMENTAL_MIN = 24

#: Cap on the pending set-op journal: a profile mutated this many times
#: without a pack consumption is cheaper to rebuild than to merge, so the
#: chain is dropped instead of journaling without bound.
_PACK_PENDING_MAX = 48


def pack_id_array(ids: Iterable[int], count: int) -> np.ndarray:
    """Pack item identifiers into a ``uint64`` array (unsorted).

    Identifiers are 8-byte digests in ``[0, 2**64)``
    (:func:`repro.utils.hashing.item_digest`); any out-of-range integer
    (e.g. a negative id in a synthetic test) is mapped through a 64-bit
    mask — an injective, consistent encoding, which is all the batch
    intersection kernel needs.  *ids* must be re-iterable (a dict view or
    sequence), as the masked fallback iterates a second time.
    """
    try:
        return np.fromiter(ids, dtype=np.uint64, count=count)
    except (OverflowError, ValueError, TypeError):
        return np.fromiter(
            ((iid & _MASK64) for iid in ids), dtype=np.uint64, count=count
        )


class ProfileEntry(NamedTuple):
    """One ``<identifier, timestamp, score>`` triplet of a profile."""

    item_id: int
    timestamp: int
    score: float


def _native_descriptor(
    liked_ids: np.ndarray,
    rated_ids: np.ndarray,
    rated_scores: np.ndarray,
    norm: float,
    is_binary: bool,
) -> tuple:
    """The ``_nd`` descriptor tuple the native kernels read.

    Layout (see ``prof_desc`` in :mod:`repro._native.build_native`):
    ``(is_binary, liked_ptr, n_liked, rated_ptr, n_rated, scores_ptr,
    norm)``.  The raw addresses alias the packed arrays, so the descriptor
    is only valid while its owning pack object keeps them alive — which
    the pack does, by construction, for its whole lifetime.
    """
    return (
        1 if is_binary else 0,
        liked_ids.ctypes.data,
        liked_ids.size,
        rated_ids.ctypes.data,
        rated_ids.size,
        rated_scores.ctypes.data,
        float(norm),
    )


class PackedView:
    """Sorted packed arrays of a mutable profile at one mutation version.

    The same layout the batch similarity kernel reads off
    :class:`FrozenProfile` snapshots, for profiles that cannot be frozen
    cheaply (live :class:`ItemProfile` copies in BEEP's orientation path).
    ``uid`` is ``None``: there is no stable identity to cache scores under.
    ``_nd`` is the native-kernel descriptor, ``None`` until first native
    contact (the compiled kernels call :meth:`_pack` themselves, so the
    pure-Python tiers never pay for it).

    Instances are memoised per mutation version by :meth:`Profile.packed`
    and *shared across copy-on-write clones* — a disliked item forwarded
    along a chain of uninterested nodes is packed once, then re-scored
    against each hop's RPS pool from the same arrays.
    """

    __slots__ = (
        "liked_ids",
        "rated_ids",
        "rated_scores",
        "norm",
        "is_binary",
        "uid",
        "_nd",
    )

    def __init__(self, profile: "Profile") -> None:
        scores = profile._scores
        n = len(scores)
        ids = pack_id_array(scores.keys(), n)
        vals = np.fromiter(scores.values(), dtype=np.float64, count=n)
        order = np.argsort(ids)
        self.rated_ids = ids[order]
        self.rated_scores = vals[order]
        self.liked_ids = self.rated_ids[self.rated_scores > 0.0]
        self.norm = profile.norm
        self.is_binary = profile.is_binary
        self.uid = None
        self._nd: tuple | None = None

    def _pack(self) -> None:
        """Fill the native descriptor (called by the C kernels on demand)."""
        self._nd = _native_descriptor(
            self.liked_ids,
            self.rated_ids,
            self.rated_scores,
            self.norm,
            self.is_binary,
        )

    def __getstate__(self) -> dict:
        """Drop the native descriptor: its raw addresses are process-local.

        Everything else round-trips; the kernels refill ``_nd`` lazily on
        first native contact in the receiving process.
        """
        state = {name: getattr(self, name) for name in PackedView.__slots__}
        state["_nd"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)


def _derived_pack(
    ids: np.ndarray, vals: np.ndarray, norm: float, is_binary: bool
) -> PackedView:
    """A :class:`PackedView` over already-sorted derived columns.

    The incremental pack-maintenance path (array state plane) builds the
    next version's arrays from the previous version's instead of
    re-iterating the dicts and re-sorting; this wraps them without the
    constructor's rebuild.  The arrays are value-identical to a fresh
    :class:`PackedView` build by construction — the same sorted ids, the
    same IEEE-754 score arithmetic — which the array-state parity tests
    assert element for element.
    """
    pack = PackedView.__new__(PackedView)
    pack.rated_ids = ids
    pack.rated_scores = vals
    pack.liked_ids = ids[vals > 0.0]
    pack.norm = norm
    pack.is_binary = is_binary
    pack.uid = None
    pack._nd = None
    return pack


def _sorted_merge_insert(
    a_ids: np.ndarray,
    a_vals: np.ndarray,
    pos: np.ndarray,
    b_ids: np.ndarray,
    b_vals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Insert sorted *b* rows into sorted *a* at searchsorted positions.

    The manual form of ``np.insert`` — a target-index scatter plus two
    masked copies — which beats ``np.insert``'s generic machinery by an
    order of magnitude at profile sizes.
    """
    k = pos.size
    n_new = a_ids.size + k
    target = pos + np.arange(k)
    mask = np.ones(n_new, dtype=bool)
    mask[target] = False
    new_ids = np.empty(n_new, dtype=np.uint64)
    new_vals = np.empty(n_new, dtype=np.float64)
    new_ids[target] = b_ids
    new_vals[target] = b_vals
    new_ids[mask] = a_ids
    new_vals[mask] = a_vals
    return new_ids, new_vals


def _pack_apply_sets(
    pack: PackedView, pending: list, norm: float, is_binary: bool
) -> PackedView:
    """The pack after a batch of ``set`` ops: one sorted-merge pass.

    *pending* is the profile's ``(item_id, score)`` op journal since the
    pack's version, in application order (later ops win).  Never mutates
    *pack*'s arrays — copy-on-write clones and adopted snapshots may
    share them.
    """
    last: dict[int, float] = {}
    for iid, s in pending:
        last[iid & _MASK64] = s
    m = len(last)
    keys = np.fromiter(last.keys(), dtype=np.uint64, count=m)
    svals = np.fromiter(last.values(), dtype=np.float64, count=m)
    order = np.argsort(keys)
    keys = keys[order]
    svals = svals[order]
    a_ids = pack.rated_ids
    a_vals = pack.rated_scores
    if a_ids.size == 0:
        return _derived_pack(keys, svals, norm, is_binary)
    pos = np.searchsorted(a_ids, keys)
    clipped = np.minimum(pos, a_ids.size - 1)
    present = (pos < a_ids.size) & (a_ids[clipped] == keys)
    vals = a_vals.copy()
    vals[pos[present]] = svals[present]
    fresh = ~present
    if not fresh.any():
        return _derived_pack(a_ids, vals, norm, is_binary)
    new_ids, new_vals = _sorted_merge_insert(
        a_ids, vals, pos[fresh], keys[fresh], svals[fresh]
    )
    return _derived_pack(new_ids, new_vals, norm, is_binary)


def _pack_with_remove(
    pack: PackedView, item_id: int, norm: float, is_binary: bool
) -> PackedView:
    """The pack after one ``remove(item_id)`` (the id must be present)."""
    key = np.uint64(item_id & _MASK64)
    ids = pack.rated_ids
    vals_old = pack.rated_scores
    pos = int(np.searchsorted(ids, key))
    n = ids.size
    new_ids = np.empty(n - 1, dtype=np.uint64)
    new_vals = np.empty(n - 1, dtype=np.float64)
    new_ids[:pos] = ids[:pos]
    new_vals[:pos] = vals_old[:pos]
    new_ids[pos:] = ids[pos + 1 :]
    new_vals[pos:] = vals_old[pos + 1 :]
    return _derived_pack(new_ids, new_vals, norm, is_binary)


def _pack_without_ids(
    pack: PackedView, removed: list, norm: float, is_binary: bool
) -> PackedView:
    """The pack after a window purge dropped *removed* (one mask pass)."""
    rm = pack_id_array(removed, len(removed))
    keep = ~np.isin(pack.rated_ids, rm)
    return _derived_pack(
        pack.rated_ids[keep], pack.rated_scores[keep], norm, is_binary
    )


def _pack_with_integrate(
    pack: PackedView, user_pack: PackedView, norm: float
) -> PackedView:
    """The item pack after folding in a user profile (sorted array merge).

    Replicates ``ItemProfile.integrate``'s arithmetic exactly: ids present
    on both sides average as ``(existing + s_n) / 2.0`` (the same single
    IEEE-754 add + divide the dict loop performs), new ids insert the
    user's score, and the merged id column stays sorted.
    """
    a_ids, a_vals = pack.rated_ids, pack.rated_scores
    b_ids, b_vals = user_pack.rated_ids, user_pack.rated_scores
    if b_ids.size == 0:
        return _derived_pack(a_ids, a_vals, norm, False)
    if a_ids.size == 0:
        return _derived_pack(b_ids, b_vals, norm, False)
    pos = np.searchsorted(a_ids, b_ids)
    clipped = np.minimum(pos, a_ids.size - 1)
    both = (pos < a_ids.size) & (a_ids[clipped] == b_ids)
    if both.any():
        vals = a_vals.copy()
        hit = pos[both]
        vals[hit] = (a_vals[hit] + b_vals[both]) / 2.0
    else:
        vals = a_vals
    fresh = ~both
    if fresh.any():
        new_ids, new_vals = _sorted_merge_insert(
            a_ids, vals, pos[fresh], b_ids[fresh], b_vals[fresh]
        )
        return _derived_pack(new_ids, new_vals, norm, False)
    return _derived_pack(a_ids, vals, norm, False)


class Profile:
    """Mutable mapping from item identifier to ``(timestamp, score)``.

    This is the common machinery shared by :class:`UserProfile` and
    :class:`ItemProfile`; it is rarely instantiated directly.
    """

    __slots__ = (
        "_scores",
        "_timestamps",
        "_liked",
        "_norm2",
        "_version",
        "_min_ts",
        "_shared",
        "_pack_memo",
        "_pack_pending",
    )

    #: Whether scores are guaranteed binary (0/1).  Similarity metrics use
    #: this to select a set-algebra fast path.
    is_binary = False

    def __init__(self, entries: Iterable[ProfileEntry] = ()) -> None:
        self._scores: dict[int, float] = {}
        self._timestamps: dict[int, int] = {}
        self._liked: set[int] = set()
        self._norm2: float = 0.0
        self._version: int = 0
        self._min_ts: float = math.inf
        self._shared: bool = False
        #: version-keyed :class:`PackedView` memo (``(version, pack)``)
        self._pack_memo: tuple[int, PackedView] | None = None
        #: journal of ``(item_id, score)`` set-ops since the memo's
        #: version (array state plane): applied in one vectorised merge
        #: by :meth:`_pack_current` on next pack consumption.  ``None``
        #: when no chain is being maintained.
        self._pack_pending: list | None = None
        for entry in entries:
            self.set(entry.item_id, entry.timestamp, entry.score)

    # -- mutation ---------------------------------------------------------

    def _detach(self) -> None:
        """Materialise private containers (copy-on-write support)."""
        self._scores = dict(self._scores)
        self._timestamps = dict(self._timestamps)
        self._liked = set(self._liked)
        self._shared = False

    def set(self, item_id: int, timestamp: int, score: float) -> None:
        """Insert or replace the entry for *item_id*.

        A profile holds a single entry per identifier (Section II-B); setting
        an existing identifier overwrites its timestamp and score.

        On the array state plane a maintained packed memo is carried
        forward by *journaling* the op (one list append here); the next
        pack consumption applies the journal in a single vectorised
        sorted merge (:meth:`_pack_current`) instead of rebuilding — the
        dicts stay the canonical store, the arrays a value-identical
        derivation.
        """
        if self._shared:
            self._detach()
        memo = self._pack_memo
        pend = self._pack_pending
        old = self._scores.get(item_id)
        if old is not None:
            self._norm2 -= old * old
            if old > 0.0:
                self._liked.discard(item_id)
        self._scores[item_id] = score
        self._timestamps[item_id] = timestamp
        self._norm2 += score * score
        if score > 0.0:
            self._liked.add(item_id)
        if timestamp < self._min_ts:
            self._min_ts = timestamp
        self._version += 1
        if (
            pend is not None
            and memo is not None
            and memo[0] + len(pend) == self._version - 1
            and len(pend) < _PACK_PENDING_MAX
            and array_state_enabled()
        ):
            pend.append((item_id, score))
        elif pend is not None:
            self._pack_pending = None  # chain broken: back to lazy rebuilds

    def remove(self, item_id: int) -> None:
        """Drop the entry for *item_id* (no-op if absent)."""
        if self._shared:
            self._detach()
        pack = self._pack_current() if array_state_enabled() else None
        old = self._scores.pop(item_id, None)
        if old is None:
            return
        del self._timestamps[item_id]
        self._norm2 -= old * old
        if self._norm2 < 0.0:  # float drift guard
            self._norm2 = 0.0
        if old > 0.0:
            self._liked.discard(item_id)
        self._version += 1
        if pack is not None and pack.rated_ids.size >= _PACK_INCREMENTAL_MIN:
            self._pack_memo = (
                self._version,
                _pack_with_remove(pack, item_id, self.norm, self.is_binary),
            )
            self._pack_pending = []

    def purge_older_than(self, cutoff: int) -> int:
        """Remove all entries with ``timestamp < cutoff``.

        Implements the profile-window cleaning of Section II-E (user
        profiles, periodic) and Algorithm 1 lines 8-10 (item profiles, before
        forwarding).

        Returns
        -------
        int
            The number of entries removed.
        """
        if cutoff <= self._min_ts:
            # every entry is provably >= cutoff: skip the scan entirely
            return 0
        pack = self._pack_current() if array_state_enabled() else None
        memo = self._pack_memo
        pend = self._pack_pending
        # detach the memo for the removal loop so per-remove incremental
        # updates cannot fire (the purge re-derives the pack in one mask
        # pass below instead of k sorted deletes)
        self._pack_memo = None
        self._pack_pending = None
        stale = [iid for iid, ts in self._timestamps.items() if ts < cutoff]
        for iid in stale:
            self.remove(iid)
        if stale:
            self._min_ts = min(self._timestamps.values(), default=math.inf)
            if pack is not None and pack.rated_ids.size >= _PACK_INCREMENTAL_MIN:
                self._pack_memo = (
                    self._version,
                    _pack_without_ids(pack, stale, self.norm, self.is_binary),
                )
                self._pack_pending = []
        else:
            # nothing was below cutoff after all: tighten the lower bound,
            # and the memo (version unchanged) stands on either backend
            self._min_ts = cutoff
            self._pack_memo = memo
            self._pack_pending = pend
        return len(stale)

    def clear(self) -> None:
        """Drop every entry."""
        if self._shared:
            # co-owners keep the old containers; this profile starts fresh
            self._scores = {}
            self._timestamps = {}
            self._liked = set()
            self._shared = False
        else:
            self._scores.clear()
            self._timestamps.clear()
            self._liked.clear()
        self._norm2 = 0.0
        self._min_ts = math.inf
        self._version += 1
        self._pack_memo = None
        self._pack_pending = None

    # -- queries ----------------------------------------------------------

    @property
    def scores(self) -> dict[int, float]:
        """Identifier → score mapping (do not mutate directly)."""
        return self._scores

    @property
    def liked(self) -> set[int]:
        """Identifiers with a strictly positive score."""
        return self._liked

    @property
    def norm(self) -> float:
        """Euclidean norm of the score vector, ``‖P‖``."""
        return math.sqrt(self._norm2) if self._norm2 > 0.0 else 0.0

    @property
    def version(self) -> int:
        """Mutation counter; increases on every change."""
        return self._version

    def _pack_current(self) -> PackedView | None:
        """The memoised pack advanced to the current version, or ``None``.

        Applies any pending set-op journal in one vectorised merge
        (:func:`_pack_apply_sets`).  Returns ``None`` when no memoised
        pack can be carried to the current version — the caller rebuilds
        lazily, exactly as on the legacy plane.
        """
        memo = self._pack_memo
        if memo is None:
            return None
        if memo[0] == self._version:
            return memo[1]
        pend = self._pack_pending
        if pend and memo[0] + len(pend) == self._version:
            pack = _pack_apply_sets(memo[1], pend, self.norm, self.is_binary)
            self._pack_memo = (self._version, pack)
            self._pack_pending = []
            return pack
        return None

    def packed(self) -> PackedView:
        """Sorted packed id/score arrays, memoised per mutation version.

        Any mutation bumps :attr:`version`, making the memo unreachable —
        unless the array state plane journaled the mutations, in which
        case the memo is *advanced* by one vectorised merge instead of
        rebuilt (:meth:`_pack_current`).
        """
        pack = self._pack_current()
        if pack is not None:
            return pack
        pack = PackedView(self)
        self._pack_memo = (self._version, pack)
        # start a fresh journal chain — but only for profiles large
        # enough that the batched merge beats a rebuild; small ones stay
        # on the lazy-invalidate discipline (see _PACK_INCREMENTAL_MIN)
        if (
            array_state_enabled()
            and len(self._scores) >= _PACK_INCREMENTAL_MIN
        ):
            self._pack_pending = []
        else:
            self._pack_pending = None
        return pack

    def storage_nbytes(self) -> int:
        """In-memory footprint of the profile's own containers, in bytes.

        Dict/set stores plus, when a packed memo is held, its array
        columns — the facade accessor the memory benchmarks read.
        """
        import sys

        total = (
            sys.getsizeof(self._scores)
            + sys.getsizeof(self._timestamps)
            + sys.getsizeof(self._liked)
        )
        memo = self._pack_memo
        if memo is not None:
            pack = memo[1]
            total += pack.rated_ids.nbytes + pack.rated_scores.nbytes
            total += pack.liked_ids.nbytes
        return total

    def score_of(self, item_id: int) -> float | None:
        """Score for *item_id*, or ``None`` when the item is unrated."""
        return self._scores.get(item_id)

    def timestamp_of(self, item_id: int) -> int | None:
        """Timestamp for *item_id*, or ``None`` when the item is unrated."""
        return self._timestamps.get(item_id)

    def entries(self) -> Iterator[ProfileEntry]:
        """Iterate over the profile's triplets (arbitrary order)."""
        for iid, score in self._scores.items():
            yield ProfileEntry(iid, self._timestamps[iid], score)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._scores

    def __len__(self) -> int:
        return len(self._scores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={len(self)}, liked={len(self._liked)})"


class FrozenProfile:
    """An immutable, hashable snapshot of a profile at a point in time.

    Gossip messages in the paper carry node profiles inside view entries.
    Simulated messages carry :class:`FrozenProfile` objects: they preserve
    the profile's state at send time even if the owner keeps rating items,
    and they precompute the sets and norm the similarity metrics need.

    For the batch similarity kernel the snapshot additionally exposes

    * :attr:`liked_ids` / :attr:`rated_ids` — sorted ``uint64`` arrays of the
      liked / rated identifiers, and :attr:`rated_scores` — the ``float64``
      score vector aligned with ``rated_ids``.  All three are computed
      lazily on first access and memoised (snapshots are immutable);
    * :attr:`uid` — a process-unique integer identifying this snapshot, and
      :attr:`version` — the source profile's mutation version.  Together
      with per-version snapshot memoisation, ``uid`` is a version-keyed
      cache key: a profile mutation produces a new snapshot with a new
      ``uid``, so scores cached against the old one can never be reused.
    """

    __slots__ = (
        "scores",
        "liked",
        "rated",
        "norm",
        "is_binary",
        "uid",
        "version",
        "_liked_ids",
        "_rated_ids",
        "_rated_scores",
        "_nd",
        "wire_cache",
    )

    _uid_counter = itertools.count(1)

    def __init__(
        self,
        scores: dict[int, float],
        *,
        is_binary: bool,
        version: int = 0,
        arrays: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
    ) -> None:
        self.scores: dict[int, float] = dict(scores)
        self.liked: frozenset[int] = frozenset(
            iid for iid, s in scores.items() if s > 0.0
        )
        self.rated: frozenset[int] = frozenset(scores)
        norm2 = 0.0
        for s in scores.values():
            norm2 += s * s
        self.norm: float = math.sqrt(norm2) if norm2 > 0.0 else 0.0
        self.is_binary: bool = is_binary
        self.uid: int = next(FrozenProfile._uid_counter)
        self.version: int = version
        # *arrays* adopts already-packed (liked_ids, rated_ids,
        # rated_scores) columns from the source profile's packed memo
        # (array state plane) — the arrays are immutable-by-convention and
        # value-identical to what :meth:`_pack` would rebuild, so the
        # snapshot skips its own fromiter/argsort pass
        if arrays is not None:
            self._liked_ids, self._rated_ids, self._rated_scores = arrays
        else:
            self._liked_ids = None
            self._rated_ids = None
            self._rated_scores = None
        #: native-kernel descriptor; ``None`` until :meth:`_pack` runs (the
        #: compiled kernels call ``_pack`` themselves on first contact)
        self._nd: tuple | None = None
        #: memo slot for the modelled wire size of descriptors carrying
        #: this snapshot (filled by repro.gossip.views.descriptor_wire_size)
        self.wire_cache: int | None = None

    def _pack(self) -> None:
        if self._rated_ids is None:
            n = len(self.scores)
            ids = pack_id_array(self.scores.keys(), n)
            vals = np.fromiter(self.scores.values(), dtype=np.float64, count=n)
            order = np.argsort(ids)
            ids = ids[order]
            vals = vals[order]
            self._rated_ids = ids
            self._rated_scores = vals
            self._liked_ids = ids[vals > 0.0]
        self._nd = _native_descriptor(
            self._liked_ids,
            self._rated_ids,
            self._rated_scores,
            self.norm,
            self.is_binary,
        )

    @property
    def liked_ids(self) -> np.ndarray:
        """Sorted ``uint64`` array of identifiers with positive score."""
        if self._liked_ids is None:
            self._pack()
        return self._liked_ids

    @property
    def rated_ids(self) -> np.ndarray:
        """Sorted ``uint64`` array of all rated identifiers."""
        if self._rated_ids is None:
            self._pack()
        return self._rated_ids

    @property
    def rated_scores(self) -> np.ndarray:
        """``float64`` scores aligned with :attr:`rated_ids`."""
        if self._rated_scores is None:
            self._pack()
        return self._rated_scores

    def __len__(self) -> int:
        return len(self.scores)

    def __getstate__(self) -> dict:
        """Serialize the canonical fields only; derived state rebuilds.

        Snapshots are the bulk of every cross-shard gossip blob (view
        shipments carry one per descriptor), so the wire form matters:
        the like/rated frozensets and the packed ``uint64``/``float64``
        arrays are pure functions of ``scores`` and are rebuilt (sets
        eagerly, arrays lazily on first pack contact) instead of
        travelling — measured ≈3× fewer bytes, ≈7× faster ``dumps`` and
        ≈2× faster combined dumps+loads on realistic shipment blobs
        (loads pay the set rebuild back).  The native descriptor
        (raw process-local addresses) never travels.  ``uid`` does
        round-trip: it stays globally consistent across shard workers
        because each worker allocates fresh uids from a disjoint range
        (see :mod:`repro.simulation.sharding`).
        """
        return {
            "scores": self.scores,
            "norm": self.norm,
            "is_binary": self.is_binary,
            "uid": self.uid,
            "version": self.version,
            "wire_cache": self.wire_cache,
        }

    def __setstate__(self, state: dict) -> None:
        scores = state["scores"]
        self.scores = scores
        self.liked = frozenset(
            iid for iid, s in scores.items() if s > 0.0
        )
        self.rated = frozenset(scores)
        self.norm = state["norm"]
        self.is_binary = state["is_binary"]
        self.uid = state["uid"]
        self.version = state["version"]
        self._liked_ids = None
        self._rated_ids = None
        self._rated_scores = None
        self._nd = None
        self.wire_cache = state["wire_cache"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenProfile(n={len(self.scores)}, liked={len(self.liked)})"


_MISSING = object()


def _same_float(a: float, b: float) -> bool:
    """Exact (bitwise-faithful) float equality: ±0.0 differ, NaN ≠ NaN."""
    return a == b and (a != 0.0 or math.copysign(1.0, a) == math.copysign(1.0, b))


def score_delta(
    base: dict[int, float], new: dict[int, float]
) -> "tuple[list[int], list[float], list[int]] | None":
    """The op-journal-shaped diff turning *base* into *new*.

    Returns ``(set_ids, set_values, removed_ids)`` — the minimal set-op
    journal whose replay over *base* produces *new* — or ``None`` when
    the diff is not strictly smaller than shipping the dict whole.
    Comparison is float-exact (``-0.0`` vs ``0.0`` and NaN count as
    changes), so the replay is bitwise-faithful.

    Every profile mutation *is* a set-op (:meth:`UserProfile.set_score`
    journals exactly these pairs), so when *base* and *new* are snapshots
    of one profile timeline this reconstructs the ops that ran between
    the two versions: surviving keys keep their *base* dict slots,
    (re)rated keys re-append in op order — replay reproduces *new*'s
    exact insertion order, not just its mapping.  The cross-shard wire
    (:mod:`repro.simulation.wire`) relies on both properties.
    """
    set_ids: list[int] = []
    set_vals: list[float] = []
    get = base.get
    for k, v in new.items():
        bv = get(k, _MISSING)
        if bv is _MISSING or not _same_float(bv, v):
            set_ids.append(k)
            set_vals.append(v)
    removed = [k for k in base if k not in new]
    # worth it only when strictly slimmer than the full (id, score) table
    if 2 * len(set_ids) + len(removed) >= 2 * len(new):
        return None
    return set_ids, set_vals, removed


def apply_score_delta(
    base: dict[int, float],
    set_ids: "list[int]",
    set_values: "list[float]",
    removed: "list[int]",
) -> dict[int, float]:
    """Replay a :func:`score_delta` journal over *base* (a new dict).

    Removals first, then the set-ops in order — the order the mutations
    originally ran, so the result's dict insertion order matches the
    sender's.  A removal naming an absent key raises ``KeyError``: the
    delta was made against a different base, and corrupting a profile
    silently would be far worse.
    """
    scores = dict(base)
    for k in removed:
        del scores[k]
    for k, v in zip(set_ids, set_values, strict=True):
        scores[k] = v
    return scores


class UserProfile(Profile):
    """A node's own opinion record ``P̃`` (binary scores).

    Updated when the user clicks like/dislike on a received item (Algorithm 1
    lines 5 and 7) or publishes an item (line 14).
    """

    __slots__ = ("_snapshot", "_snapshot_version")

    is_binary = True

    def __init__(self, entries: Iterable[ProfileEntry] = ()) -> None:
        super().__init__(entries)
        self._snapshot: FrozenProfile | None = None
        self._snapshot_version: int = -1

    def record_opinion(self, item_id: int, timestamp: int, liked: bool) -> None:
        """Record the user's opinion on an item.

        Parameters
        ----------
        item_id:
            The item's 8-byte identifier.
        timestamp:
            The item's creation timestamp (profile entries age by *item*
            time, so purging drops old *news*, not old *opinions*).
        liked:
            ``True`` → score 1 (like); ``False`` → score 0 (dislike).
        """
        self.set(item_id, timestamp, 1.0 if liked else 0.0)

    @property
    def rated(self) -> set[int]:
        """All identifiers the user has expressed an opinion on."""
        return set(self._scores)

    def snapshot(self) -> FrozenProfile:
        """Return an immutable snapshot (memoised per mutation version).

        On the array state plane, once a snapshot of this profile has
        been packed (evidence its snapshots get scored), every later
        snapshot adopts the profile's packed columns — maintained
        incrementally by :meth:`Profile.set` — instead of re-sorting its
        own.  Unscored profiles keep the fully lazy discipline.
        """
        if self._snapshot is None or self._snapshot_version != self._version:
            arrays = None
            prev = self._snapshot
            if (
                prev is not None
                and prev._rated_ids is not None
                and array_state_enabled()
            ):
                pack = self._pack_current()
                if pack is not None:
                    # the journal chain is alive: one merge, then adopt
                    arrays = (
                        pack.liked_ids,
                        pack.rated_ids,
                        pack.rated_scores,
                    )
                elif len(self._scores) >= _PACK_INCREMENTAL_MIN:
                    # large scored profile: pay one pack build to start
                    # the chain; later set()s carry it forward.  Small
                    # profiles keep the fully lazy legacy discipline —
                    # their rebuilds are cheaper than the bookkeeping.
                    pack = self.packed()
                    arrays = (
                        pack.liked_ids,
                        pack.rated_ids,
                        pack.rated_scores,
                    )
            self._snapshot = FrozenProfile(
                self._scores,
                is_binary=True,
                version=self._version,
                arrays=arrays,
            )
            self._snapshot_version = self._version
        return self._snapshot


class ItemProfile(Profile):
    """The community profile ``P^I`` carried by a circulating item copy.

    Two copies of the same item travelling along different paths have
    *different* item profiles: each reflects the interests of the portion of
    the network its copy traversed (Section II-B).
    """

    __slots__ = ()

    def integrate(self, user_profile: Profile) -> None:
        """Fold a liker's user profile into this item profile.

        Implements Algorithm 1's loop over the user profile (lines 3-4 /
        15-16) with ``addToNewsProfile`` (lines 18-22): for each tuple of the
        user profile, average with the existing score when the identifier is
        already present, otherwise insert the user's tuple.

        This runs once per like along every dissemination path, so the loop
        updates the backing containers directly instead of going through
        :meth:`set` — same arithmetic, an order of magnitude fewer calls.

        On the array state plane a warm packed memo rides along: the next
        version's sorted arrays are derived by one vectorised merge with
        the liker's packed profile (:func:`_pack_with_integrate`) instead
        of being rebuilt from the dicts on next use.
        """
        if self._shared:
            self._detach()
        pack0 = self._pack_current() if array_state_enabled() else None
        scores = self._scores
        timestamps = self._timestamps
        liked = self._liked
        norm2 = self._norm2
        min_ts = self._min_ts
        user_ts = user_profile._timestamps
        for iid, s_n in user_profile._scores.items():
            ts = user_ts[iid]
            existing = scores.get(iid)
            if existing is not None:
                # average, keeping the freshest timestamp so the entry ages
                # from its latest sighting
                if ts > timestamps[iid]:
                    timestamps[iid] = ts
                new = (existing + s_n) / 2.0
                norm2 -= existing * existing
                norm2 += new * new
                scores[iid] = new
                if new > 0.0:
                    liked.add(iid)
                elif existing > 0.0:
                    liked.discard(iid)
            else:
                scores[iid] = s_n
                timestamps[iid] = ts
                norm2 += s_n * s_n
                if s_n > 0.0:
                    liked.add(iid)
                if ts < min_ts:
                    min_ts = ts
        if norm2 < 0.0:  # float drift guard
            norm2 = 0.0
        self._norm2 = norm2
        self._min_ts = min_ts
        self._version += 1
        if pack0 is not None:
            self._pack_memo = (
                self._version,
                _pack_with_integrate(
                    pack0, user_profile.packed(), self.norm
                ),
            )
            self._pack_pending = []

    def copy(self) -> "ItemProfile":
        """Logically deep-copy the profile (copy-on-write).

        A forwarded copy evolves independently, but most copies are never
        mutated again (a disliking receiver neither integrates nor, usually,
        purges anything), so the clone *shares* the backing containers and
        both sides materialise private copies only on their first mutation.
        """
        clone = ItemProfile.__new__(ItemProfile)
        self._shared = True
        clone._scores = self._scores
        clone._timestamps = self._timestamps
        clone._liked = self._liked
        clone._norm2 = self._norm2
        clone._version = 0
        clone._min_ts = self._min_ts
        clone._shared = True
        # a current pack describes the shared containers verbatim, so the
        # clone inherits it under its own version counter (packed once per
        # dissemination path segment, not once per hop).  The journaled
        # packs never mutate their arrays, so sharing is safe.
        memo = self._pack_memo
        if memo is not None and memo[0] == self._version:
            clone._pack_memo = (0, memo[1])
            clone._pack_pending = [] if self._pack_pending is not None else None
        else:
            clone._pack_memo = None
            clone._pack_pending = None
        return clone

    def freeze(self) -> FrozenProfile:
        """Immutable snapshot (used by similarity-ranking code paths).

        A maintained packed memo (array state plane) is adopted wholesale
        — the frozen copy shares the memo's columns instead of re-packing.
        """
        arrays = None
        if array_state_enabled():
            pack = self._pack_current()
            if pack is not None:
                arrays = (pack.liked_ids, pack.rated_ids, pack.rated_scores)
        return FrozenProfile(
            self._scores, is_binary=False, version=self._version, arrays=arrays
        )
