"""System assembly: build a runnable WHATSUP deployment.

:class:`WhatsUpSystem` wires a workload (:class:`~repro.datasets.base.Dataset`),
a parameter set (:class:`~repro.core.config.WhatsUpConfig`) and a transport
into a ready :class:`~repro.simulation.engine.CycleEngine` population of
:class:`~repro.core.node.WhatsUpNode`.  It also implements the initial
bootstrap (random overlay seeding — the simulation analogue of the tracker /
address cache a real deployment would use) and mid-run joins via the
paper's cold-start procedure (Section II-D).
"""

from __future__ import annotations

import numpy as np

from contextlib import nullcontext
from typing import TYPE_CHECKING

from repro.core.coldstart import bootstrap_from_contact
from repro.core.config import WhatsUpConfig
from repro.core.node import OpinionFn, WhatsUpNode
from repro.gossip.bootstrap import random_view_bootstrap
from repro.network.transport import Transport
from repro.simulation.harness import SystemHarness
from repro.simulation.sharding import make_engine
from repro.utils.exceptions import SimulationError
from repro.utils.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    # imported lazily at runtime to avoid a core <-> datasets import cycle
    from repro.datasets.base import Dataset

__all__ = ["WhatsUpSystem", "seed_random_views"]


def seed_random_views(
    nodes: list[WhatsUpNode], rng: np.random.Generator
) -> None:
    """Fill every node's RPS and WUP views with uniform random peers.

    At start-up all profiles are empty, so there is no similarity signal
    yet; random seeding matches the paper's deployment, where a joining
    node inherits views from an arbitrary contact.  Descriptors are stamped
    with cycle 0 and the peers' (empty) profile snapshots.
    """
    random_view_bootstrap(nodes, rng, lambda n: (n.rps.view, n.wup.view))


class WhatsUpSystem(SystemHarness):
    """A complete WHATSUP deployment over a workload.

    Parameters
    ----------
    dataset:
        The workload (users, items, ground-truth opinions, schedule).
    config:
        Protocol parameters; defaults to the paper's Table II values.
    seed:
        Root seed; every random choice in the run derives from it.
    transport:
        Optional loss model (default: perfect delivery, the paper's
        simulation setting).
    churn:
        Optional churn model.
    run_config:
        Optional :class:`repro.api.RunConfig` pinning the whole pipeline
        gate matrix (shards, wire tier, kernels, faults, …) for this
        system.  Construction and every :meth:`run` execute under
        ``run_config.apply()``, so the configuration holds without
        touching env vars or module gates — the programmatic replacement
        for the ``REPRO_*`` environment soup.

    Examples
    --------
    >>> from repro.datasets import survey_dataset
    >>> system = WhatsUpSystem(survey_dataset(n_base_users=30, n_base_items=40))
    >>> system.run()                                    # doctest: +SKIP
    """

    system_name = "whatsup"

    def __init__(
        self,
        dataset: "Dataset",
        config: WhatsUpConfig | None = None,
        *,
        seed: int = 0,
        transport: Transport | None = None,
        churn: object | None = None,
        node_cls: type[WhatsUpNode] = WhatsUpNode,
        node_kwargs: dict | None = None,
        run_config: object | None = None,
    ) -> None:
        self._run_config = run_config
        with self._configured():
            self._build(
                dataset,
                config,
                seed=seed,
                transport=transport,
                churn=churn,
                node_cls=node_cls,
                node_kwargs=node_kwargs,
            )

    def _configured(self):
        """``run_config.apply()``, or a no-op guard when none was given."""
        if self._run_config is None:
            return nullcontext()
        return self._run_config.apply()

    def _build(
        self,
        dataset: "Dataset",
        config: WhatsUpConfig | None,
        *,
        seed: int,
        transport: Transport | None,
        churn: object | None,
        node_cls: type[WhatsUpNode],
        node_kwargs: dict | None,
    ) -> None:
        from repro.datasets.base import OpinionOracle

        self.config = config if config is not None else WhatsUpConfig()
        self.streams = RngStreams(seed)
        self.oracle: OpinionFn = OpinionOracle(dataset)

        extra = dict(node_kwargs or {})
        self.nodes: list[WhatsUpNode] = [
            node_cls(uid, self.config, self.oracle, self.streams, **extra)
            for uid in range(dataset.n_users)
        ]
        seed_random_views(self.nodes, self.streams.get("bootstrap"))

        # the factory honours REPRO_SHARDS: 1 (the default) is a plain
        # CycleEngine, above that the population runs process-sharded
        # (see repro.simulation.sharding)
        engine = make_engine(
            self.nodes,
            dataset.schedule(),
            transport=transport,
            streams=self.streams,
            churn=churn,
        )
        super().__init__(dataset, engine)
        if self.config.similarity != "wup":
            # paper naming: the cosine variant is "WhatsUp-Cos"
            short = {"cosine": "cos"}.get(
                self.config.similarity, self.config.similarity
            )
            self.system_name = f"whatsup-{short}"

    # ------------------------------------------------------------------ #

    def run(self, cycles: int | None = None, *, drain: bool = True) -> None:
        """Run the deployment (see :meth:`SystemHarness.run`).

        Under a sharded engine (``REPRO_SHARDS>1``) the worker state is
        adopted back into the parent afterwards, and ``self.nodes`` is
        re-pointed at the collected node objects so post-run analyses
        (profiles, views, seen sets) read the real final state.  With a
        ``run_config``, the cycles execute under it (the per-cycle gates
        — batch scoring, delivery batching — are read at cycle time).
        """
        with self._configured():
            super().run(cycles, drain=drain)
        engine = self.engine
        if hasattr(engine, "collect"):
            engine.collect()
            fresh = engine.nodes
            self.nodes = [fresh[node.node_id] for node in self.nodes]

    def close(self) -> None:
        """Release engine resources (sharded worker processes/segments)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------ #

    def join_node(
        self,
        node_id: int,
        opinion: OpinionFn | None = None,
        *,
        contact_id: int | None = None,
    ) -> WhatsUpNode:
        """Add a node mid-run via the paper's cold-start procedure.

        Parameters
        ----------
        node_id:
            Id for the new node (must be unused).
        opinion:
            The joiner's opinion oracle; defaults to the dataset oracle
            (valid when ``node_id < dataset.n_users``, e.g. a user whose
            node was not part of the initial population).
        contact_id:
            The existing node contacted for bootstrap; default a uniformly
            random alive node.
        """
        if opinion is None:
            if node_id >= self.dataset.n_users:
                raise SimulationError(
                    f"node id {node_id} has no dataset opinions; pass an "
                    "explicit opinion oracle"
                )
            opinion = self.oracle
        joiner = WhatsUpNode(node_id, self.config, opinion, self.streams)
        rng = self.streams.get("join")
        if contact_id is None:
            alive = self.engine.alive_node_ids()
            if not alive:
                raise SimulationError("no alive node to bootstrap from")
            contact_id = int(alive[int(rng.integers(len(alive)))])
        contact = self.engine.node(contact_id)
        if not isinstance(contact, WhatsUpNode):
            raise SimulationError(
                f"contact {contact_id} is not a WhatsUpNode"
            )
        item_timestamps = {
            item.item_id: item.created_at for item in self.dataset.items
        }
        bootstrap_from_contact(
            joiner,
            contact,
            self.engine.now,
            item_timestamps=item_timestamps,
        )
        self.engine.add_node(joiner)
        self.nodes.append(joiner)
        return joiner

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WhatsUpSystem(dataset={self.dataset.name!r}, "
            f"nodes={len(self.nodes)}, f_like={self.config.f_like}, "
            f"metric={self.config.similarity!r})"
        )
