"""Interest-similarity metrics (paper Section II and Section V-A).

The paper's central algorithmic contribution is an **asymmetric variant of
cosine similarity**:

.. math::

    \\mathrm{Similarity}(n, c) =
        \\frac{sub(P_n, P_c) \\cdot P_c}
             {\\lVert sub(P_n, P_c) \\rVert \\; \\lVert P_c \\rVert}

where :math:`sub(P_n, P_c)` restricts node *n*'s profile to the items that
appear (with any score) in candidate *c*'s profile.  For the binary user
profiles of WHATSUP this reads:

* numerator — the number of items **liked by both** *n* and *c*;
* first denominator factor — the square root of the number of items liked by
  *n* **on which c expressed any opinion** (so a candidate that *dislikes*
  what *n* likes is penalised — spam aversion);
* second factor — the square root of the number of items liked by *c*
  (favouring candidates with small, selective profiles — which is what makes
  cold-starting nodes attractive neighbours, Section II-D).

This module implements that metric, the classical cosine baseline the paper
compares against, and two extra set metrics (Jaccard, overlap) used by our
ablation benchmarks.  It also provides vectorised all-pairs forms used by the
centralized baselines (C-WHATSUP) and the sociability/popularity analyses.

All scalar metrics share the signature ``metric(p_n, p_c) -> float`` where
both arguments are *profile-like*: any object exposing ``scores`` (id→score
mapping), ``liked`` (set of ids with positive score) and ``norm`` (Euclidean
norm).  :class:`repro.core.profiles.Profile` and
:class:`repro.core.profiles.FrozenProfile` both qualify.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ProfileLike",
    "wup_similarity",
    "cosine_similarity",
    "jaccard_similarity",
    "overlap_similarity",
    "get_metric",
    "available_metrics",
    "pairwise_cosine",
    "pairwise_wup",
    "similarity_matrix",
]


@runtime_checkable
class ProfileLike(Protocol):
    """Structural type accepted by every scalar similarity metric."""

    @property
    def scores(self) -> dict[int, float]: ...  # noqa: E704 - protocol stub

    @property
    def liked(self) -> "frozenset[int] | set[int]": ...  # noqa: E704

    @property
    def norm(self) -> float: ...  # noqa: E704


def _rated_ids(profile: ProfileLike):
    """The identifiers a profile has *any* opinion on (likes and dislikes)."""
    rated = getattr(profile, "rated", None)
    if isinstance(rated, frozenset):
        # FrozenProfile precomputes this; mutable profiles expose a live
        # keys view instead (avoids copying in the hot path).
        return rated
    return profile.scores.keys()


def _is_binary(profile: ProfileLike) -> bool:
    flag = getattr(profile, "is_binary", None)
    return bool(flag)


def wup_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """The paper's asymmetric WUP metric, ``Similarity(n, c)``.

    Parameters
    ----------
    p_n:
        The profile of the node *doing the choosing* (the view owner in WUP,
        or the candidate node in BEEP's dislike orientation).
    p_c:
        The candidate profile being scored (a peer's user profile in WUP; an
        item profile in BEEP orientation).

    Returns
    -------
    float
        A value in ``[0, 1]``; ``0`` when either profile is empty or the
        profiles share no liked item.

    Notes
    -----
    The metric is **asymmetric**: ``wup_similarity(a, b)`` generally differs
    from ``wup_similarity(b, a)``.  The paper argues this fits push-style
    dissemination, where users choose the next hops of items but have no
    control over who sends items to them.
    """
    norm_c = p_c.norm
    if norm_c == 0.0:
        return 0.0
    if _is_binary(p_n) and _is_binary(p_c):
        # Binary fast path (user-profile vs user-profile): pure set algebra.
        liked_n = p_n.liked
        if not liked_n:
            return 0.0
        common_liked = len(liked_n & p_c.liked)
        if common_liked == 0:
            return 0.0
        sub_norm2 = len(liked_n & _rated_ids(p_c))
        return common_liked / (math.sqrt(sub_norm2) * norm_c)

    # General path (real-valued scores, e.g. item profiles).
    scores_n = p_n.scores
    scores_c = p_c.scores
    if not scores_n or not scores_c:
        return 0.0
    dot = 0.0
    sub_norm2 = 0.0
    if len(scores_n) <= len(scores_c):
        for iid, s_n in scores_n.items():
            s_c = scores_c.get(iid)
            if s_c is not None:
                dot += s_n * s_c
                sub_norm2 += s_n * s_n
    else:
        for iid, s_c in scores_c.items():
            s_n = scores_n.get(iid)
            if s_n is not None:
                dot += s_n * s_c
                sub_norm2 += s_n * s_n
    if dot == 0.0 or sub_norm2 == 0.0:
        return 0.0
    return dot / (math.sqrt(sub_norm2) * norm_c)


def cosine_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """Classical cosine similarity between two profiles.

    The baseline metric from Tan et al. that the paper compares against
    (CF-Cos, WHATSUP-Cos).  Symmetric; ``0`` when either profile is empty.
    """
    norm_n = p_n.norm
    norm_c = p_c.norm
    if norm_n == 0.0 or norm_c == 0.0:
        return 0.0
    if _is_binary(p_n) and _is_binary(p_c):
        common = len(p_n.liked & p_c.liked)
        if common == 0:
            return 0.0
        return common / (norm_n * norm_c)
    scores_n = p_n.scores
    scores_c = p_c.scores
    if len(scores_n) > len(scores_c):
        scores_n, scores_c = scores_c, scores_n
    dot = 0.0
    for iid, s_a in scores_n.items():
        s_b = scores_c.get(iid)
        if s_b is not None:
            dot += s_a * s_b
    if dot == 0.0:
        return 0.0
    return dot / (norm_n * norm_c)


def jaccard_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """Jaccard index of the two profiles' *liked* sets.

    Not used by WHATSUP itself; included for the metric-ablation benchmark
    (the paper's related work discusses Jaccard as a common CF metric).
    """
    liked_n = p_n.liked
    liked_c = p_c.liked
    if not liked_n or not liked_c:
        return 0.0
    inter = len(liked_n & liked_c)
    if inter == 0:
        return 0.0
    union = len(liked_n) + len(liked_c) - inter
    return inter / union


def overlap_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient of the liked sets."""
    liked_n = p_n.liked
    liked_c = p_c.liked
    if not liked_n or not liked_c:
        return 0.0
    inter = len(liked_n & liked_c)
    if inter == 0:
        return 0.0
    return inter / min(len(liked_n), len(liked_c))


MetricFn = Callable[[ProfileLike, ProfileLike], float]

_METRICS: dict[str, MetricFn] = {
    "wup": wup_similarity,
    "cosine": cosine_similarity,
    "jaccard": jaccard_similarity,
    "overlap": overlap_similarity,
}


def get_metric(name: str) -> MetricFn:
    """Look up a similarity metric by name.

    Parameters
    ----------
    name:
        One of ``"wup"``, ``"cosine"``, ``"jaccard"``, ``"overlap"``
        (case-insensitive).

    Raises
    ------
    ConfigurationError
        If the name is unknown.
    """
    try:
        return _METRICS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown similarity metric {name!r}; "
            f"available: {sorted(_METRICS)}"
        ) from None


def available_metrics() -> list[str]:
    """Names of all registered similarity metrics."""
    return sorted(_METRICS)


# ---------------------------------------------------------------------------
# Vectorised all-pairs forms (centralized baselines & analyses)
# ---------------------------------------------------------------------------


def pairwise_cosine(likes: np.ndarray) -> np.ndarray:
    """All-pairs binary cosine similarity.

    Parameters
    ----------
    likes:
        Boolean array of shape ``(n_users, n_items)``; ``likes[u, i]`` is
        true when user *u* likes item *i*.

    Returns
    -------
    numpy.ndarray
        Dense ``(n_users, n_users)`` matrix with
        ``S[a, b] = |L_a ∩ L_b| / sqrt(|L_a| |L_b|)`` and zero rows/columns
        for users with empty profiles.  The diagonal is *not* zeroed.
    """
    mat = np.asarray(likes, dtype=np.float64)
    common = mat @ mat.T
    counts = mat.sum(axis=1)
    denom = np.sqrt(np.outer(counts, counts))
    out = np.zeros_like(common)
    np.divide(common, denom, out=out, where=denom > 0)
    return out


def pairwise_wup(likes: np.ndarray, rated: np.ndarray) -> np.ndarray:
    """All-pairs binary WUP similarity.

    Parameters
    ----------
    likes:
        Boolean ``(n_users, n_items)`` like matrix.
    rated:
        Boolean ``(n_users, n_items)`` rated matrix (likes *and* dislikes).
        Must be a superset of *likes* element-wise.

    Returns
    -------
    numpy.ndarray
        ``S[n, c] = |L_n ∩ L_c| / (sqrt(|L_n ∩ R_c|) · sqrt(|L_c|))`` — the
        matrix form of :func:`wup_similarity` for binary profiles.  Rows are
        the "chooser" *n*, columns the candidate *c*.
    """
    lmat = np.asarray(likes, dtype=np.float64)
    rmat = np.asarray(rated, dtype=np.float64)
    if lmat.shape != rmat.shape:
        raise ConfigurationError(
            f"likes shape {lmat.shape} != rated shape {rmat.shape}"
        )
    common_likes = lmat @ lmat.T  # |L_n ∩ L_c|
    liked_rated = lmat @ rmat.T  # |L_n ∩ R_c|  (row n, column c)
    liked_counts = lmat.sum(axis=1)  # |L_c| per candidate column
    denom = np.sqrt(liked_rated) * np.sqrt(liked_counts)[None, :]
    out = np.zeros_like(common_likes)
    np.divide(common_likes, denom, out=out, where=denom > 0)
    return out


def similarity_matrix(
    likes: np.ndarray,
    rated: np.ndarray,
    metric: str = "wup",
) -> np.ndarray:
    """All-pairs similarity by metric name (vectorised where possible).

    ``"wup"`` and ``"cosine"`` use the dense matrix forms above; the set
    metrics fall back to a vectorised formulation over the like matrix.
    """
    name = metric.lower()
    if name == "wup":
        return pairwise_wup(likes, rated)
    if name == "cosine":
        return pairwise_cosine(likes)
    lmat = np.asarray(likes, dtype=np.float64)
    inter = lmat @ lmat.T
    counts = lmat.sum(axis=1)
    if name == "jaccard":
        union = counts[:, None] + counts[None, :] - inter
        out = np.zeros_like(inter)
        np.divide(inter, union, out=out, where=union > 0)
        return out
    if name == "overlap":
        mins = np.minimum(counts[:, None], counts[None, :])
        out = np.zeros_like(inter)
        np.divide(inter, mins, out=out, where=mins > 0)
        return out
    raise ConfigurationError(
        f"unknown similarity metric {metric!r}; available: {available_metrics()}"
    )
