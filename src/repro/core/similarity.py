"""Interest-similarity metrics (paper Section II and Section V-A).

The paper's central algorithmic contribution is an **asymmetric variant of
cosine similarity**:

.. math::

    \\mathrm{Similarity}(n, c) =
        \\frac{sub(P_n, P_c) \\cdot P_c}
             {\\lVert sub(P_n, P_c) \\rVert \\; \\lVert P_c \\rVert}

where :math:`sub(P_n, P_c)` restricts node *n*'s profile to the items that
appear (with any score) in candidate *c*'s profile.  For the binary user
profiles of WHATSUP this reads:

* numerator — the number of items **liked by both** *n* and *c*;
* first denominator factor — the square root of the number of items liked by
  *n* **on which c expressed any opinion** (so a candidate that *dislikes*
  what *n* likes is penalised — spam aversion);
* second factor — the square root of the number of items liked by *c*
  (favouring candidates with small, selective profiles — which is what makes
  cold-starting nodes attractive neighbours, Section II-D).

This module implements that metric, the classical cosine baseline the paper
compares against, and two extra set metrics (Jaccard, overlap) used by our
ablation benchmarks.  It also provides vectorised all-pairs forms used by the
centralized baselines (C-WHATSUP) and the sociability/popularity analyses.

All scalar metrics share the signature ``metric(p_n, p_c) -> float`` where
both arguments are *profile-like*: any object exposing ``scores`` (id→score
mapping), ``liked`` (set of ids with positive score) and ``norm`` (Euclidean
norm).  :class:`repro.core.profiles.Profile` and
:class:`repro.core.profiles.FrozenProfile` both qualify.

Batch scoring
-------------
The simulation's hot path — Vicinity merges and BEEP's dislike orientation —
scores one reference profile against a whole *pool* of candidates.  Doing
that one scalar call at a time dominates run time at paper scale, so this
module also provides:

* :func:`score_candidates` — a vectorised kernel that scores an entire
  candidate pool in one numpy pass (sorted-array intersections via
  ``searchsorted`` + segmented ``bincount`` sums), for all four metrics and
  both orientations of the asymmetric WUP metric.  The kernel accumulates
  partial sums in ascending-identifier order, the same canonical order the
  scalar general path uses, so batch and scalar scores agree **bitwise**;
* :class:`ScoreCache` — a bounded, version-keyed score cache.  Keys are the
  ``uid`` of each :class:`~repro.core.profiles.FrozenProfile` snapshot;
  because snapshots are memoised per profile mutation version, a cache
  entry is exactly a score for one ``(owner id, owner version, candidate
  id, candidate version, metric, orientation)`` tuple and can never serve a
  stale score after either profile changes.

Three-tier dispatch
-------------------
Pool scoring resolves through three tiers, checked in order:

1. **native** — the compiled C kernels of :mod:`repro._native`
   (sorted-array merge walks over the packed snapshots, plus the merge
   trim and argmax selections).  Active only when the extension is built
   *and* ``REPRO_NATIVE`` is not ``0``; absent extensions silently fall
   through, so a checkout without a C toolchain is never worse off.
2. **numpy** — the vectorised pass (``searchsorted`` intersections +
   segmented ``bincount`` sums), engaged past the measured
   :data:`VECTOR_MIN_PAIRS`/:data:`VECTOR_MIN_ENTRIES` crossover.
3. **set-algebra** — one Python call per pool with C-speed set
   intersections per pair (:func:`wup_pool_binary`,
   :func:`wup_pool_vs_item`), the small-pool workhorse.

All three tiers produce **bitwise-identical** scores (integer set counts;
weighted sums accumulated in one canonical ascending-packed-id order; the
same IEEE-754 expression shapes), so the dispatch is invisible to callers.

The batch path can be disabled globally (``REPRO_BATCH_SIM=0`` or
:func:`set_batch_scoring`), which restores the scalar per-pair path — used
by the equivalence benchmarks to prove all paths produce identical
rankings.  Tests and benchmarks should prefer the restore-guarded context
managers (:func:`batch_scoring`, :func:`scoring_disabled`,
:func:`repro._native.native_kernel`) over the raw setters, so a failure
inside a block cannot leak a global into unrelated code.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro._native import kernel as _native
from repro._native import (
    native_available,
    native_kernel,
    native_kernel_enabled,
    set_native_kernel,
)
from repro.core.gates import env_flag
from repro.core.profiles import FrozenProfile, _native_descriptor, pack_id_array
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ProfileLike",
    "wup_similarity",
    "cosine_similarity",
    "jaccard_similarity",
    "overlap_similarity",
    "get_metric",
    "available_metrics",
    "metric_name_of",
    "score_candidates",
    "wup_items_vs_pool",
    "PackedPool",
    "pack_profile",
    "ScoreCache",
    "default_score_cache",
    "batch_scoring_enabled",
    "set_batch_scoring",
    "batch_scoring",
    "scoring_disabled",
    "native_available",
    "native_kernel",
    "native_kernel_enabled",
    "set_native_kernel",
    "pairwise_cosine",
    "pairwise_wup",
    "similarity_matrix",
]


@runtime_checkable
class ProfileLike(Protocol):
    """Structural type accepted by every scalar similarity metric."""

    @property
    def scores(self) -> dict[int, float]: ...  # noqa: E704 - protocol stub

    @property
    def liked(self) -> "frozenset[int] | set[int]": ...  # noqa: E704

    @property
    def norm(self) -> float: ...  # noqa: E704


def _rated_ids(profile: ProfileLike):
    """The identifiers a profile has *any* opinion on (likes and dislikes)."""
    rated = getattr(profile, "rated", None)
    if isinstance(rated, frozenset):
        # FrozenProfile precomputes this; mutable profiles expose a live
        # keys view instead (avoids copying in the hot path).
        return rated
    return profile.scores.keys()


def _is_binary(profile: ProfileLike) -> bool:
    flag = getattr(profile, "is_binary", None)
    return bool(flag)


def _all_binary(profiles) -> bool:
    """Whether every profile in an iterable is flagged binary (fast scan)."""
    try:
        return all(p.is_binary for p in profiles)
    except AttributeError:
        return False


def wup_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """The paper's asymmetric WUP metric, ``Similarity(n, c)``.

    Parameters
    ----------
    p_n:
        The profile of the node *doing the choosing* (the view owner in WUP,
        or the candidate node in BEEP's dislike orientation).
    p_c:
        The candidate profile being scored (a peer's user profile in WUP; an
        item profile in BEEP orientation).

    Returns
    -------
    float
        A value in ``[0, 1]``; ``0`` when either profile is empty or the
        profiles share no liked item.

    Notes
    -----
    The metric is **asymmetric**: ``wup_similarity(a, b)`` generally differs
    from ``wup_similarity(b, a)``.  The paper argues this fits push-style
    dissemination, where users choose the next hops of items but have no
    control over who sends items to them.
    """
    norm_c = p_c.norm
    if norm_c == 0.0:
        return 0.0
    if _is_binary(p_n) and _is_binary(p_c):
        # Binary fast path (user-profile vs user-profile): pure set algebra.
        liked_n = p_n.liked
        if not liked_n:
            return 0.0
        common_liked = len(liked_n & p_c.liked)
        if common_liked == 0:
            return 0.0
        sub_norm2 = len(liked_n & _rated_ids(p_c))
        return common_liked / (math.sqrt(sub_norm2) * norm_c)

    # General path (real-valued scores, e.g. item profiles).  The partial
    # sums accumulate in ascending-identifier order — the canonical order
    # the batch kernel uses — so scalar and batch scores agree bitwise.
    scores_n = p_n.scores
    scores_c = p_c.scores
    if not scores_n or not scores_c:
        return 0.0
    dot = 0.0
    sub_norm2 = 0.0
    for iid in sorted(scores_n.keys() & scores_c.keys()):
        s_n = scores_n[iid]
        dot += s_n * scores_c[iid]
        sub_norm2 += s_n * s_n
    if dot == 0.0 or sub_norm2 == 0.0:
        return 0.0
    return dot / (math.sqrt(sub_norm2) * norm_c)


def cosine_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """Classical cosine similarity between two profiles.

    The baseline metric from Tan et al. that the paper compares against
    (CF-Cos, WHATSUP-Cos).  Symmetric; ``0`` when either profile is empty.
    """
    norm_n = p_n.norm
    norm_c = p_c.norm
    if norm_n == 0.0 or norm_c == 0.0:
        return 0.0
    if _is_binary(p_n) and _is_binary(p_c):
        common = len(p_n.liked & p_c.liked)
        if common == 0:
            return 0.0
        return common / (norm_n * norm_c)
    scores_n = p_n.scores
    scores_c = p_c.scores
    dot = 0.0
    for iid in sorted(scores_n.keys() & scores_c.keys()):
        dot += scores_n[iid] * scores_c[iid]
    if dot == 0.0:
        return 0.0
    return dot / (norm_n * norm_c)


def jaccard_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """Jaccard index of the two profiles' *liked* sets.

    Not used by WHATSUP itself; included for the metric-ablation benchmark
    (the paper's related work discusses Jaccard as a common CF metric).
    """
    liked_n = p_n.liked
    liked_c = p_c.liked
    if not liked_n or not liked_c:
        return 0.0
    inter = len(liked_n & liked_c)
    if inter == 0:
        return 0.0
    union = len(liked_n) + len(liked_c) - inter
    return inter / union


def overlap_similarity(p_n: ProfileLike, p_c: ProfileLike) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient of the liked sets."""
    liked_n = p_n.liked
    liked_c = p_c.liked
    if not liked_n or not liked_c:
        return 0.0
    inter = len(liked_n & liked_c)
    if inter == 0:
        return 0.0
    return inter / min(len(liked_n), len(liked_c))


MetricFn = Callable[[ProfileLike, ProfileLike], float]

_METRICS: dict[str, MetricFn] = {
    "wup": wup_similarity,
    "cosine": cosine_similarity,
    "jaccard": jaccard_similarity,
    "overlap": overlap_similarity,
}


def get_metric(name: str) -> MetricFn:
    """Look up a similarity metric by name.

    Parameters
    ----------
    name:
        One of ``"wup"``, ``"cosine"``, ``"jaccard"``, ``"overlap"``
        (case-insensitive).

    Raises
    ------
    ConfigurationError
        If the name is unknown.
    """
    try:
        return _METRICS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown similarity metric {name!r}; "
            f"available: {sorted(_METRICS)}"
        ) from None


def available_metrics() -> list[str]:
    """Names of all registered similarity metrics."""
    return sorted(_METRICS)


_METRIC_NAMES: dict[MetricFn, str] = {fn: name for name, fn in _METRICS.items()}


def metric_name_of(metric: MetricFn | str) -> str | None:
    """The registry name of a metric, or ``None`` for unknown callables.

    Accepts a registered name (validated, case-folded) or a metric function;
    custom callables that are not in the registry map to ``None``, which the
    batch entry points treat as "scalar only".
    """
    if isinstance(metric, str):
        name = metric.lower()
        if name not in _METRICS:
            raise ConfigurationError(
                f"unknown similarity metric {metric!r}; "
                f"available: {available_metrics()}"
            )
        return name
    return _METRIC_NAMES.get(metric)


# ---------------------------------------------------------------------------
# Batch scoring kernel + version-keyed score cache
# ---------------------------------------------------------------------------

_batch_enabled = env_flag("REPRO_BATCH_SIM")


def batch_scoring_enabled() -> bool:
    """Whether the vectorised batch scoring path is active."""
    return _batch_enabled


def set_batch_scoring(enabled: bool) -> bool:
    """Enable/disable the batch path; returns the previous setting.

    The scalar fallback produces identical rankings (and, for the canonical
    summation order, identical scores); the switch exists for equivalence
    benchmarks and debugging.  Prefer the :func:`batch_scoring` context
    manager outside hot paths — it restores the previous setting even when
    the guarded block raises.
    """
    global _batch_enabled
    previous = _batch_enabled
    _batch_enabled = bool(enabled)
    return previous


@contextmanager
def batch_scoring(enabled: bool):
    """Context manager pinning the batch-scoring gate, restoring on exit."""
    previous = set_batch_scoring(enabled)
    try:
        yield
    finally:
        set_batch_scoring(previous)


@contextmanager
def scoring_disabled():
    """Force the scalar per-pair scoring path inside the block.

    Turns off both the batch gate and the native gate and restores the
    previous settings on exit — the restore-guarded way for tests and
    benchmarks to exercise the reference scalar path without poisoning
    module globals for the rest of the process.
    """
    with batch_scoring(False), native_kernel(False):
        yield


class ScoreCache:
    """Bounded version-keyed cache of batch similarity scores.

    Scores are stored in per-owner buckets::

        (owner_uid, metric, orientation) -> {candidate_uid: score}

    where the uids are :attr:`repro.core.profiles.FrozenProfile.uid` values.
    Snapshots are memoised per profile mutation version, so a uid pins one
    ``(profile identity, version)`` pair: any ``set`` / ``remove`` /
    ``purge_older_than`` on either profile yields fresh snapshots with fresh
    uids, and the scores cached for the old pair can never be returned again
    — the eviction the ISSUE's ``(owner_id, owner_version, candidate_id,
    candidate_version)`` key buys, without threading node identities through
    every call site.

    When the cache exceeds *max_entries* the least-recently-used buckets
    are dropped until it is half full (bucket access refreshes recency).
    Long-lived processes running many simulations share the default cache;
    ``clear()`` resets it explicitly between unrelated runs.
    """

    __slots__ = ("max_entries", "hits", "misses", "_buckets", "_size")

    def __init__(self, max_entries: int = 500_000) -> None:
        if max_entries <= 0:
            raise ConfigurationError(
                f"max_entries must be > 0, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._buckets: dict[tuple, dict[int, float]] = {}
        self._size = 0

    def bucket(self, key: tuple) -> dict[int, float]:
        """The (created-on-demand) score bucket for one owner/metric/role.

        Access refreshes the bucket's recency (move-to-end), so eviction
        drops the least-recently-used owners — stale buckets from finished
        simulations age out ahead of live ones in multi-system sweeps.
        """
        buckets = self._buckets
        bucket = buckets.pop(key, None)
        if bucket is None:
            bucket = {}
        buckets[key] = bucket
        return bucket

    def note_inserts(self, n: int) -> None:
        """Account *n* fresh entries; evict LRU buckets when over cap.

        The most-recently-used bucket (the one just written) is never
        evicted, so an overflowing insert cannot throw away its own scores.
        """
        self._size += n
        if self._size <= self.max_entries:
            return
        target = self.max_entries // 2
        newest = next(reversed(self._buckets), None)
        stale = []
        for key, bucket in self._buckets.items():
            if self._size <= target or key == newest:
                break
            self._size -= len(bucket)
            stale.append(key)
        for key in stale:
            del self._buckets[key]

    def clear(self) -> None:
        """Drop every cached score (counters are kept)."""
        self._buckets.clear()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScoreCache(size={self._size}, buckets={len(self._buckets)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_DEFAULT_CACHE = ScoreCache()


def default_score_cache() -> ScoreCache:
    """The process-wide shared score cache (used by all protocol instances)."""
    return _DEFAULT_CACHE


#: Adaptive dispatch thresholds for :func:`score_candidates`: the numpy pass
#: carries ~65 µs of fixed per-call overhead, which C-speed set algebra on
#: the paper's window-bounded profiles (tens of entries) only amortises for
#: genuinely large pools.  Measured crossover on pool×profile grids:
#: scalar wins below ~64 pairs / ~4096 total candidate entries.
VECTOR_MIN_PAIRS = 64
VECTOR_MIN_ENTRIES = 4096

#: Cache consultation is itself ~0.3 µs of dict traffic per pair; for tiny
#: owner profiles a fresh score costs about the same, so the cache only
#: engages once the owner profile is big enough for hits to pay.
CACHE_MIN_OWNER_ENTRIES = 16

#: The native tier's crossover: a kernel call carries a few µs of fixed
#: overhead (cffi dispatch, result-array allocation, first-contact packing
#: of fresh snapshots), which the C merge walks only amortise once the
#: pool is a handful of candidates deep.  Below this the set-algebra loops
#: win; the protocols' real pools (RPS views of 30, merge pools of 40-70)
#: sit comfortably above it.
NATIVE_MIN_PAIRS = 8


def _native_pool_code(name: str, role: str, owner_binary: bool) -> int | None:
    """The native kernel's metric/orientation code, or ``None``.

    Mirrors the C ``score_pair`` switch in
    :mod:`repro._native.build_native`: binary fast paths for ``wup`` /
    ``cosine`` (codes 0–2), liked-set metrics for any profiles (3–4), and
    the item-orientation codes for a real-valued owner on the candidate
    side (5–6).  ``None`` means "shape not implemented natively" and sends
    the call to the numpy / set-algebra tiers.
    """
    if name == "wup":
        if role == "n":
            return 0 if owner_binary else None
        return 1 if owner_binary else 5
    if name == "cosine":
        if owner_binary:
            return 2
        return 6 if role == "c" else None
    if name == "jaccard":
        return 3
    if name == "overlap":
        return 4
    return None


class _EphemeralPack:
    """Packed arrays for a *mutable* profile (built per call, not cached).

    Mutable profiles (live :class:`~repro.core.profiles.ItemProfile` copies
    in BEEP's orientation path) have no stable identity to cache under, so
    ``uid`` is ``None`` and the batch kernel skips the cache for them.  The
    norm is taken from the profile's incrementally-maintained value so the
    batch score divides by exactly the same denominator as a scalar call on
    the same live object.
    """

    __slots__ = (
        "liked_ids",
        "rated_ids",
        "rated_scores",
        "norm",
        "is_binary",
        "uid",
        "_nd",
    )

    def __init__(self, profile: ProfileLike) -> None:
        scores = profile.scores
        n = len(scores)
        ids = pack_id_array(scores.keys(), n)
        vals = np.fromiter(scores.values(), dtype=np.float64, count=n)
        order = np.argsort(ids)
        self.rated_ids = ids[order]
        self.rated_scores = vals[order]
        self.liked_ids = self.rated_ids[self.rated_scores > 0.0]
        self.norm = profile.norm
        self.is_binary = bool(getattr(profile, "is_binary", False))
        self.uid = None
        #: native descriptor, filled by the C kernels on first contact
        self._nd: tuple | None = None

    def _pack(self) -> None:
        """Fill the native descriptor (called by the C kernels on demand)."""
        self._nd = _native_descriptor(
            self.liked_ids,
            self.rated_ids,
            self.rated_scores,
            self.norm,
            self.is_binary,
        )

    def __getstate__(self) -> dict:
        """Drop the native descriptor (raw process-local addresses)."""
        state = {
            name: getattr(self, name) for name in _EphemeralPack.__slots__
        }
        state["_nd"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)


def _pack(profile: ProfileLike):
    """A packed view of *profile* exposing sorted id/score arrays + uid."""
    if isinstance(profile, FrozenProfile):
        return profile
    snapshot = getattr(profile, "snapshot", None)
    if snapshot is not None:
        # user profiles: the memoised snapshot is free and cacheable
        return snapshot()
    packed = getattr(profile, "packed", None)
    if packed is not None:
        # mutable profiles memoise their pack per mutation version (and
        # share it across copy-on-write clones) — see PackedView
        return packed()
    return _EphemeralPack(profile)


def pack_profile(profile: ProfileLike):
    """Public alias of :func:`_pack` (packed view for batch scoring)."""
    return _pack(profile)


def _frozen_or_none(profile: ProfileLike) -> FrozenProfile | None:
    """The memoised snapshot identity of *profile*, if it has one."""
    if isinstance(profile, FrozenProfile):
        return profile
    snapshot = getattr(profile, "snapshot", None)
    if snapshot is not None:
        return snapshot()
    return None


class _Concat:
    """A segment-concatenated family of sorted id arrays (+ optional weights)."""

    __slots__ = ("ids", "weights", "seg", "k")

    def __init__(
        self, arrays: list[np.ndarray], weights: list[np.ndarray] | None
    ) -> None:
        k = len(arrays)
        lens = np.fromiter((a.size for a in arrays), dtype=np.int64, count=k)
        self.k = k
        if int(lens.sum()) == 0:
            self.ids = np.empty(0, dtype=np.uint64)
            self.weights = None if weights is None else np.empty(0, dtype=np.float64)
            self.seg = np.empty(0, dtype=np.int64)
            return
        self.ids = np.concatenate(arrays)
        self.weights = None if weights is None else np.concatenate(weights)
        self.seg = np.repeat(np.arange(k), lens)

    def member_counts(self, haystack: np.ndarray) -> np.ndarray:
        """``|segment_i ∩ haystack|`` per segment, as float64."""
        if self.ids.size == 0 or haystack.size == 0:
            return np.zeros(self.k, dtype=np.float64)
        idx = np.searchsorted(haystack, self.ids)
        idx_c = np.where(idx < haystack.size, idx, 0)
        match = (idx < haystack.size) & (haystack[idx_c] == self.ids)
        return np.bincount(self.seg[match], minlength=self.k).astype(np.float64)


class PackedPool:
    """A candidate pool packed once, scorable against many owners.

    Wraps a fixed list of packed profiles and memoises the concatenated
    liked/rated arrays the vector kernel needs, so the concatenation cost is
    paid once per pool instead of once per scoring call.  BEEP keeps one of
    these per RPS view generation: every disliked item received in a cycle
    is scored against the same packed pool.
    """

    __slots__ = (
        "profiles",
        "k",
        "norms",
        "_liked",
        "_rated",
        "_liked_sizes",
        "_binary",
    )

    def __init__(self, profiles: list) -> None:
        self.profiles = profiles
        self.k = len(profiles)
        self.norms = np.fromiter(
            (p.norm for p in profiles), dtype=np.float64, count=self.k
        )
        self._liked: _Concat | None = None
        self._rated: _Concat | None = None
        self._liked_sizes: np.ndarray | None = None
        self._binary: bool | None = None

    # -- memoised derived state -------------------------------------------

    @property
    def liked(self) -> _Concat:
        if self._liked is None:
            self._liked = _Concat([p.liked_ids for p in self.profiles], None)
        return self._liked

    @property
    def rated(self) -> _Concat:
        if self._rated is None:
            self._rated = _Concat(
                [p.rated_ids for p in self.profiles],
                [p.rated_scores for p in self.profiles],
            )
        return self._rated

    @property
    def liked_sizes(self) -> np.ndarray:
        if self._liked_sizes is None:
            self._liked_sizes = np.fromiter(
                (p.liked_ids.size for p in self.profiles),
                dtype=np.float64,
                count=self.k,
            )
        return self._liked_sizes

    @property
    def all_binary(self) -> bool:
        if self._binary is None:
            self._binary = all(p.is_binary for p in self.profiles)
        return self._binary

    # -- scoring ----------------------------------------------------------

    def score_native(self, owner, name: str, role: str) -> np.ndarray | None:
        """Native-tier scores of this pool, or ``None`` when inapplicable.

        One C call walks the pool's profile objects through their cached
        packed descriptors (see :mod:`repro._native.build_native`) —
        applicability mirrors the shapes the kernels implement: binary
        pools for ``wup``/``cosine`` (with a binary owner in either role,
        or a real-valued owner in the candidate role — BEEP's
        orientation), any pool for the liked-set metrics
        ``jaccard``/``overlap``.  Everything else falls through to the
        numpy tier.  Returns exactly the scalar metrics' bits.
        """
        nk = _native()
        if nk is None:
            return None
        code = _native_pool_code(name, role, bool(owner.is_binary))
        if code is None:
            return None
        return nk.score_profiles(owner, self.profiles, code)

    def score(
        self, owner, name: str, role: str, *, allow_native: bool = True
    ) -> np.ndarray:
        """Scores of this pool against a packed *owner* (native or numpy).

        Dispatches to the native tier first (:meth:`score_native`), then
        the vectorised numpy pass.  Callers that just watched a native
        walk of this very pool fail pass ``allow_native=False`` to skip
        the doomed retry.  Bitwise-equal to the scalar metrics: counts
        are exact integers and the weighted sums accumulate in the scalar
        general path's canonical ascending-id order (``bincount`` adds
        left-to-right and every segment's entries are sorted by id).
        """
        if allow_native:
            native_scores = self.score_native(owner, name, role)
            if native_scores is not None:
                return native_scores
        k = self.k
        out = np.zeros(k, dtype=np.float64)

        if name in ("jaccard", "overlap"):
            inter = self.liked.member_counts(owner.liked_ids)
            own_size = float(owner.liked_ids.size)
            if name == "jaccard":
                denom = own_size + self.liked_sizes - inter
            else:
                denom = np.minimum(own_size, self.liked_sizes)
            np.divide(inter, denom, out=out, where=(inter > 0) & (denom > 0))
            return out

        if owner.is_binary and self.all_binary:
            # pure set algebra — integer counts, exact in float64
            common = self.liked.member_counts(owner.liked_ids)
            if name == "cosine":
                denom = owner.norm * self.norms
            elif role == "n":
                sub = _Concat(
                    [p.rated_ids for p in self.profiles], None
                ).member_counts(owner.liked_ids)
                denom = np.sqrt(sub) * self.norms
            else:
                sub = self.liked.member_counts(owner.rated_ids)
                denom = np.sqrt(sub) * owner.norm
            np.divide(common, denom, out=out, where=(common > 0) & (denom > 0))
            return out

        # general path (real-valued scores): weighted sorted-array intersection
        o_ids = owner.rated_ids
        o_scores = owner.rated_scores
        rated = self.rated
        if rated.ids.size == 0 or o_ids.size == 0:
            return out
        idx = np.searchsorted(o_ids, rated.ids)
        idx_c = np.where(idx < o_ids.size, idx, 0)
        match = (idx < o_ids.size) & (o_ids[idx_c] == rated.ids)
        seg_m = rated.seg[match]
        o_sc = o_scores[idx_c[match]]
        c_sc = rated.weights[match]
        dot = np.bincount(seg_m, weights=c_sc * o_sc, minlength=k)
        if name == "cosine":
            denom = owner.norm * self.norms
            np.divide(dot, denom, out=out, where=(dot != 0.0) & (denom > 0))
            return out
        # wup: sub(P_n, P_c) restricts the *chooser's* profile to common ids
        if role == "n":
            sub2 = np.bincount(seg_m, weights=o_sc * o_sc, minlength=k)
            denom = np.sqrt(sub2) * self.norms
        else:
            sub2 = np.bincount(seg_m, weights=c_sc * c_sc, minlength=k)
            denom = np.sqrt(sub2) * owner.norm
        np.divide(
            dot, denom, out=out, where=(dot != 0.0) & (sub2 > 0) & (denom > 0)
        )
        return out


def _batch_pool_scores(owner, pool: list, name: str, role: str) -> np.ndarray:
    """Score one packed owner against a list of packed profiles (ad hoc)."""
    return PackedPool(pool).score(owner, name, role)


def wup_pool_binary(
    owner: ProfileLike, candidates: Sequence[ProfileLike]
) -> list[float]:
    """WUP scores of one binary owner (chooser ``n``) against a binary pool.

    One Python call per *pool* with hoisted locals — per-pair function-call
    overhead is the dominant cost of merge scoring at the paper's
    window-bounded profile sizes.  Bitwise-equal to ``wup_similarity``'s
    binary fast path.
    """
    out = [0.0] * len(candidates)
    liked_n = owner.liked
    if not liked_n:
        return out
    sqrt = math.sqrt
    for i, c in enumerate(candidates):
        norm_c = c.norm
        if norm_c == 0.0:
            continue
        common = len(liked_n & c.liked)
        if common:
            out[i] = common / (sqrt(len(liked_n & _rated_ids(c))) * norm_c)
    return out


def wup_pool_vs_item(
    candidates: Sequence[ProfileLike], item: ProfileLike
) -> list[float]:
    """WUP scores of binary choosers against one real-valued item profile.

    BEEP's dislike orientation: each candidate is the chooser ``n``, the
    item profile the candidate side ``c``.  Skipping the chooser's
    explicit dislikes (score 0) drops exactly-zero terms from the general
    path's sums, so the result is bitwise-equal to ``wup_similarity``.
    """
    out = [0.0] * len(candidates)
    scores_c = item.scores
    norm_c = item.norm
    if norm_c == 0.0 or not scores_c:
        return out
    keys_c = scores_c.keys()
    sqrt = math.sqrt
    for i, p in enumerate(candidates):
        common = p.liked & keys_c  # = L_n ∩ R_c
        if not common:
            continue
        dot = 0.0
        for iid in sorted(common):
            dot += scores_c[iid]
        if dot != 0.0:
            out[i] = dot / (sqrt(len(common)) * norm_c)
    return out


def wup_items_vs_pool(
    pool: PackedPool, items: Sequence
) -> list[np.ndarray]:
    """WUP scores of a binary chooser pool against *many* item profiles.

    The fused kernel behind BEEP's batched dislike orientation: every
    disliked item a node received this cycle is scored against the same
    packed RPS pool in one pass per item over the pool's concatenated
    liked-id arrays — the per-candidate Python set loop of
    :func:`wup_pool_vs_item` disappears.

    *items* are packed views (:func:`pack_profile` results) of the item
    profiles; the pool must be all-binary.  Returns one ``float64`` array
    per item, aligned with the pool's profiles.

    Bitwise-equal to :func:`wup_pool_vs_item` and to
    :meth:`PackedPool.score` with ``role="c"``: intersection counts are
    exact integers and each candidate's weighted sum accumulates over its
    liked ids in ascending order (``bincount`` adds left-to-right over the
    per-segment sorted arrays) — a chooser's explicit dislikes contribute
    exactly-zero terms in the rated formulation, which cannot change any
    accumulated float.

    This is the *numpy-tier* fused pass: with the native tier active the
    caller (:meth:`~repro.core.beep.BeepForwarder.forward_batch`) skips
    the pre-pass entirely and scores each copy through the fused C argmax
    instead, so no native branch lives here.
    """
    liked = pool.liked
    k = pool.k
    ids = liked.ids
    seg = liked.seg
    n_ids = ids.size
    out = []
    for p in items:
        scores = np.zeros(k, dtype=np.float64)
        o_ids = p.rated_ids
        norm_c = p.norm
        if norm_c != 0.0 and o_ids.size and n_ids:
            idx = np.searchsorted(o_ids, ids)
            idx_c = np.where(idx < o_ids.size, idx, 0)
            match = (idx < o_ids.size) & (o_ids[idx_c] == ids)
            seg_m = seg[match]
            dot = np.bincount(
                seg_m, weights=p.rated_scores[idx_c[match]], minlength=k
            )
            common = np.bincount(seg_m, minlength=k).astype(np.float64)
            denom = np.sqrt(common) * norm_c
            np.divide(
                dot, denom, out=scores, where=(dot != 0.0) & (denom > 0)
            )
        out.append(scores)
    return out


def score_candidates(
    owner: ProfileLike,
    candidates: Sequence[ProfileLike] | Iterable[ProfileLike],
    metric: MetricFn | str = "wup",
    *,
    owner_role: str = "n",
    cache: ScoreCache | None = None,
) -> list[float]:
    """Score a whole candidate pool against one owner profile, vectorised.

    Parameters
    ----------
    owner:
        The reference profile.  With ``owner_role="n"`` (default) it is the
        chooser ``n`` of the asymmetric WUP metric and each candidate is
        scored as ``metric(owner, candidate)`` — the Vicinity merge
        orientation.  With ``owner_role="c"`` the owner is the candidate
        side and the pool members are the choosers: ``metric(candidate,
        owner)`` — BEEP's dislike orientation, where many peer profiles are
        ranked against one item profile.
    candidates:
        The pool.  Frozen snapshots are scored from their memoised packed
        arrays; mutable profiles are packed on the fly.
    metric:
        Registered metric name or function.  Unregistered callables fall
        back to per-pair scalar calls (no vectorisation, no caching).
    cache:
        Optional :class:`ScoreCache`.  Pairs whose owner *and* candidate are
        frozen snapshots are looked up / stored under their uids; only the
        misses are scored, in a single vectorised pass.

    Returns
    -------
    list[float]
        Scores aligned with *candidates*, bitwise-equal to the scalar
        metric applied pairwise.

    Notes
    -----
    The kernel dispatches through three tiers (native → numpy →
    set-algebra).  With the native tier active, pools past
    :data:`NATIVE_MIN_PAIRS` go straight to the compiled kernels — one C
    call per pool over the packed arrays — and the score cache is
    bypassed: a native rescore is cheaper than the per-pair dict traffic
    a cache consultation costs (and produces the very same bits, so
    skipping the cache is unobservable).  Otherwise cache hits are served
    without any scoring and the remaining misses go through the
    vectorised numpy pass only when the pending work is large enough to
    amortise its fixed per-call overhead (measured crossover:
    ≳ :data:`VECTOR_MIN_PAIRS` pairs *and* ≳ :data:`VECTOR_MIN_ENTRIES`
    profile entries), and through the scalar metrics otherwise.  All
    tiers give the same bits — the scalar general path accumulates in
    the kernels' canonical ascending-id order — so the dispatch is
    invisible to callers.
    """
    if owner_role not in ("n", "c"):
        raise ConfigurationError(
            f"owner_role must be 'n' or 'c', got {owner_role!r}"
        )
    cands = candidates if isinstance(candidates, list) else list(candidates)
    k = len(cands)
    if k == 0:
        return []
    name = metric_name_of(metric)
    if name is None:
        fn = metric
        if owner_role == "n":
            return [fn(owner, c) for c in cands]
        return [fn(c, owner) for c in cands]

    # the native tier goes first and serves the whole pool in one C call
    # (bypassing the cache: a native rescore is cheaper than per-pair
    # dict traffic, and produces the same bits).  Shapes the kernels
    # cannot serve — unmapped (metric, role, owner-shape) combinations or
    # pools with an unresolvable member — fall through to the Python
    # tiers *with* their score cache intact.
    nk = _native()
    if nk is not None and k >= NATIVE_MIN_PAIRS:
        code = _native_pool_code(name, owner_role, _is_binary(owner))
        if code is not None:
            native_scores = nk.score_profiles(owner, cands, code)
            if native_scores is not None:
                return native_scores.tolist()
    bucket = None
    if cache is not None and len(owner.scores) >= CACHE_MIN_OWNER_ENTRIES:
        owner_f = _frozen_or_none(owner)
    else:
        owner_f = None
    out = [0.0] * k
    if owner_f is not None:
        bucket = cache.bucket((owner_f.uid, name, owner_role))
        bget = bucket.get
        to_score = []
        append = to_score.append
        for i, c in enumerate(cands):
            cached = (
                bget(c.uid) if isinstance(c, FrozenProfile) else None
            )
            if cached is None:
                append(i)
            else:
                out[i] = cached
        cache.hits += k - len(to_score)
        cache.misses += len(to_score)
    else:
        to_score = range(k)

    if not to_score:
        return out

    n_pairs = len(to_score)
    sub = cands if n_pairs == k else [cands[i] for i in to_score]
    if n_pairs >= VECTOR_MIN_PAIRS and (
        sum(len(c.scores) for c in sub) >= VECTOR_MIN_ENTRIES
    ):
        owner_p = _pack(owner)
        scores = [
            float(s)
            for s in _batch_pool_scores(
                owner_p, [_pack(c) for c in sub], name, owner_role
            )
        ]
    elif (
        name == "wup"
        and owner_role == "n"
        and _is_binary(owner)
        and _all_binary(sub)
    ):
        scores = wup_pool_binary(owner, sub)
    elif (
        name == "wup"
        and owner_role == "c"
        and not _is_binary(owner)
        and _all_binary(sub)
    ):
        scores = wup_pool_vs_item(sub, owner)
    else:
        fn = _METRICS[name]
        if owner_role == "n":
            scores = [fn(owner, c) for c in sub]
        else:
            scores = [fn(c, owner) for c in sub]

    if bucket is None:
        for i, s in zip(to_score, scores, strict=True):
            out[i] = s
    else:
        fresh = 0
        for i, s in zip(to_score, scores, strict=True):
            out[i] = s
            c = cands[i]
            if isinstance(c, FrozenProfile) and c.uid not in bucket:
                bucket[c.uid] = s
                fresh += 1
        cache.note_inserts(fresh)
    return out


# ---------------------------------------------------------------------------
# Vectorised all-pairs forms (centralized baselines & analyses)
# ---------------------------------------------------------------------------


def pairwise_cosine(likes: np.ndarray) -> np.ndarray:
    """All-pairs binary cosine similarity.

    Parameters
    ----------
    likes:
        Boolean array of shape ``(n_users, n_items)``; ``likes[u, i]`` is
        true when user *u* likes item *i*.

    Returns
    -------
    numpy.ndarray
        Dense ``(n_users, n_users)`` matrix with
        ``S[a, b] = |L_a ∩ L_b| / sqrt(|L_a| |L_b|)`` and zero rows/columns
        for users with empty profiles.  The diagonal is *not* zeroed.
    """
    mat = np.asarray(likes, dtype=np.float64)
    common = mat @ mat.T
    counts = mat.sum(axis=1)
    denom = np.sqrt(np.outer(counts, counts))
    out = np.zeros_like(common)
    np.divide(common, denom, out=out, where=denom > 0)
    return out


def pairwise_wup(likes: np.ndarray, rated: np.ndarray) -> np.ndarray:
    """All-pairs binary WUP similarity.

    Parameters
    ----------
    likes:
        Boolean ``(n_users, n_items)`` like matrix.
    rated:
        Boolean ``(n_users, n_items)`` rated matrix (likes *and* dislikes).
        Must be a superset of *likes* element-wise.

    Returns
    -------
    numpy.ndarray
        ``S[n, c] = |L_n ∩ L_c| / (sqrt(|L_n ∩ R_c|) · sqrt(|L_c|))`` — the
        matrix form of :func:`wup_similarity` for binary profiles.  Rows are
        the "chooser" *n*, columns the candidate *c*.
    """
    lmat = np.asarray(likes, dtype=np.float64)
    rmat = np.asarray(rated, dtype=np.float64)
    if lmat.shape != rmat.shape:
        raise ConfigurationError(
            f"likes shape {lmat.shape} != rated shape {rmat.shape}"
        )
    common_likes = lmat @ lmat.T  # |L_n ∩ L_c|
    liked_rated = lmat @ rmat.T  # |L_n ∩ R_c|  (row n, column c)
    liked_counts = lmat.sum(axis=1)  # |L_c| per candidate column
    denom = np.sqrt(liked_rated) * np.sqrt(liked_counts)[None, :]
    out = np.zeros_like(common_likes)
    np.divide(common_likes, denom, out=out, where=denom > 0)
    return out


def similarity_matrix(
    likes: np.ndarray,
    rated: np.ndarray,
    metric: str = "wup",
) -> np.ndarray:
    """All-pairs similarity by metric name (vectorised where possible).

    ``"wup"`` and ``"cosine"`` use the dense matrix forms above; the set
    metrics fall back to a vectorised formulation over the like matrix.
    """
    name = metric.lower()
    if name == "wup":
        return pairwise_wup(likes, rated)
    if name == "cosine":
        return pairwise_cosine(likes)
    lmat = np.asarray(likes, dtype=np.float64)
    inter = lmat @ lmat.T
    counts = lmat.sum(axis=1)
    if name == "jaccard":
        union = counts[:, None] + counts[None, :] - inter
        out = np.zeros_like(inter)
        np.divide(inter, union, out=out, where=union > 0)
        return out
    if name == "overlap":
        mins = np.minimum(counts[:, None], counts[None, :])
        out = np.zeros_like(inter)
        np.divide(inter, mins, out=out, where=mins > 0)
        return out
    raise ConfigurationError(
        f"unknown similarity metric {metric!r}; available: {available_metrics()}"
    )
