"""News items and their circulating copies (paper Section II-A).

A news item consists of a title, a short description and a link.  The
publisher stamps it with a creation time and a **dislike counter** initialised
to zero, which BEEP increments every time a node that dislikes the item
forwards it anyway (the serendipity mechanism, Algorithm 2 line 26).  Nodes
identify items by an 8-byte hash recomputed locally
(:func:`repro.utils.hashing.item_digest`).

Two classes model this:

* :class:`NewsItem` — the immutable published object, shared by every copy;
* :class:`ItemCopy` — one copy in flight, carrying its own item profile and
  dislike counter.  Forwarding clones the copy so that divergent paths evolve
  divergent profiles, exactly as serialized network messages would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiles import ItemProfile
from repro.utils.hashing import item_digest

__all__ = ["NewsItem", "ItemCopy", "ITEM_HEADER_BYTES", "PROFILE_ENTRY_BYTES"]

#: Modelled wire size of an item header: the 8-byte id is *not* transmitted
#: (recomputed), but the copy ships a timestamp (8), a dislike counter (1),
#: and the human-readable payload — title (~80 B), short description
#: (~400 B) and link (~120 B), per Section II-A's item anatomy.
ITEM_HEADER_BYTES = 8 + 1 + 600

#: Modelled wire size of one profile entry: 8-byte identifier + 8-byte
#: timestamp + 8-byte score.
PROFILE_ENTRY_BYTES = 8 + 8 + 8


@dataclass(frozen=True)
class NewsItem:
    """An immutable published news item.

    Attributes
    ----------
    item_id:
        The 8-byte identifier (derived hash; see Section II-A).
    source:
        Node id of the publisher.
    created_at:
        Publication timestamp (simulation cycle).
    topic:
        Workload-level ground-truth tag (community index, Digg category or
        survey topic).  Carried for evaluation only — the protocols never
        read it; the paper's system is content-agnostic.
    title / description / link:
        Human-readable payload (size-modelled on the wire).
    """

    item_id: int
    source: int
    created_at: int
    topic: int = -1
    title: str = ""
    description: str = ""
    link: str = ""

    @staticmethod
    def publish(
        source: int,
        created_at: int,
        *,
        topic: int = -1,
        title: str | None = None,
        description: str = "",
        link: str = "",
    ) -> "NewsItem":
        """Create a news item, deriving its identifier from its fields."""
        if title is None:
            title = f"news-by-{source}-at-{created_at}"
        iid = item_digest(title, source, created_at)
        return NewsItem(
            item_id=iid,
            source=source,
            created_at=created_at,
            topic=topic,
            title=title,
            description=description,
            link=link,
        )


class ItemCopy:
    """One copy of a news item in flight.

    A plain slotted class (not a dataclass): one instance is created per
    BEEP transmission, which makes construction cost part of the
    simulation's innermost loop.

    Attributes
    ----------
    item:
        The shared immutable :class:`NewsItem`.
    profile:
        This copy's item profile ``P^I`` (path-dependent; Algorithm 1).
    dislikes:
        The dislike counter ``d_I`` (bounded by the BEEP TTL).
    hops:
        Number of forwarding hops from the source to this copy.  Not part of
        the paper's wire format — we track it for the Figure 6 analysis.
    """

    __slots__ = ("item", "profile", "dislikes", "hops")

    def __init__(
        self,
        item: NewsItem,
        profile: ItemProfile | None = None,
        dislikes: int = 0,
        hops: int = 0,
    ) -> None:
        self.item = item
        self.profile = profile if profile is not None else ItemProfile()
        self.dislikes = dislikes
        self.hops = hops

    def clone_for_forward(self, extra_dislikes: int = 0) -> "ItemCopy":
        """Clone this copy for transmission to one more target.

        The clone's profile is a logically independent copy (copy-on-write:
        divergent paths materialise divergent profiles on first mutation)
        and its hop count is one greater.  *extra_dislikes* folds BEEP's
        dislike-counter increment (Algorithm 2 line 26) into the clone
        instead of a separate post-construction write.

        Built through ``__new__`` + direct slot writes: one clone per BEEP
        transmission makes the ``__init__`` dispatch (and its default-
        profile branch) measurable at paper scale.
        """
        clone = ItemCopy.__new__(ItemCopy)
        clone.item = self.item
        clone.profile = self.profile.copy()
        clone.dislikes = self.dislikes + extra_dislikes
        clone.hops = self.hops + 1
        return clone

    def advance_hop(self, extra_dislikes: int = 0) -> "ItemCopy":
        """Turn this copy *itself* into its forwarded form (move, no clone).

        The batched fan-out clones a copy for every target but one: the last
        target can take ownership of the original — the sender never touches
        the copy again after forwarding — so one profile clone per
        forwarding action is skipped.  Counters advance exactly as
        :meth:`clone_for_forward` would set them on a clone.
        """
        self.dislikes += extra_dislikes
        self.hops += 1
        return self

    def wire_size(self) -> int:
        """Modelled serialized size in bytes (header + item profile)."""
        return ITEM_HEADER_BYTES + PROFILE_ENTRY_BYTES * len(self.profile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ItemCopy(item={self.item.item_id:#x}, n={len(self.profile)}, "
            f"dislikes={self.dislikes}, hops={self.hops})"
        )
