"""The WHATSUP node: WUP + BEEP + the user's opinion loop.

Ties together everything the paper's Figure 1 sketches: the user's
like/dislike opinions feed the user profile (Algorithm 1), the profile
feeds WUP's implicit social network (Section II), and BEEP disseminates
items over that network (Algorithm 2, Section III).

A node owns:

* its user profile ``P̃`` (binary opinions, window-purged);
* an RPS protocol instance (random overlay, view size 30);
* a WUP clustering instance (similar-peer overlay, view size 2·fLIKE);
* a BEEP forwarder (amplification + orientation);
* the SIR "seen" set (duplicate receipts are dropped).

The like/dislike decision is delegated to an *opinion oracle* — in
experiments this is the dataset's ground-truth matrix, standing in for the
human behind the paper's web widget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.beep import BeepForwarder
from repro.core.config import WhatsUpConfig
from repro.core.news import ItemCopy, NewsItem
from repro.core.profiles import ItemProfile, UserProfile
from repro.gossip.rps import RpsProtocol
from repro.gossip.vicinity import ClusteringProtocol
from repro.network.message import MessageKind
from repro.simulation.delivery import split_first_receipts
from repro.simulation.node import BaseNode
from repro.utils.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import CycleEngine

__all__ = ["WhatsUpNode", "OpinionFn"]

#: ``oracle(node_id, item) -> liked?`` — the simulated user's click.
OpinionFn = Callable[[int, NewsItem], bool]


class WhatsUpNode(BaseNode):
    """One WHATSUP participant.

    Parameters
    ----------
    node_id:
        The node's identifier (the dataset's user index).
    config:
        Protocol parameters (Table II).
    opinion:
        The opinion oracle consulted on first receipt of each item.
    streams:
        The experiment's root randomness; the node derives its private
        ``rps``/``wup``/``beep`` streams from it, so runs are reproducible
        and nodes are statistically independent.
    """

    __slots__ = ("config", "opinion", "profile", "rps", "wup", "beep", "seen")

    def __init__(
        self,
        node_id: int,
        config: WhatsUpConfig,
        opinion: OpinionFn,
        streams: RngStreams,
    ) -> None:
        super().__init__(node_id)
        self.config = config
        self.opinion = opinion
        self.profile = UserProfile()
        # passing the *registry name* keeps the WUP merge and BEEP
        # orientation on the vectorised batch kernel + shared score cache
        metric = config.similarity
        self.rps = RpsProtocol(
            node_id,
            config.rps_view_size,
            streams.fresh(f"node-{node_id}-rps"),
        )
        self.wup = ClusteringProtocol(
            node_id,
            config.effective_wup_view_size,
            metric,
            streams.fresh(f"node-{node_id}-wup"),
        )
        self.beep = BeepForwarder(
            config, metric, streams.fresh(f"node-{node_id}-beep")
        )
        self.seen: set[int] = set()

    # ------------------------------------------------------------------ #
    # gossip maintenance                                                   #
    # ------------------------------------------------------------------ #

    def public_profile(self):
        """The profile snapshot *shared with other nodes* via gossip.

        Subclasses may override this to disclose a distorted view of the
        user's opinions (see :mod:`repro.privacy.obfuscation`); the node's
        own similarity rankings always use the true profile.
        """
        return self.profile.snapshot()

    def begin_cycle(self, engine: "CycleEngine", now: int) -> None:
        """Purge the profile window, then run RPS and WUP exchanges."""
        window_start = now - self.config.profile_window
        if window_start > 0:
            self.profile.purge_older_than(window_start)

        shared = self.public_profile()
        if now % self.config.rps_every == 0:
            started = self.rps.initiate(shared, now)
            if started is not None:
                partner, msg = started
                engine.gossip(self.node_id, partner, msg, MessageKind.RPS)
        if now % self.config.wup_every == 0:
            started = self.wup.initiate(
                shared, now, ranking_profile=self.profile.snapshot()
            )
            if started is not None:
                partner, msg = started
                engine.gossip(self.node_id, partner, msg, MessageKind.WUP)

    def on_gossip(
        self,
        msg: object,
        kind: MessageKind,
        engine: "CycleEngine",
        now: int,
    ) -> object | None:
        shared = self.public_profile()
        if kind is MessageKind.RPS:
            return self.rps.handle(msg, shared, now)
        if kind is MessageKind.WUP:
            # Vicinity feeds on the RPS view for fresh candidates; the view
            # is ranked against the node's *true* interests.  On the array
            # state plane the RPS view hands its columns over alongside the
            # entries, so the merge-dedup runs column-native end to end.
            rps_entries, rps_cols = self.rps.view.entries_with_columns()
            return self.wup.handle(
                msg,
                shared,
                now,
                rps_entries=rps_entries,
                ranking_profile=self.profile.snapshot(),
                rps_cols=rps_cols,
            )
        return None

    # ------------------------------------------------------------------ #
    # Algorithm 1: receiving / generating an item                          #
    # ------------------------------------------------------------------ #

    def receive_item(
        self,
        copy: ItemCopy,
        via_like: bool,
        engine: "CycleEngine",
        now: int,
    ) -> None:
        item = copy.item
        if item.item_id in self.seen:
            engine.log_duplicate()  # SIR: already infected/removed
            return
        self.seen.add(item.item_id)

        liked = bool(self.opinion(self.node_id, item))
        if liked:
            # lines 2-5: fold the *pre-update* user profile into the item
            # profile, then record the like
            copy.profile.integrate(self.profile)
            self.profile.record_opinion(item.item_id, item.created_at, True)
        else:
            # line 7
            self.profile.record_opinion(item.item_id, item.created_at, False)

        # lines 8-10: purge old entries from the item profile
        window_start = now - self.config.profile_window
        if window_start > 0:
            copy.profile.purge_older_than(window_start)

        engine.log_delivery(self.node_id, copy, liked, via_like)

        # line 11: hand over to BEEP
        self.beep.forward(
            self.node_id, copy, liked, self.wup.view, self.rps.view, engine
        )

    def receive_items(
        self,
        deliveries: "list[tuple[int, ItemCopy, bool]]",
        engine: "CycleEngine",
        now: int,
    ) -> None:
        """Batched Algorithm 1 over this node's whole per-cycle inbox.

        Same semantics as :meth:`receive_item` applied per message in
        arrival order, restructured into bulk passes: duplicate
        suppression in one sweep (:func:`split_first_receipts`), then
        opinions and profile updates, then one bulk delivery-log append,
        then BEEP's forwarding fan-out
        (:meth:`~repro.core.beep.BeepForwarder.forward_batch`).  Profile
        state evolves in arrival order and BEEP draws its randomness per
        message exactly as the scalar path does, so outcomes are
        bitwise-identical at fixed seeds.
        """
        fresh, duplicates = split_first_receipts(deliveries, self.seen)
        if duplicates:
            engine.log_duplicates(duplicates)
        if not fresh:
            return

        profile = self.profile
        opinion = self.opinion
        node_id = self.node_id
        window_start = now - self.config.profile_window
        purge = window_start > 0
        liked_flags: list[bool] = []
        d_items: list[int] = []
        d_hops: list[int] = []
        d_dislikes: list[int] = []
        d_via: list[bool] = []
        for copy, via_like in fresh:
            item = copy.item
            liked = bool(opinion(node_id, item))
            if liked:
                # lines 2-5: fold the pre-update user profile into the
                # item profile, then record the like
                copy.profile.integrate(profile)
            profile.record_opinion(item.item_id, item.created_at, liked)
            # lines 8-10: purge old entries from the item profile
            if purge:
                copy.profile.purge_older_than(window_start)
            liked_flags.append(liked)
            d_items.append(item.item_id)
            d_hops.append(copy.hops)
            d_dislikes.append(copy.dislikes)
            d_via.append(via_like)

        # logged before forwarding: the fan-out advances the original
        # copy's counters when it moves it to the last target
        engine.log_deliveries(
            node_id, d_items, d_hops, d_dislikes, liked_flags, d_via
        )

        # line 11: hand the batch to BEEP
        self.beep.forward_batch(
            node_id, fresh, liked_flags, self.wup.view, self.rps.view, engine
        )

    def publish(self, item: NewsItem, engine: "CycleEngine", now: int) -> None:
        """Algorithm 1, ``generateNewsItem``: the source's own path."""
        self.seen.add(item.item_id)
        # line 14: the source likes its own item *before* building the item
        # profile, so the fresh item profile includes the item itself
        self.profile.record_opinion(item.item_id, item.created_at, True)
        profile = ItemProfile()
        profile.integrate(self.profile)  # lines 15-16
        copy = ItemCopy(item=item, profile=profile, dislikes=0, hops=0)

        engine.log_delivery(self.node_id, copy, liked=True, via_like=True)
        # line 17: BEEP.forward — the source liked it, so the like path runs
        self.beep.forward(
            self.node_id, copy, True, self.wup.view, self.rps.view, engine
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WhatsUpNode(id={self.node_id}, profile={len(self.profile)}, "
            f"rps={len(self.rps.view)}, wup={len(self.wup.view)})"
        )
