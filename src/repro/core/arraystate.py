"""The array-state gate: columnar node state vs the legacy structures.

The array-backed state plane (:class:`repro.gossip.views.ArrayView`
columns, the incremental packed-profile mutation path in
:mod:`repro.core.profiles`) produces **bitwise-identical** outcomes to the
legacy dict/NamedTuple structures at fixed seeds — same RNG draws, same
view contents and order, same packed arrays, same traffic bytes.  The gate
exists for the equivalence tests, the CI legacy leg and debugging, exactly
like the sibling gates (``repro.core.similarity.batch_scoring``,
``repro.simulation.delivery.delivery_batching``,
``repro._native.native_kernel``).

``REPRO_ARRAY_STATE=0`` restores the legacy structures everywhere.  The
gate is consulted when state is *created* (view construction, profile
snapshot/pack maintenance), so toggling it mid-run changes how new state
is laid out without invalidating existing objects — both layouts implement
the same facade and interoperate.  For apples-to-apples runs, construct
and run each system entirely inside one :func:`array_state` block, as the
equivalence tests do.

Column layout and ownership
---------------------------

An :class:`~repro.gossip.views.ArrayView` owns exactly two stores:

* ``_cols`` — one preallocated ``(3, alloc)`` ``int64`` block whose rows
  are the node-id, timestamp and wire-size columns.  Slot order
  replicates dict insertion-order semantics exactly: replacement keeps
  the slot, insertion appends, deletion compacts preserving relative
  order — so iteration order, and therefore every downstream RNG draw,
  matches the legacy dict bit for bit.
* ``_pobj`` — the slot-aligned numpy *object* column holding the
  :class:`~repro.gossip.views.ViewEntry` payload references.

The base addresses of both are cached on the view and handed to the
native state kernels as plain integers (the zero-marshaling contract —
see the :mod:`repro._native` module docstring).  Three ownership rules
follow:

* **Addresses are process-local.**  Pickling serialises live rows only
  and rebuilds the block (and its cached addresses) on unpickling; the
  cached native descriptors on packed profiles are nulled the same way.
* **The numeric block is relocatable; the payload column is not.**
  :meth:`~repro.gossip.views.ArrayView.rehome` moves ``_cols`` into
  caller-provided storage — under ``REPRO_SHARDS>1`` a per-shard
  ``multiprocessing.shared_memory`` arena — and rebinds the addresses;
  ``_pobj`` holds object references and always stays private to the
  owning process.
* **Growth falls back to private memory.**  A view that outgrows a
  mapped block reallocates privately and abandons the arena slot (the
  shard arena is a bump allocator without ``free``); correctness never
  depends on residency, only the zero-copy read path does.

Packed profile columns (sorted ``uint64`` ids + ``float64`` scores with
the set-op journal) reallocate on every applied mutation batch and are
therefore **never** mapped into shared memory — the measured design
trade-offs live in ``PERFORMANCE.md`` (section "Process-sharded
cycles").
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.gates import env_flag

__all__ = [
    "array_state_enabled",
    "set_array_state",
    "array_state",
]

_array_enabled = env_flag("REPRO_ARRAY_STATE")


def array_state_enabled() -> bool:
    """Whether the array-backed state plane is active."""
    return _array_enabled


def set_array_state(enabled: bool) -> bool:
    """Enable/disable the array state plane; returns the previous setting.

    Prefer the :func:`array_state` context manager outside hot paths — it
    restores the previous setting even when the guarded block raises.
    """
    global _array_enabled
    previous = _array_enabled
    _array_enabled = bool(enabled)
    return previous


@contextmanager
def array_state(enabled: bool):
    """Context manager pinning the array-state gate, restoring on exit.

    The restore-guarded form of :func:`set_array_state`: one failing test
    inside the block cannot leak a state-plane setting into the rest of
    the suite.
    """
    previous = set_array_state(enabled)
    try:
        yield
    finally:
        set_array_state(previous)
