"""BEEP — the Biased EpidEmic dissemination Protocol (paper Section III).

BEEP follows the SIR epidemic model but is heterogeneous along two
dimensions, both driven by the receiving user's opinion (Algorithm 2):

* **Amplification** — a node that *likes* an item forwards it to ``fLIKE``
  targets; a node that *dislikes* it forwards it to a single target, and
  only while the copy's dislike counter is below the BEEP TTL.  User
  opinions thus act as a *social filter* on the epidemic's reproduction
  rate.
* **Orientation** — like-forwards pick targets **uniformly at random from
  the WUP view** (already interest-biased, and randomised to avoid
  over-clustering); dislike-forwards pick the **RPS-view node whose profile
  is most similar to the item's profile**, giving the item a chance to
  reach a distant interested community even though the current holder is
  not interested (serendipity / explore).

The implementation is a strategy object shared by WHATSUP nodes; it is
stateless apart from its RNG, so one instance per node suffices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.config import WhatsUpConfig
from repro.core.news import ItemCopy
from repro.core.similarity import MetricFn
from repro.gossip.views import View, ViewEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import CycleEngine

__all__ = ["BeepForwarder"]


class BeepForwarder:
    """Per-node BEEP forwarding logic (Algorithm 2).

    Parameters
    ----------
    config:
        The node's WHATSUP parameters (fanouts, TTL).
    metric:
        Similarity metric for dislike orientation — candidates are scored
        with ``metric(candidate_profile, item_profile)``, i.e. the
        candidate is the "chooser" ``n`` of the asymmetric WUP metric (how
        well the item's community profile matches what the candidate
        likes).
    rng:
        Target-sampling randomness.
    """

    __slots__ = ("config", "metric", "rng")

    def __init__(
        self,
        config: WhatsUpConfig,
        metric: MetricFn,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.metric = metric
        self.rng = rng

    # -- target selection --------------------------------------------------

    def like_targets(self, wup_view: View) -> list[int]:
        """Amplification: ``fLIKE`` uniform random picks from the WUP view.

        Random (not closest-first) selection avoids "forming too clustered
        a topology" (Section III-B).
        """
        entries = wup_view.sample(self.config.f_like, self.rng)
        return [e.node_id for e in entries]

    def dislike_targets(self, rps_view: View, copy: ItemCopy) -> list[int]:
        """Orientation: the RPS node(s) closest to the item's profile.

        Returns at most ``f_dislike`` node ids (the paper uses exactly 1).
        Entries with zero similarity still qualify — the paper picks the
        *most similar* node, falling back to an effectively random node
        when nothing matches (serendipity requires the item to keep
        moving).  Ties break **randomly**: a deterministic tie-break would
        systematically starve fresh nodes whose profiles still score zero
        against every item profile.
        """
        entries = rps_view.entries()
        if not entries:
            return []
        k = min(self.config.f_dislike, len(entries))
        if k == 0:
            return []
        item_profile = copy.profile
        metric = self.metric
        order = self.rng.permutation(len(entries))
        shuffled = [entries[int(i)] for i in order]
        scored = sorted(
            shuffled, key=lambda e: -metric(e.profile, item_profile)
        )
        return [e.node_id for e in scored[:k]]

    # -- the forwarding rule -------------------------------------------------

    def forward(
        self,
        node_id: int,
        copy: ItemCopy,
        liked: bool,
        wup_view: View,
        rps_view: View,
        engine: "CycleEngine",
    ) -> int:
        """Apply Algorithm 2 to one received (or published) item copy.

        Returns the number of targets the copy was sent to.  The caller has
        already updated the user profile and the copy's item profile
        (Algorithm 1); this method only chooses targets and ships clones.
        """
        if not liked:
            if copy.dislikes >= self.config.beep_ttl:
                return 0  # line 25/29: TTL reached, drop
            targets = self.dislike_targets(rps_view, copy)
        else:
            targets = self.like_targets(wup_view)

        if not targets:
            return 0
        for target in targets:
            clone = copy.clone_for_forward()
            if not liked:
                clone.dislikes += 1  # line 26: dI <- dI + 1
            engine.send_item(node_id, target, clone, via_like=liked)
        engine.log_forward(node_id, copy, liked, len(targets))
        return len(targets)
