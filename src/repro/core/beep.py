"""BEEP — the Biased EpidEmic dissemination Protocol (paper Section III).

BEEP follows the SIR epidemic model but is heterogeneous along two
dimensions, both driven by the receiving user's opinion (Algorithm 2):

* **Amplification** — a node that *likes* an item forwards it to ``fLIKE``
  targets; a node that *dislikes* it forwards it to a single target, and
  only while the copy's dislike counter is below the BEEP TTL.  User
  opinions thus act as a *social filter* on the epidemic's reproduction
  rate.
* **Orientation** — like-forwards pick targets **uniformly at random from
  the WUP view** (already interest-biased, and randomised to avoid
  over-clustering); dislike-forwards pick the **RPS-view node whose profile
  is most similar to the item's profile**, giving the item a chance to
  reach a distant interested community even though the current holder is
  not interested (serendipity / explore).

The implementation is a strategy object shared by WHATSUP nodes; it is
stateless apart from its RNG, so one instance per node suffices.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro._native import kernel as _native
from repro.core.config import WhatsUpConfig
from repro.core.news import ItemCopy
from repro.core.similarity import (
    NATIVE_MIN_PAIRS,
    VECTOR_MIN_PAIRS,
    MetricFn,
    PackedPool,
    ScoreCache,
    batch_scoring_enabled,
    default_score_cache,
    get_metric,
    metric_name_of,
    pack_profile,
    wup_items_vs_pool,
    wup_pool_vs_item,
)
from repro.gossip.views import View, ViewEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import CycleEngine

__all__ = ["BeepForwarder"]


class BeepForwarder:
    """Per-node BEEP forwarding logic (Algorithm 2).

    Parameters
    ----------
    config:
        The node's WHATSUP parameters (fanouts, TTL).
    metric:
        Similarity metric for dislike orientation — candidates are scored
        with ``metric(candidate_profile, item_profile)``, i.e. the
        candidate is the "chooser" ``n`` of the asymmetric WUP metric (how
        well the item's community profile matches what the candidate
        likes).  Registered metrics (name or function) are scored through
        the vectorised batch kernel; unregistered callables fall back to
        per-candidate scalar calls.
    rng:
        Target-sampling randomness.
    cache:
        Score cache for the batch path (shared process-wide by default).
        Item profiles mutate along the dissemination path, so only the
        peer-profile side of each pair is reused; the kernel skips caching
        for pairs without a stable snapshot identity.
    """

    __slots__ = (
        "config",
        "metric",
        "metric_name",
        "rng",
        "cache",
        "_pool_tag",
        "_pool_view",
        "_pool_entries",
        "_pool_profiles",
        "_pool_binary",
        "_pool",
    )

    def __init__(
        self,
        config: WhatsUpConfig,
        metric: MetricFn | str,
        rng: np.random.Generator,
        cache: ScoreCache | None = None,
    ) -> None:
        self.config = config
        self.metric_name = metric_name_of(metric)
        self.metric = get_metric(metric) if isinstance(metric, str) else metric
        self.rng = rng
        self.cache = cache if cache is not None else default_score_cache()
        # packed RPS pool, rebuilt only when the view's content changes: a
        # node receiving many disliked items in a cycle scores them all
        # against the same packed candidate arrays
        self._pool_tag: int = -1
        self._pool_view: View | None = None
        self._pool_entries: list[ViewEntry] = []
        self._pool_profiles: list = []
        self._pool_binary: bool = False
        self._pool: PackedPool | None = None

    def __getstate__(self) -> dict:
        """Serialize protocol state only: no score cache, no pool memo.

        The score cache is process-wide shared state (rebound to the
        receiving process's default cache) and the packed RPS pool is a
        pure function of the current view content (rebuilt lazily on
        first use) — dropping both keeps node transfers slim and every
        outcome bit-identical.
        """
        return {
            "config": self.config,
            "metric": self.metric,
            "metric_name": self.metric_name,
            "rng": self.rng,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self.cache = default_score_cache()
        self._pool_tag = -1
        self._pool_view = None
        self._pool_entries = []
        self._pool_profiles = []
        self._pool_binary = False
        self._pool = None

    def _view_pool(self, rps_view: View) -> list[ViewEntry]:
        """Refresh the memoised pool state for the current view generation."""
        tag = rps_view.mutation_count
        if self._pool_view is not rps_view or tag != self._pool_tag:
            # one facade walk serves both lists on either state plane
            self._pool_entries = entries = rps_view.entries()
            self._pool_profiles = [e.profile for e in entries]
            self._pool_binary = all(
                getattr(p, "is_binary", False) for p in self._pool_profiles
            )
            self._pool = None  # packed arrays rebuilt lazily (large pools)
            self._pool_tag = tag
            self._pool_view = rps_view
        return self._pool_entries

    # -- target selection --------------------------------------------------

    def like_targets(self, wup_view: View) -> list[int]:
        """Amplification: ``fLIKE`` uniform random picks from the WUP view.

        Random (not closest-first) selection avoids "forming too clustered
        a topology" (Section III-B).
        """
        entries = wup_view.sample(self.config.f_like, self.rng)
        return [e.node_id for e in entries]

    def dislike_targets(self, rps_view: View, copy: ItemCopy) -> list[int]:
        """Orientation: the RPS node(s) closest to the item's profile.

        Returns at most ``f_dislike`` node ids (the paper uses exactly 1).
        Entries with zero similarity still qualify — the paper picks the
        *most similar* node, falling back to an effectively random node
        when nothing matches (serendipity requires the item to keep
        moving).  Ties break **randomly**: a deterministic tie-break would
        systematically starve fresh nodes whose profiles still score zero
        against every item profile.
        """
        if len(rps_view) == 0:
            return []
        k = min(self.config.f_dislike, len(rps_view))
        if k == 0:
            return []
        item_profile = copy.profile
        batch = self.metric_name is not None and batch_scoring_enabled()
        if batch:
            # one pass over the memoised pool: the item profile is the
            # candidate side ("c") of the asymmetric metric, the RPS peers
            # the choosers.  Scores come out in stable view order; the
            # scalar path below scores the same order, so both paths pick
            # identical targets from identical rng draws.  On the native
            # tier the paper's fanout of 1 runs fully fused (scoring +
            # argmax + tie detection in one C call over the memoised pool
            # — same tie set, hence identical rng draws); otherwise tiny
            # pools use the specialised set-algebra loop and large ones
            # the packed numpy kernel (amortised per view generation).
            entries = self._view_pool(rps_view)
            n_entries = len(entries)
            nk = _native()
            fused_failed = False
            if (
                nk is not None
                and k == 1
                and n_entries >= NATIVE_MIN_PAIRS
                and self._pool_binary
                and not getattr(item_profile, "is_binary", False)
                and self.metric_name in ("wup", "cosine")
            ):
                tied = nk.item_argmax(
                    item_profile,
                    self._pool_profiles,
                    5 if self.metric_name == "wup" else 6,
                )
                if tied is not None:
                    pick = (
                        int(tied[0])
                        if tied.size == 1
                        else int(tied[int(self.rng.integers(tied.size))])
                    )
                    return [entries[pick].node_id]
                # a pool member the kernel cannot resolve — a second C
                # walk of the same pool would fail identically, so stay
                # on the Python tiers for this call
                fused_failed = True
            use_pool = n_entries >= VECTOR_MIN_PAIRS or (
                n_entries >= NATIVE_MIN_PAIRS
                and nk is not None
                and not fused_failed
            )
            if (
                self.metric_name == "wup"
                and self._pool_binary
                and not getattr(item_profile, "is_binary", False)
                and not use_pool
            ):
                scores = wup_pool_vs_item(self._pool_profiles, item_profile)
            else:
                if self._pool is None:
                    self._pool = PackedPool(self._pool_profiles)
                scores = self._pool.score(
                    pack_profile(item_profile),
                    self.metric_name,
                    "c",
                    allow_native=not fused_failed,
                )
        else:
            entries = rps_view.entries()
            metric = self.metric
            scores = [metric(e.profile, item_profile) for e in entries]
        return self._select_targets(entries, scores, k)

    def _select_targets(
        self, entries: list[ViewEntry], scores, k: int
    ) -> list[int]:
        """Pick the top-*k* node ids from aligned candidate scores.

        Shared by the per-item and batched orientation paths so both make
        identical picks (and identical RNG draws) from identical scores.
        """
        if k == 1:
            # the paper's operating point: a single argmax with a uniform
            # draw among exact ties (fresh all-zero profiles stay reachable)
            if isinstance(scores, np.ndarray):
                nk = _native()
                if nk is not None:
                    # compiled selection; same tie set as the numpy form
                    # below, hence identical rng draws
                    tied = nk.argmax_ties(scores)
                else:
                    tied = np.flatnonzero(scores == scores.max())
                pick = (
                    int(tied[0])
                    if tied.size == 1
                    else int(tied[int(self.rng.integers(tied.size))])
                )
            else:
                best = max(scores)
                tied = [i for i, s in enumerate(scores) if s == best]
                pick = (
                    tied[0]
                    if len(tied) == 1
                    else tied[int(self.rng.integers(len(tied)))]
                )
            return [entries[pick].node_id]
        # ablation fanouts (f_dislike > 1): shuffle for the random
        # tie-break, then take the stable top-k
        order = self.rng.permutation(len(entries))
        shuffled_scores = [scores[int(i)] for i in order]
        top = heapq.nlargest(
            k, range(len(order)), key=lambda i: (shuffled_scores[i], -i)
        )
        return [entries[int(order[i])].node_id for i in top]

    # -- the forwarding rule -------------------------------------------------

    def forward(
        self,
        node_id: int,
        copy: ItemCopy,
        liked: bool,
        wup_view: View,
        rps_view: View,
        engine: "CycleEngine",
    ) -> int:
        """Apply Algorithm 2 to one received (or published) item copy.

        Returns the number of targets the copy was sent to.  The caller has
        already updated the user profile and the copy's item profile
        (Algorithm 1); this method only chooses targets and ships clones.
        """
        if not liked:
            if copy.dislikes >= self.config.beep_ttl:
                return 0  # line 25/29: TTL reached, drop
            targets = self.dislike_targets(rps_view, copy)
        else:
            targets = self.like_targets(wup_view)

        if not targets:
            return 0
        for target in targets:
            # line 26 for the dislike path: dI <- dI + 1, folded in
            clone = copy.clone_for_forward(0 if liked else 1)
            engine.send_item(node_id, target, clone, via_like=liked)
        engine.log_forward(node_id, copy, liked, len(targets))
        return len(targets)

    def forward_batch(
        self,
        node_id: int,
        fresh: "list[tuple[ItemCopy, bool]]",
        liked_flags: list[bool],
        wup_view: View,
        rps_view: View,
        engine: "CycleEngine",
    ) -> None:
        """Apply Algorithm 2 to a node's whole per-cycle batch of receipts.

        Equivalent to calling :meth:`forward` once per ``(copy, liked)``
        pair in order, restructured for the batched delivery path:

        * every eligible *disliked* copy is scored against the memoised
          RPS pool in one fused kernel pass
          (:func:`~repro.core.similarity.wup_items_vs_pool`) before any
          target is picked — scoring is pure, so hoisting it cannot move
          an RNG draw;
        * target selection, cloning and shipping then run per message in
          arrival order (identical RNG consumption to the scalar path),
          with the fan-out shipped through
          :meth:`~repro.simulation.engine.CycleEngine.send_fanout`;
        * forwarding actions are recorded in one bulk log append, with
          hop counts captured before the fan-out advances the original
          copy.
        """
        config = self.config
        ttl = config.beep_ttl
        rps_len = len(rps_view)
        k_dislike = min(config.f_dislike, rps_len)

        # pass 1 (pure): fused orientation scores for the disliked copies.
        # Only engaged for genuinely large RPS pools on the numpy tier
        # (its fixed per-call overhead loses to the memoised set-algebra
        # loop at the paper's view size of 30, where dislike_targets
        # already amortises its packed pool per view generation).  On the
        # native tier this pre-pass is skipped entirely: per-copy
        # dislike_targets runs the fully fused C argmax against the same
        # memoised pool, in the same arrival order — same scores, same
        # rng draws, no batch bookkeeping.
        scores_for: dict[int, np.ndarray] = {}
        if k_dislike >= 1 and rps_len >= VECTOR_MIN_PAIRS and _native() is None:
            pending = [
                copy
                for (copy, _via), liked in zip(fresh, liked_flags, strict=True)
                if not liked and copy.dislikes < ttl
            ]
            if (
                len(pending) >= 2
                and self.metric_name == "wup"
                and batch_scoring_enabled()
            ):
                self._view_pool(rps_view)
                if self._pool_binary and not any(
                    getattr(c.profile, "is_binary", False) for c in pending
                ):
                    if self._pool is None:
                        self._pool = PackedPool(self._pool_profiles)
                    packs = [pack_profile(c.profile) for c in pending]
                    arrays = wup_items_vs_pool(self._pool, packs)
                    scores_for = {
                        id(c): s for c, s in zip(pending, arrays, strict=True)
                    }

        # pass 2: selection + shipping in arrival order (scalar semantics)
        f_items: list[int] = []
        f_hops: list[int] = []
        f_liked: list[bool] = []
        f_targets: list[int] = []
        for (copy, _via), liked in zip(fresh, liked_flags, strict=True):
            if not liked:
                if copy.dislikes >= ttl:
                    continue  # line 25/29: TTL reached, drop
                scores = scores_for.get(id(copy))
                if scores is not None:
                    targets = self._select_targets(
                        self._pool_entries, scores, k_dislike
                    )
                else:
                    targets = self.dislike_targets(rps_view, copy)
            else:
                targets = self.like_targets(wup_view)
            if not targets:
                continue
            f_items.append(copy.item.item_id)
            f_hops.append(copy.hops)
            f_liked.append(liked)
            f_targets.append(len(targets))
            engine.send_fanout(
                node_id, targets, copy, via_like=liked, bump_dislikes=not liked
            )
        if f_items:
            engine.log_forwards(node_id, f_items, f_hops, f_liked, f_targets)
