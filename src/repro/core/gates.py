"""The ``REPRO_*`` gate registry: every env-var read goes through here.

This module is the **single declared gate-registry module** of the tree
(lint rule RL002 in :mod:`tools.repro_lint`): no other module under
``src/repro`` may read a ``REPRO_*`` environment variable directly.
Gate-owning modules call these helpers once at import time to seed their
module globals; programmatic callers use :class:`repro.api.RunConfig`,
which parses a passed-in mapping with the same helpers and therefore the
same spellings, floors, and invalid-value fallbacks.

Parse rules (shared with ``RunConfig.from_env``):

* **flags** — any of ``0``/``false``/``no``/``off`` (case-insensitive)
  disables, everything else enables;
* **ints/floats** — parsed with an optional floor (``max(floor, value)``)
  and an invalid-value fallback to the default, so a typo in the
  environment selects the documented default instead of crashing an
  import;
* **choices** — stripped, lower-cased, and validated against the owning
  module's declared tuple, falling back to the default;
* **raw** — the verbatim string (callers own any further parsing, e.g.
  the fault-schedule DSL).

The helpers accept an explicit ``env`` mapping so ``RunConfig.from_env``
(and tests) can parse arbitrary snapshots without touching the process
environment.
"""

from __future__ import annotations

import os
from typing import Mapping

__all__ = [
    "DISABLED_WORDS",
    "env_flag",
    "env_int",
    "env_float",
    "env_choice",
    "env_raw",
]

#: the flag spellings that turn a gate off (case-insensitive)
DISABLED_WORDS = ("0", "false", "no", "off")


def _mapping(env: Mapping[str, str] | None) -> Mapping[str, str]:
    return os.environ if env is None else env


def env_flag(
    name: str,
    default: bool = True,
    *,
    env: Mapping[str, str] | None = None,
) -> bool:
    """Parse a boolean gate: off iff the value is a disabled word."""
    raw = _mapping(env).get(name, "1" if default else "0")
    return raw.lower() not in DISABLED_WORDS


def env_int(
    name: str,
    default: int,
    *,
    floor: int | None = None,
    env: Mapping[str, str] | None = None,
) -> int:
    """Parse an integer knob with an optional floor and default fallback."""
    try:
        value = int(_mapping(env).get(name, default))
    except ValueError:
        value = default
    return value if floor is None else max(floor, value)


def env_float(
    name: str,
    default: float,
    *,
    floor: float | None = None,
    env: Mapping[str, str] | None = None,
) -> float:
    """Parse a float knob with an optional floor and default fallback."""
    try:
        value = float(_mapping(env).get(name, default))
    except ValueError:
        return default
    return value if floor is None else max(floor, value)


def env_choice(
    name: str,
    default: str,
    choices: tuple[str, ...],
    *,
    env: Mapping[str, str] | None = None,
) -> str:
    """Parse an enum knob: strip + lower-case, fall back on unknown values."""
    raw = _mapping(env).get(name, default).strip().lower()
    return raw if raw in choices else default


def env_raw(
    name: str,
    default: str = "",
    *,
    env: Mapping[str, str] | None = None,
) -> str:
    """The verbatim variable value; callers own any further parsing."""
    return _mapping(env).get(name, default)
