"""Cold start: how a node joins the WHATSUP network (paper Section II-D).

A joining node

1. contacts a uniformly random existing node and **inherits its RPS and WUP
   views** (the contact's current entries become the joiner's);
2. builds a fresh profile by **selecting and rating the 3 most popular news
   items** found in the profiles of the nodes of the inherited RPS view
   (popularity = number of view profiles that like the item);
3. relies on the WUP metric's bias towards small, selective profiles to be
   picked up quickly as a neighbour, receive items, and converge to a view
   matching its real interests.

The rating in step 2 uses the joiner's own opinion oracle — the paper's
user rates the bootstrap items through the same like/dislike widget as any
other item.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.node import WhatsUpNode

__all__ = ["bootstrap_from_contact", "popular_items_in_views"]


def popular_items_in_views(node: WhatsUpNode, k: int | None = 3) -> list[int]:
    """The *k* most-liked item ids across the node's RPS-view profiles.

    Ties break towards lower item id for determinism.  ``k=None`` returns
    the full popularity ranking.

    Frozen view profiles expose packed sorted like-id arrays, so the
    popularity count is one ``np.unique`` over their concatenation; profiles
    without packed arrays fall back to a Counter sweep.
    """
    # the facade accessor works on either state-plane backend
    profiles = node.rps.view.profiles()
    arrays = [
        p.liked_ids for p in profiles if getattr(p, "liked_ids", None) is not None
    ]
    if len(arrays) == len(profiles):
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return []
        ids, counts = np.unique(np.concatenate(arrays), return_counts=True)
        order = np.lexsort((ids, -counts))
        items = [int(i) for i in ids[order]]
        return items if k is None else items[:k]
    counts: Counter[int] = Counter()
    for profile in profiles:
        for iid in profile.liked:
            counts[iid] += 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    items = [iid for iid, _ in ranked]
    return items if k is None else items[:k]


def bootstrap_from_contact(
    joiner: WhatsUpNode,
    contact: WhatsUpNode,
    now: int,
    *,
    n_popular: int = 3,
    item_timestamps: dict[int, int] | None = None,
    max_extra: int = 7,
) -> list[int]:
    """Run the paper's cold-start procedure on *joiner*.

    Parameters
    ----------
    joiner:
        The freshly created node (empty profile and views).
    contact:
        The random existing node the joiner knows out of band.
    now:
        Current cycle (timestamps of the bootstrap ratings).
    n_popular:
        How many popular items to rate (paper: 3).
    item_timestamps:
        Optional map item id → creation cycle, so bootstrap ratings age
        like normal ratings; defaults to stamping with *now*.
    max_extra:
        If the joiner honestly *dislikes* all ``n_popular`` items, its
        profile has no like at all and the similarity layer cannot see it
        (every WUP score is zero in both directions).  We keep walking
        down the popularity ranking — the user keeps browsing the feed —
        rating up to ``max_extra`` further items, stopping at the first
        like.  Purely-disliking joiners remain reachable through BEEP's
        randomised serendipity path, just more slowly.

    Returns
    -------
    list[int]
        The item ids the joiner rated during bootstrap.
    """
    # 1. inherit the contact's views
    joiner.rps.view.upsert_all(contact.rps.view.entries())
    joiner.rps.view.trim_random(joiner.rps.rng)
    joiner.wup.view.upsert_all(contact.wup.view.entries())
    # the joiner's profile is empty: any trim ranking is degenerate, so keep
    # the contact's entries as-is (capacity-bounded).  The trim draws from
    # the *WUP* stream: each protocol owns its randomness, so a cold-start
    # join never perturbs the RPS draw sequence (RNG hygiene — the two
    # streams stay independently reproducible).
    joiner.wup.view.trim_random(joiner.wup.rng)

    # the contact itself is a valid first neighbour
    contact_entry = contact.rps.descriptor(contact.profile.snapshot(), now)
    joiner.rps.view.upsert(contact_entry)
    joiner.rps.view.trim_random(joiner.rps.rng)

    # 2. rate the most popular items of the inherited RPS view, continuing
    #    past n_popular until the profile holds at least one like
    rated: list[int] = []
    ranking = popular_items_in_views(joiner, None)
    any_liked = False
    for position, iid in enumerate(ranking):
        if position >= n_popular and (any_liked or position >= n_popular + max_extra):
            break
        ts = (
            item_timestamps.get(iid, now)
            if item_timestamps is not None
            else now
        )
        liked = _bootstrap_opinion(joiner, iid)
        any_liked = any_liked or liked
        joiner.profile.set(iid, ts, 1.0 if liked else 0.0)
        rated.append(iid)

    # 3. re-rank the WUP view against the fresh profile
    rps_entries, rps_cols = joiner.rps.view.entries_with_columns()
    joiner.wup.refresh(joiner.profile.snapshot(), rps_entries, rps_cols)
    return rated


def _bootstrap_opinion(joiner: WhatsUpNode, item_id: int) -> bool:
    """The joiner's opinion on a bootstrap item.

    The opinion oracle is keyed by :class:`~repro.core.news.NewsItem`; for
    bootstrap we only hold the id, so we wrap it in a minimal stub.  Oracles
    built from datasets only read ``item_id``.
    """
    from repro.core.news import NewsItem

    stub = NewsItem(item_id=item_id, source=-1, created_at=0)
    try:
        return bool(joiner.opinion(joiner.node_id, stub))
    except KeyError:
        # the item is unknown to the oracle (e.g. already purged from the
        # workload window): default to "like", the optimistic choice that
        # maximises early connectivity, as in the paper's rationale
        return True
