"""Publication schedules.

A workload assigns every news item a publisher (source node) and a
publication cycle.  The schedule spreads the items of a dataset over an
initial window of cycles — the paper's deployment publishes "5 news items per
cycle"; its simulations spread each community's items over the run — followed
by drain cycles during which no new items appear but dissemination completes.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.core.news import NewsItem
from repro.utils.exceptions import ConfigurationError

__all__ = ["PublicationSchedule"]


class PublicationSchedule:
    """Cycle-indexed publication plan.

    Parameters
    ----------
    publications:
        Iterable of ``(cycle, news_item)`` pairs.  The item's ``created_at``
        should equal the cycle (the engine asserts this at injection time).
    """

    def __init__(self, publications: Iterable[tuple[int, NewsItem]]) -> None:
        self._by_cycle: dict[int, list[NewsItem]] = defaultdict(list)
        self._items: list[NewsItem] = []
        self._index_of: dict[int, int] = {}
        for cycle, item in publications:
            if cycle < 0:
                raise ConfigurationError(
                    f"publication cycle must be >= 0, got {cycle}"
                )
            if item.item_id in self._index_of:
                raise ConfigurationError(
                    f"duplicate publication of item {item.item_id:#x}"
                )
            self._by_cycle[cycle].append(item)
            self._index_of[item.item_id] = len(self._items)
            self._items.append(item)

    @staticmethod
    def uniform(
        items: Sequence[NewsItem], publish_cycles: int
    ) -> "PublicationSchedule":
        """Spread *items* evenly over ``[0, publish_cycles)`` in list order.

        Items must have been created with ``created_at`` equal to the cycle
        this spreading assigns; dataset generators use
        :meth:`publication_cycle_of` to coordinate.
        """
        if publish_cycles <= 0:
            raise ConfigurationError(
                f"publish_cycles must be > 0, got {publish_cycles}"
            )
        return PublicationSchedule(
            (
                PublicationSchedule.publication_cycle_of(
                    i, len(items), publish_cycles
                ),
                item,
            )
            for i, item in enumerate(items)
        )

    @staticmethod
    def publication_cycle_of(index: int, n_items: int, publish_cycles: int) -> int:
        """The cycle at which the *index*-th of *n_items* items appears."""
        if n_items <= 0:
            raise ConfigurationError("n_items must be > 0")
        return min(int(index * publish_cycles / n_items), publish_cycles - 1)

    # -- queries ------------------------------------------------------------

    def items_at(self, cycle: int) -> list[NewsItem]:
        """Items published at *cycle* (possibly empty)."""
        return self._by_cycle.get(cycle, [])

    @property
    def items(self) -> list[NewsItem]:
        """All items, in workload order (dense item indices follow this)."""
        return self._items

    def index_of(self, item_id: int) -> int:
        """Dense index of an item id (raises ``KeyError`` if unknown)."""
        return self._index_of[item_id]

    @property
    def index_map(self) -> dict[int, int]:
        """The full ``item_id -> dense index`` mapping (do not mutate).

        The batched delivery path maps a whole cycle's receipts in one local
        dict-lookup loop instead of one :meth:`index_of` call per message.
        """
        return self._index_of

    @property
    def n_items(self) -> int:
        return len(self._items)

    @property
    def last_cycle(self) -> int:
        """The latest cycle with a publication (0 when empty)."""
        return max(self._by_cycle, default=0)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PublicationSchedule(items={len(self._items)}, "
            f"last_cycle={self.last_cycle})"
        )
