"""Node churn injection.

The paper claims gossip's hallmark robustness ("preserving the fundamental
advantages of standard gossip: simplicity of deployment and robustness") and
demonstrates message-loss tolerance; our extension benchmarks additionally
stress WHATSUP under *churn* — nodes crashing and rejoining — which the
underlying RPS layer is designed to absorb (dead descriptors age out and are
replaced through shuffling).

:class:`ChurnModel` kills each alive node independently per cycle with a
fixed probability and optionally revives it a fixed number of cycles later.
A revived node keeps its profile (it is the same user) but its views have
aged — exactly the "inactive user" scenario of Section II-E.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import CycleEngine

__all__ = ["ChurnModel"]


class ChurnModel:
    """Random kill/rejoin process.

    Parameters
    ----------
    kill_rate:
        Per-cycle probability that an alive node crashes.
    rejoin_after:
        Cycles a crashed node stays down; ``None`` → crashes are permanent.
        A killed node is down for **at least one full cycle**: revivals are
        processed at the top of :meth:`apply`, before this cycle's kills,
        so a node killed at cycle ``t`` revives at
        ``t + max(1, rejoin_after)`` — ``rejoin_after=0`` means "return at
        the next cycle", not "never die" (and not, as a naive ``due = now``
        schedule would silently produce, "never return": cycle ``t``'s
        revivals have already been popped by the time the kill happens).
    start_cycle:
        First cycle at which churn applies (lets the overlay warm up first).
    protected:
        Node ids never killed (e.g. the sources of a workload, so that
        publications are not silently dropped and runs stay comparable).
    """

    def __init__(
        self,
        kill_rate: float,
        rejoin_after: int | None = None,
        start_cycle: int = 0,
        protected: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        check_probability("kill_rate", kill_rate)
        if rejoin_after is not None:
            check_non_negative("rejoin_after", rejoin_after)
        check_non_negative("start_cycle", start_cycle)
        self.kill_rate = float(kill_rate)
        self.rejoin_after = rejoin_after
        self.start_cycle = int(start_cycle)
        self.protected = frozenset(protected)
        #: cycle -> node ids scheduled to revive then
        self._revivals: dict[int, list[int]] = {}
        self.total_kills = 0
        self.total_rejoins = 0

    def apply(self, engine: "CycleEngine", now: int) -> None:
        """Kill and revive nodes for this cycle (engine hook)."""
        # revivals first, so a node can rejoin the cycle it is due
        for nid in self._revivals.pop(now, []):
            node = engine.nodes.get(nid)
            if node is not None and not node.alive:
                node.alive = True
                self.total_rejoins += 1

        if now < self.start_cycle or self.kill_rate == 0.0:
            return
        rng = engine.streams.get("churn")
        for nid in engine.alive_node_ids():
            if nid in self.protected:
                continue
            if rng.random() < self.kill_rate:
                engine.nodes[nid].alive = False
                self.total_kills += 1
                if self.rejoin_after is not None:
                    # at least one cycle down: this cycle's revivals were
                    # popped above, so `due = now` would never fire
                    due = now + max(1, self.rejoin_after)
                    self._revivals.setdefault(due, []).append(nid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChurnModel(kill_rate={self.kill_rate}, "
            f"rejoin_after={self.rejoin_after}, kills={self.total_kills})"
        )
