"""Node churn injection.

The paper claims gossip's hallmark robustness ("preserving the fundamental
advantages of standard gossip: simplicity of deployment and robustness") and
demonstrates message-loss tolerance; our extension benchmarks additionally
stress WHATSUP under *churn* — nodes crashing and rejoining — which the
underlying RPS layer is designed to absorb (dead descriptors age out and are
replaced through shuffling).

:class:`ChurnModel` kills each alive node independently per cycle with a
fixed probability and optionally revives it a fixed number of cycles later.
A revived node keeps its profile (it is the same user) but its views have
aged — exactly the "inactive user" scenario of Section II-E.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import CycleEngine

__all__ = ["ChurnModel", "CorrelatedOutageChurn"]


class ChurnModel:
    """Random kill/rejoin process.

    Parameters
    ----------
    kill_rate:
        Per-cycle probability that an alive node crashes.
    rejoin_after:
        Cycles a crashed node stays down; ``None`` → crashes are permanent.
        A killed node is down for **at least one full cycle**: revivals are
        processed at the top of :meth:`apply`, before this cycle's kills,
        so a node killed at cycle ``t`` revives at
        ``t + max(1, rejoin_after)`` — ``rejoin_after=0`` means "return at
        the next cycle", not "never die" (and not, as a naive ``due = now``
        schedule would silently produce, "never return": cycle ``t``'s
        revivals have already been popped by the time the kill happens).
    start_cycle:
        First cycle at which churn applies (lets the overlay warm up first).
    protected:
        Node ids never killed (e.g. the sources of a workload, so that
        publications are not silently dropped and runs stay comparable).
    """

    def __init__(
        self,
        kill_rate: float,
        rejoin_after: int | None = None,
        start_cycle: int = 0,
        protected: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        check_probability("kill_rate", kill_rate)
        if rejoin_after is not None:
            check_non_negative("rejoin_after", rejoin_after)
        check_non_negative("start_cycle", start_cycle)
        self.kill_rate = float(kill_rate)
        self.rejoin_after = rejoin_after
        self.start_cycle = int(start_cycle)
        self.protected = frozenset(protected)
        #: cycle -> node ids scheduled to revive then
        self._revivals: dict[int, list[int]] = {}
        self.total_kills = 0
        self.total_rejoins = 0

    def apply(self, engine: "CycleEngine", now: int) -> None:
        """Kill and revive nodes for this cycle (engine hook)."""
        # revivals first, so a node can rejoin the cycle it is due
        for nid in self._revivals.pop(now, []):
            node = engine.nodes.get(nid)
            if node is not None and not node.alive:
                node.alive = True
                self.total_rejoins += 1

        if now < self.start_cycle or self.kill_rate == 0.0:
            return
        rng = engine.streams.get("churn")
        for nid in engine.alive_node_ids():
            if nid in self.protected:
                continue
            if rng.random() < self.kill_rate:
                engine.nodes[nid].alive = False
                self.total_kills += 1
                if self.rejoin_after is not None:
                    # at least one cycle down: this cycle's revivals were
                    # popped above, so `due = now` would never fire
                    due = now + max(1, self.rejoin_after)
                    self._revivals.setdefault(due, []).append(nid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChurnModel(kill_rate={self.kill_rate}, "
            f"rejoin_after={self.rejoin_after}, kills={self.total_kills})"
        )


class CorrelatedOutageChurn:
    """A deterministic, shard-aligned mass outage.

    At ``start_cycle`` every node with ``node_id % n_classes ==
    target_class`` goes offline at once — exactly the population one
    shard of an ``N = n_classes`` run owns (:func:`shard_of` is ``id %
    N``) — and the whole class returns ``down_for`` cycles later.  This
    is ROADMAP item 4's "regional churn": unlike :class:`ChurnModel`'s
    independent per-node coin flips, the failures here are perfectly
    correlated, the worst case for a gossip overlay (an entire region of
    the id space vanishes, taking its view entries and in-flight items
    with it).

    No RNG is consumed, so adding the model to a run perturbs no other
    stream — with and without the outage are comparable draw-for-draw.
    The counters mirror :class:`ChurnModel` so shard-merge accounting
    and experiment reports treat both models uniformly.
    """

    def __init__(
        self,
        n_classes: int,
        target_class: int = 0,
        start_cycle: int = 10,
        down_for: int = 10,
        protected: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        if n_classes < 1:
            raise ValueError("n_classes must be >= 1")
        if not (0 <= target_class < n_classes):
            raise ValueError("target_class must be within [0, n_classes)")
        check_non_negative("start_cycle", start_cycle)
        if down_for < 1:
            raise ValueError("down_for must be >= 1")
        self.n_classes = int(n_classes)
        self.target_class = int(target_class)
        self.start_cycle = int(start_cycle)
        self.down_for = int(down_for)
        self.protected = frozenset(protected)
        self.total_kills = 0
        self.total_rejoins = 0

    def apply(self, engine: "CycleEngine", now: int) -> None:
        """Engine hook: fire the outage / the recovery at their cycles."""
        if now == self.start_cycle:
            for nid, node in engine.nodes.items():
                if nid % self.n_classes != self.target_class:
                    continue
                if nid in self.protected or not node.alive:
                    continue
                node.alive = False
                self.total_kills += 1
        elif now == self.start_cycle + self.down_for:
            for nid, node in engine.nodes.items():
                if nid % self.n_classes != self.target_class:
                    continue
                if nid in self.protected or node.alive:
                    continue
                node.alive = True
                self.total_rejoins += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorrelatedOutageChurn(class={self.target_class}/{self.n_classes}, "
            f"start={self.start_cycle}, down_for={self.down_for})"
        )
