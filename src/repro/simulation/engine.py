"""The cycle-based simulation engine.

Per cycle, in order (see DESIGN.md §3):

1. transport per-cycle state resets (congestion counters);
2. churn injection (optional) — kills and rejoins;
3. the item inbox filled during the *previous* cycle becomes current;
4. scheduled publications are injected at their sources;
5. every alive node, in a freshly shuffled order, runs its gossip
   maintenance (:meth:`~repro.simulation.node.BaseNode.begin_cycle`);
   gossip request/reply pairs complete synchronously within the cycle,
   subject to transport loss;
6. every alive node drains its current inbox — as one per-node batch
   (:meth:`~repro.simulation.node.BaseNode.receive_items`) on the batched
   delivery path, or one copy at a time
   (:meth:`~repro.simulation.node.BaseNode.receive_item`) on the scalar
   path; forwards triggered by these receipts are enqueued for the *next*
   cycle — one hop per cycle, aligning hop counts with the paper's cycle
   time unit;
7. cycle observers fire (used by the Figure 7 dynamics experiments).

All loss, traffic accounting and event logging funnel through the engine's
``gossip`` / ``send_item`` / ``log_*`` methods, so every protocol is measured
identically.

Under a lossless unit-delay transport the engine runs the **batched
delivery pipeline** (see :mod:`repro.simulation.delivery`): every item send
of a cycle is buffered and flushed in one bulk pass (one traffic-stats
update, ordered future-inbox extension, no per-message envelopes), nodes
receive their whole cycle inbox at once, and event logging happens in bulk
appends.  Outcomes are bitwise-identical to the scalar path at fixed seeds;
``REPRO_BATCH_DELIVERY=0`` restores the scalar pipeline.

The engine itself is state-plane agnostic: node views and profiles live
behind the facade of :mod:`repro.gossip.views` / :mod:`repro.core.profiles`,
which serves either the array-backed columnar layout (default) or the
legacy dict structures (``REPRO_ARRAY_STATE=0``, see
:mod:`repro.core.arraystate`) with identical observable behaviour.

Under ``REPRO_SHARDS=N`` (``N`` > 1) the population runs **process-
sharded**: each worker drives its shard with a subclass of this engine
whose routing methods divert cross-shard traffic into barrier-flushed
mailboxes, and the parent holds a facade with this class's surface (see
:mod:`repro.simulation.sharding` — construction goes through its
``make_engine`` factory).  At the default of 1 that factory returns this
class unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable

from repro.core.news import ItemCopy
from repro.network.message import Envelope, MessageKind, payload_wire_size
from repro.network.stats import TrafficStats
from repro.network.transport import PerfectTransport, Transport
from repro.simulation.delivery import delivery_batching_enabled
from repro.simulation.events import DisseminationLog
from repro.simulation.node import BaseNode
from repro.simulation.schedule import PublicationSchedule
from repro.utils.exceptions import SimulationError
from repro.utils.rng import RngStreams

__all__ = ["CycleEngine"]

Observer = Callable[["CycleEngine", int], None]


class CycleEngine:
    """Drives a population of protocol nodes through gossip cycles.

    Parameters
    ----------
    nodes:
        The initial population.  More nodes may join later through
        :meth:`add_node` (cold-start experiments).
    schedule:
        The publication schedule (also the authority on dense item indices).
    transport:
        Delivery model; defaults to :class:`PerfectTransport`.
    streams:
        Root randomness; the engine draws its ``engine-order`` (node
        shuffling) and ``transport`` (loss decisions) streams from it.
    churn:
        Optional churn model with an ``apply(engine, cycle)`` method.
    """

    def __init__(
        self,
        nodes: Iterable[BaseNode],
        schedule: PublicationSchedule,
        transport: Transport | None = None,
        streams: RngStreams | None = None,
        churn: "object | None" = None,
    ) -> None:
        self.nodes: dict[int, BaseNode] = {}
        for node in nodes:
            if node.node_id in self.nodes:
                raise SimulationError(f"duplicate node id {node.node_id}")
            self.nodes[node.node_id] = node
            node._alive_listener = self._on_alive_changed
        self.schedule = schedule
        self.transport = transport if transport is not None else PerfectTransport()
        self.streams = streams if streams is not None else RngStreams(0)
        self.churn = churn

        self._order_rng = self.streams.get("engine-order")
        self._transport_rng = self.streams.get("transport")

        self.stats = TrafficStats()
        self.log = DisseminationLog()
        self.now: int = 0
        self.cycles_run: int = 0

        #: arrival cycle -> node id -> [(sender, copy, via_like)]
        self._future_inboxes: dict[int, dict[int, list[tuple[int, ItemCopy, bool]]]] = (
            defaultdict(lambda: defaultdict(list))
        )
        self._observers: list[Observer] = []
        #: running count of item copies in flight (O(1) pending queries)
        self._pending_items: int = 0
        #: alive-id list, maintained incrementally: invalidated by the
        #: nodes' alive-listener hook instead of being rebuilt every cycle
        self._alive_ids: list[int] | None = None

        #: per-cycle outgoing item buffer (the batched delivery path):
        #: ``(target_id, (sender_id, copy, via_like))`` rows, flushed into
        #: the future inboxes and the traffic stats in one bulk pass
        self._send_buf: list[tuple[int, tuple[int, ItemCopy, bool]]] = []
        self._buf_bytes: int = 0
        self._buf_dropped: int = 0
        self._buffering: bool = False

        self.transport.setup(self.nodes.keys(), self._transport_rng)
        #: lossless unit-delay transports never drop and never consult the
        #: RNG, so per-message attempt()/delay() dispatch — and, with
        #: delivery batching, per-message envelopes — can be skipped
        self._lossless = bool(self.transport.is_lossless())

    # ------------------------------------------------------------------ #
    # population management                                               #
    # ------------------------------------------------------------------ #

    def add_node(self, node: BaseNode) -> None:
        """Add a node joining mid-run (its first cycle is the next one)."""
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        node._alive_listener = self._on_alive_changed
        self._alive_ids = None

    def _on_alive_changed(self, node_id: int, alive: bool) -> None:
        self._alive_ids = None

    def alive_node_ids(self) -> list[int]:
        """Ids of nodes currently alive (cached between liveness changes)."""
        cached = self._alive_ids
        if cached is None:
            cached = [nid for nid, n in self.nodes.items() if n.alive]
            self._alive_ids = cached
        return list(cached)

    def node(self, node_id: int) -> BaseNode:
        """Look up a node by id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node id {node_id}") from None

    # ------------------------------------------------------------------ #
    # routing (the only way nodes touch the network)                      #
    # ------------------------------------------------------------------ #

    def gossip(
        self,
        sender_id: int,
        target_id: int,
        payload: object,
        kind: MessageKind,
    ) -> None:
        """Route one gossip request and, if any, its reply.

        Both legs pass the transport's loss model independently; a lost
        request silently ends the exchange (gossip protocols are designed
        for exactly this).

        Under a lossless transport the exchange runs envelope-free: both
        legs are accounted straight into the traffic counters
        (:meth:`TrafficStats.record_parts`) — same counts, same bytes, no
        per-message object construction.
        """
        if self._lossless:
            target = self.nodes.get(target_id)
            ok = target is not None and target._alive
            self.stats.record_parts(kind, payload_wire_size(payload), ok)
            if not ok:
                return
            reply = target.on_gossip(payload, kind, self, self.now)
            if reply is None:
                return
            sender = self.nodes.get(sender_id)
            rok = sender is not None and sender._alive
            self.stats.record_parts(kind, payload_wire_size(reply), rok)
            if rok:
                sender.on_gossip(reply, kind, self, self.now)
            return
        env = Envelope(
            sender_id, target_id, kind, payload, payload_wire_size(payload)
        )
        target = self.nodes.get(target_id)
        ok = (
            target is not None
            and target.alive
            and self.transport.attempt(env, self._transport_rng)
        )
        self.stats.record(env, ok)
        if not ok:
            return
        reply = target.on_gossip(payload, kind, self, self.now)
        if reply is None:
            return
        renv = Envelope(
            target_id, sender_id, kind, reply, payload_wire_size(reply)
        )
        sender = self.nodes.get(sender_id)
        rok = (
            sender is not None
            and sender.alive
            and self.transport.attempt(renv, self._transport_rng)
        )
        self.stats.record(renv, rok)
        if rok:
            sender.on_gossip(reply, kind, self, self.now)

    def send_item(
        self,
        sender_id: int,
        target_id: int,
        copy: ItemCopy,
        via_like: bool,
    ) -> None:
        """Send one item copy.

        Arrival is after ``transport.delay(...)`` cycles — 1 under the
        paper's one-hop-per-cycle model, longer under
        :class:`~repro.network.transport.LatencyTransport`.

        While the engine is inside a batched cycle, sends are buffered and
        flushed in one bulk pass at cycle end (:meth:`_flush_item_sends`)
        — no envelope, no per-message stats update.  The buffered rows
        reach the future inboxes in exactly the order the scalar path
        would have appended them.
        """
        if self._buffering:
            target = self.nodes.get(target_id)
            if target is not None and target._alive:
                self._send_buf.append(
                    (target_id, (sender_id, copy, via_like))
                )
                self._buf_bytes += copy.wire_size()
                self._pending_items += 1
            else:
                self._buf_dropped += 1
            return
        env = Envelope(
            sender_id,
            target_id,
            MessageKind.ITEM,
            copy,
            copy.wire_size(),
            via_like=via_like,
        )
        target = self.nodes.get(target_id)
        ok = (
            target is not None
            and target.alive
            and (
                self._lossless
                or self.transport.attempt(env, self._transport_rng)
            )
        )
        self.stats.record(env, ok)
        if ok:
            if self._lossless:
                delay = 1
            else:
                delay = max(
                    1, int(self.transport.delay(env, self._transport_rng))
                )
            self._future_inboxes[self.now + delay][target_id].append(
                (sender_id, copy, via_like)
            )
            self._pending_items += 1

    def send_fanout(
        self,
        sender_id: int,
        targets: list[int],
        copy: ItemCopy,
        via_like: bool,
        bump_dislikes: bool = False,
    ) -> None:
        """Fan one item copy out to several targets (BEEP's ship loop).

        Each target receives an independent forwarded copy (hop count +1,
        optionally a bumped dislike counter).  On the batched path the
        *last* alive target takes ownership of the original copy — the
        sender never touches it again — so one profile clone per
        forwarding action is skipped; all copies are buffered with a
        single wire-size measurement (clones of one action are the same
        size: forwarding does not alter the profile).
        """
        extra = 1 if bump_dislikes else 0
        if not self._buffering:
            for target in targets:
                self.send_item(
                    sender_id, target, copy.clone_for_forward(extra), via_like
                )
            return
        nodes_get = self.nodes.get
        alive = []
        for target in targets:
            node = nodes_get(target)
            if node is not None and node._alive:
                alive.append(target)
        dropped = len(targets) - len(alive)
        if dropped:
            self._buf_dropped += dropped
        n = len(alive)
        if n == 0:
            return
        buf = self._send_buf
        last = alive[-1]
        for target in alive[:-1]:
            buf.append(
                (target, (sender_id, copy.clone_for_forward(extra), via_like))
            )
        buf.append((last, (sender_id, copy.advance_hop(extra), via_like)))
        self._buf_bytes += copy.wire_size() * n
        self._pending_items += n

    def _flush_item_sends(self) -> None:
        """Apply the cycle's buffered item sends in one bulk pass."""
        buf = self._send_buf
        dropped = self._buf_dropped
        if buf or dropped:
            self.stats.record_items_bulk(len(buf), dropped, self._buf_bytes)
        if buf:
            inboxes = self._future_inboxes[self.now + 1]
            for target_id, entry in buf:
                inboxes[target_id].append(entry)
            self._send_buf = []
        self._buf_bytes = 0
        self._buf_dropped = 0

    # ------------------------------------------------------------------ #
    # event logging (called by node implementations)                      #
    # ------------------------------------------------------------------ #

    def log_delivery(
        self,
        node_id: int,
        copy: ItemCopy,
        liked: bool,
        via_like: bool,
    ) -> None:
        """Record a first receipt (including the publisher's own, hops=0)."""
        self.log.log_delivery(
            self.schedule.index_of(copy.item.item_id),
            node_id,
            self.now,
            copy.hops,
            copy.dislikes,
            liked,
            via_like,
        )

    def log_duplicate(self) -> None:
        """Record a duplicate receipt (dropped per SIR)."""
        self.log.log_duplicate()

    def log_duplicates(self, n: int) -> None:
        """Record *n* duplicate receipts at once (batched delivery path)."""
        self.log.log_duplicates(n)

    def log_deliveries(
        self,
        node_id: int,
        item_ids: list[int],
        hops: list[int],
        dislikes: list[int],
        liked: list[bool],
        via_like: list[bool],
    ) -> None:
        """Record one node's first receipts of this cycle in bulk.

        Column-aligned lists in arrival order; produces exactly the rows
        the per-receipt :meth:`log_delivery` calls would.
        """
        index_map = self.schedule.index_map
        self.log.log_deliveries(
            [index_map[iid] for iid in item_ids],
            node_id,
            self.now,
            hops,
            dislikes,
            liked,
            via_like,
        )

    def log_forwards(
        self,
        node_id: int,
        item_ids: list[int],
        hops: list[int],
        liked: list[bool],
        n_targets: list[int],
    ) -> None:
        """Record one node's forwarding actions of this cycle in bulk."""
        index_map = self.schedule.index_map
        self.log.log_forwards(
            [index_map[iid] for iid in item_ids],
            node_id,
            self.now,
            hops,
            liked,
            n_targets,
        )

    def log_forward(
        self,
        node_id: int,
        copy: ItemCopy,
        liked: bool,
        n_targets: int,
    ) -> None:
        """Record one forwarding action with its realised fanout."""
        self.log.log_forward(
            self.schedule.index_of(copy.item.item_id),
            node_id,
            self.now,
            copy.hops,
            liked,
            n_targets,
        )

    # ------------------------------------------------------------------ #
    # observers                                                           #
    # ------------------------------------------------------------------ #

    def add_observer(self, fn: Observer) -> None:
        """Register a callback fired after every cycle: ``fn(engine, cycle)``."""
        self._observers.append(fn)

    # ------------------------------------------------------------------ #
    # the cycle loop                                                      #
    # ------------------------------------------------------------------ #

    def run(self, n_cycles: int) -> None:
        """Advance the simulation by *n_cycles* cycles."""
        for _ in range(n_cycles):
            self._run_cycle()

    def run_until_drained(self, max_extra: int = 200) -> int:
        """Run past the schedule until no item messages remain in flight.

        Returns the number of extra cycles executed.  Used by experiments to
        let dissemination complete after the last publication.
        """
        extra = 0
        while extra < max_extra:
            if self.now > self.schedule.last_cycle and self._pending_items == 0:
                break
            self._run_cycle()
            extra += 1
        return extra

    def _run_cycle(self) -> None:
        now = self.now
        self.transport.begin_cycle()
        if self.churn is not None:
            self.churn.apply(self, now)

        # batched delivery: buffer every item send of the cycle and flush
        # once; only safe when no per-message loss/delay draws exist
        batching = self._lossless and delivery_batching_enabled()
        self._buffering = batching

        # messages whose delay expires this cycle become deliverable
        inbox = self._future_inboxes.pop(now, {})
        if inbox:
            self._pending_items -= sum(len(v) for v in inbox.values())

        # publications (skipped silently if the source is dead under churn)
        for item in self.schedule.items_at(now):
            source = self.nodes.get(item.source)
            if source is not None and source.alive:
                source.publish(item, self, now)

        # gossip maintenance, fresh random order each cycle
        ids = self.alive_node_ids()
        self._order_rng.shuffle(ids)
        for nid in ids:
            node = self.nodes[nid]
            if node.alive:  # may have been killed by a same-cycle exchange
                node.begin_cycle(self, now)

        # item deliveries from the previous cycle
        delivery_ids = [nid for nid in inbox if nid in self.nodes]
        self._order_rng.shuffle(delivery_ids)
        if batching:
            nodes = self.nodes
            for nid in delivery_ids:
                node = nodes[nid]
                if node._alive:
                    node.receive_items(inbox[nid], self, now)
            self._buffering = False
            self._flush_item_sends()
        else:
            for nid in delivery_ids:
                node = self.nodes[nid]
                if not node.alive:
                    continue
                for _sender, copy, via_like in inbox[nid]:
                    node.receive_item(copy, via_like, self, now)

        for fn in self._observers:
            fn(self, now)

        self.now += 1
        self.cycles_run += 1

    # ------------------------------------------------------------------ #

    def pending_item_messages(self) -> int:
        """Item copies currently in flight (any future arrival cycle).

        O(1): maintained as a running counter by ``send_item`` and the
        cycle loop's inbox hand-over.
        """
        return self._pending_items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CycleEngine(nodes={len(self.nodes)}, now={self.now}, "
            f"pending={self.pending_item_messages()})"
        )
