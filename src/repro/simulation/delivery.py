"""Batched per-cycle item delivery (the dissemination hot path).

PR 1 made similarity scoring cheap; the remaining per-message cost of a BEEP
copy is the dissemination machinery itself — envelope construction, traffic
accounting, future-inbox bookkeeping, duplicate suppression and event
logging, each paid once per copy.  This module hosts the batched delivery
subsystem that amortises those costs per *cycle* instead:

* the engine buffers every item send of a cycle and flushes them in one bulk
  pass (one traffic-stats update, one future-inbox extension run, no
  envelopes) — see :meth:`repro.simulation.engine.CycleEngine._flush_item_sends`;
* nodes receive their whole cycle inbox at once
  (:meth:`repro.simulation.node.BaseNode.receive_items`), which lets WHATSUP
  resolve duplicate suppression with one pass over the batch
  (:func:`split_first_receipts`), apply profile updates in a single sweep,
  and score every disliked item of the cycle against the same packed RPS
  pool (:func:`repro.core.similarity.wup_items_vs_pool`).

The batch path engages only under a lossless unit-delay transport (where no
per-message loss draws exist) and is **bitwise-identical** to the scalar
path: same RNG consumption order, same event-log rows, same profiles and
views at fixed seeds.  ``REPRO_BATCH_DELIVERY=0`` (or
:func:`set_delivery_batching`) restores the scalar one-envelope-at-a-time
pipeline everywhere — the equivalence benchmarks and the CI scalar leg run
both paths and assert identical outcomes.

This gate composes freely with the array-state gate
(:mod:`repro.core.arraystate`): the delivery pipeline only touches node
state through the view/profile facades, so any pipeline × state-plane
combination produces the same bits (asserted by the churn equivalence
grid in ``tests/test_delivery_batch.py``).  It also composes with the
process-sharded engine (:mod:`repro.simulation.sharding`): each shard
worker consults the gate for its own sub-cycle — batched and scalar
delivery produce identical bits at any fixed shard count, because local
sends reach the future inboxes in the same relative order on either
path and cross-shard sends are ordered by the mailbox protocol alone.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.core.gates import env_flag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.news import ItemCopy

__all__ = [
    "delivery_batching_enabled",
    "set_delivery_batching",
    "delivery_batching",
    "split_first_receipts",
]

_delivery_enabled = env_flag("REPRO_BATCH_DELIVERY")


def delivery_batching_enabled() -> bool:
    """Whether the batched per-cycle delivery path is active."""
    return _delivery_enabled


def set_delivery_batching(enabled: bool) -> bool:
    """Enable/disable delivery batching; returns the previous setting.

    The scalar fallback produces identical outcomes (views, profiles,
    delivery logs) at fixed seeds; the switch exists for the equivalence
    benchmarks, the CI scalar leg and debugging.  Prefer the
    :func:`delivery_batching` context manager outside hot paths — it
    restores the previous setting even when the guarded block raises.
    """
    global _delivery_enabled
    previous = _delivery_enabled
    _delivery_enabled = bool(enabled)
    return previous


@contextmanager
def delivery_batching(enabled: bool):
    """Context manager pinning the delivery-batching gate, restoring on exit.

    The restore-guarded form of :func:`set_delivery_batching`: one failing
    test inside the block can no longer leak a scalar/batch pipeline
    setting into the rest of the suite.
    """
    previous = set_delivery_batching(enabled)
    try:
        yield
    finally:
        set_delivery_batching(previous)


def split_first_receipts(
    deliveries: "list[tuple[int, ItemCopy, bool]]",
    seen: set[int],
) -> "tuple[list[tuple[ItemCopy, bool]], int]":
    """Partition one node's cycle batch into first receipts and duplicates.

    Implements the SIR duplicate rule for a whole per-cycle batch: a message
    is a *first receipt* when its item is neither in *seen* nor delivered
    earlier in the same batch.  *seen* is updated in place with the fresh
    item ids.

    Returns ``(fresh, n_duplicates)`` where *fresh* is the ``(copy,
    via_like)`` list in arrival order — exactly the receipts the scalar
    per-message path would have processed, in the same order.

    The mask is resolved with C-level set membership rather than a packed
    ``np.unique`` first-occurrence pass: the numpy formulation was measured
    at 4-8× *slower* across batch sizes 20-120 (the id extraction is a
    Python-level attribute walk either way, and ``unique`` sorts), so the
    set sweep — one batch-level call instead of one engine round-trip per
    message — is the whole win here.  Duplicates never reach the node
    callback or the engine: they are counted in one
    :meth:`~repro.simulation.events.DisseminationLog.log_duplicates` update.
    """
    n = len(deliveries)
    fresh = []
    for _sender, copy, via_like in deliveries:
        iid = copy.item.item_id
        if iid not in seen:
            seen.add(iid)
            fresh.append((copy, via_like))
    return fresh, n - len(fresh)
