"""Cycle-based simulation substrate.

The paper evaluates WHATSUP with cycle-based simulations ("our simulations
use the duration of a gossip cycle as a time unit", Section IV-D).  This
subpackage provides the engine those experiments run on:

* :mod:`repro.simulation.events` — compact struct-of-arrays logs of every
  first delivery and every forwarding action, from which all user metrics
  (precision/recall/F1) and dissemination analyses (hops, dislike counters,
  popularity) are derived after the run;
* :mod:`repro.simulation.schedule` — the publication schedule mapping cycles
  to the news items injected at that cycle;
* :mod:`repro.simulation.node` — the protocol-node interface every system
  under test implements (WHATSUP, the CF baselines, homogeneous gossip,
  cascading);
* :mod:`repro.simulation.engine` — the engine proper: per cycle it runs
  gossip maintenance, injects publications, and delivers item messages
  enqueued during the previous cycle (one hop per cycle);
* :mod:`repro.simulation.delivery` — the batched delivery subsystem: the
  ``REPRO_BATCH_DELIVERY`` gate and the per-cycle batch helpers the engine
  and nodes share (bitwise-identical to the scalar path at fixed seeds);
* :mod:`repro.simulation.churn` — node kill/rejoin injection for the
  robustness extension experiments;
* :mod:`repro.simulation.sharding` — the process-sharded scale-out engine:
  ``REPRO_SHARDS=N`` partitions the population across worker processes
  with per-shard deterministic RNG streams, shared-memory state arenas
  and columnar shard-boundary mailboxes flushed at cycle barriers.
"""

from repro.simulation.churn import ChurnModel
from repro.simulation.delivery import (
    delivery_batching_enabled,
    set_delivery_batching,
)
from repro.simulation.engine import CycleEngine
from repro.simulation.events import DisseminationLog
from repro.simulation.node import BaseNode
from repro.simulation.schedule import PublicationSchedule
# NOTE: the `sharding(n)` context manager is deliberately not re-exported
# here — binding it as `repro.simulation.sharding` would shadow the
# submodule of the same name; import it from repro.simulation.sharding
from repro.simulation.sharding import (
    ShardedCycleEngine,
    make_engine,
    set_shard_count,
    shard_count,
)

__all__ = [
    "BaseNode",
    "ChurnModel",
    "CycleEngine",
    "DisseminationLog",
    "PublicationSchedule",
    "ShardedCycleEngine",
    "delivery_batching_enabled",
    "make_engine",
    "set_delivery_batching",
    "set_shard_count",
    "shard_count",
]
