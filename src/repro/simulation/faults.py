"""Deterministic fault injection for the process-sharded engine.

WHATSUP's headline robustness claim — the gossip protocols tolerate loss
and churn (Section V-D runs on PlanetLab under heterogeneous losses and
overloaded nodes) — is exercised by the transports and the churn models.
This module brings the same discipline to the one layer that previously
had no failure story: the sharded runtime itself.  A
:class:`FaultSchedule` injects *infrastructure* faults — worker crashes,
worker stalls, mailbox chunk drops/duplications/delays/corruption, arena
corruption — at chosen ``(cycle, shard, phase)`` points, and the
self-healing machinery in :mod:`repro.simulation.sharding` must absorb
them (see ARCHITECTURE.md, "Fault plane & recovery").

Determinism contract
--------------------

Every fault fires at an explicitly scheduled point, and probabilistic
events draw from per-shard generators derived with the same
:class:`numpy.random.SeedSequence` spawning as every other stream in the
tree — so the same ``(seed, schedule)`` pair produces bitwise-identical
runs, including the crashes, the recoveries and the final state.  With
``REPRO_FAULTS`` unset nothing in this module is consulted on any hot
path.

Schedule format
---------------

``REPRO_FAULTS`` (or :func:`set_fault_schedule`) accepts either

* a JSON object ``{"seed": 0, "events": [{"kind": "crash", "cycle": 5,
  "shard": 1, "phase": "q"}, ...]}`` — inline or as a file path; or
* a compact DSL: ``kind@cycle:shard[:phase[:param]]`` joined by commas,
  e.g. ``crash@5:1:q,stall@8:2:open:0.2,drop_chunk@3:0:i``.

Phases name the worker-side injection points of one cycle:
``open`` (before sub-cycle A), then the three mailbox barriers
``q`` / ``r`` / ``i`` (requests, replies, items).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager, suppress
from dataclasses import dataclass, field

from repro.core.gates import env_raw

__all__ = [
    "FAULT_KINDS",
    "PHASES",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "InjectedFailure",
    "fault_schedule",
    "set_fault_schedule",
    "faults",
]

#: recognised fault kinds; "crash"/"stall"/"corrupt_arena" hit a worker at
#: a phase boundary, the "*_chunk" kinds hit individual mailbox chunks in
#: flight at a barrier
FAULT_KINDS = frozenset(
    {
        "crash",
        "stall",
        "corrupt_arena",
        "drop_chunk",
        "dup_chunk",
        "delay_chunk",
        "corrupt_chunk",
    }
)

#: worker-side injection points within one cycle, in execution order
PHASES = ("open", "q", "r", "i")

_CHUNK_KINDS = frozenset({"drop_chunk", "dup_chunk", "delay_chunk", "corrupt_chunk"})


class InjectedFailure(Exception):
    """A scheduled fault that a worker must surface to its supervisor."""

    def __init__(self, kind: str, cycle: int, shard: int) -> None:
        super().__init__(f"injected {kind} at cycle {cycle} on shard {shard}")
        self.kind = kind
        self.cycle = cycle
        self.shard = shard


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    cycle / shard:
        The injection point: the shard's engine clock when the fault
        fires (``cycle`` is the worker's ``cycles_run`` tag).
    phase:
        Injection point within the cycle (:data:`PHASES`); chunk faults
        apply to the barrier of that phase (``q``/``r``/``i``).
    param:
        Kind-specific knob: stall/delay duration in seconds (stall
        default 0.05), otherwise unused.
    prob:
        When < 1, the event fires with this probability per matching
        point, drawn from the schedule's seeded per-shard stream.
    """

    kind: str
    cycle: int
    shard: int
    phase: str = "q"
    param: float = 0.0
    prob: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.phase not in PHASES:
            raise ValueError(f"unknown fault phase {self.phase!r}")
        if self.cycle < 0 or self.shard < 0:
            raise ValueError("fault cycle/shard must be >= 0")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError("fault prob must be within [0, 1]")

    @property
    def key(self) -> tuple:
        """Stable identity used for replay suppression of fatal events."""
        return (self.kind, self.cycle, self.shard, self.phase)


@dataclass
class FaultSchedule:
    """A seeded, explicit list of fault events.

    The schedule is immutable in use; workers receive it pickled at init
    and consult only their own shard's events through a
    :class:`FaultInjector`.
    """

    events: list[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.events = sorted(
            self.events, key=lambda e: (e.cycle, e.shard, PHASES.index(e.phase), e.kind)
        )

    def for_shard(self, shard: int) -> list[FaultEvent]:
        """The events targeting *shard*, in firing order."""
        return [e for e in self.events if e.shard == shard]

    def to_spec(self) -> str:
        """Serialise back to the JSON spec form."""
        return json.dumps(
            {
                "seed": self.seed,
                "events": [
                    {
                        "kind": e.kind,
                        "cycle": e.cycle,
                        "shard": e.shard,
                        "phase": e.phase,
                        "param": e.param,
                        "prob": e.prob,
                    }
                    for e in self.events
                ],
            }
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a JSON object, a JSON file path, or the compact DSL."""
        text = spec.strip()
        if not text:
            return cls([])
        if not text.startswith("{") and os.path.isfile(text):
            with open(text, "r", encoding="utf-8") as fh:
                text = fh.read().strip()
        if text.startswith("{"):
            data = json.loads(text)
            events = [
                FaultEvent(
                    kind=str(e["kind"]),
                    cycle=int(e["cycle"]),
                    shard=int(e["shard"]),
                    phase=str(e.get("phase", "q")),
                    param=float(e.get("param", 0.0)),
                    prob=float(e.get("prob", 1.0)),
                )
                for e in data.get("events", [])
            ]
            return cls(events, seed=int(data.get("seed", 0)))
        events = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, point = part.partition("@")
            bits = point.split(":")
            if len(bits) < 2:
                raise ValueError(
                    f"bad fault spec {part!r}: need kind@cycle:shard[:phase[:param]]"
                )
            events.append(
                FaultEvent(
                    kind=kind.strip(),
                    cycle=int(bits[0]),
                    shard=int(bits[1]),
                    phase=bits[2] if len(bits) > 2 else "q",
                    param=float(bits[3]) if len(bits) > 3 else 0.0,
                )
            )
        return cls(events)


# --------------------------------------------------------------------------- #
# module gate                                                                 #
# --------------------------------------------------------------------------- #


def _env_schedule() -> FaultSchedule | None:
    raw = env_raw("REPRO_FAULTS").strip()
    if not raw:
        return None
    return FaultSchedule.parse(raw)


_schedule: FaultSchedule | None = _env_schedule()


def fault_schedule() -> FaultSchedule | None:
    """The active fault schedule, or ``None`` (the default: no faults)."""
    return _schedule


def set_fault_schedule(
    schedule: "FaultSchedule | str | None",
) -> FaultSchedule | None:
    """Install a fault schedule; returns the previous one.

    Accepts a :class:`FaultSchedule`, a spec string (JSON/DSL/file path),
    or ``None`` to disable injection.  Consulted when a sharded engine is
    *constructed*; running engines keep the schedule they started with.
    """
    global _schedule
    previous = _schedule
    if isinstance(schedule, str):
        schedule = FaultSchedule.parse(schedule)
    _schedule = schedule
    return previous


@contextmanager
def faults(schedule: "FaultSchedule | str | None"):
    """Context manager pinning the fault schedule, restoring on exit."""
    previous = set_fault_schedule(schedule)
    try:
        yield
    finally:
        set_fault_schedule(previous)


# --------------------------------------------------------------------------- #
# the worker-side injector                                                    #
# --------------------------------------------------------------------------- #


class FaultInjector:
    """Fires one shard's scheduled faults at its engine's phase points.

    Parameters
    ----------
    schedule / shard:
        The full schedule and the owning shard; only this shard's events
        are retained.
    suppressed:
        Event keys that already fired in a previous incarnation of this
        worker — a respawned worker must not replay its own crash.
    notify:
        Callback invoked with an event's :attr:`FaultEvent.key` just
        before a *fatal* event executes, so the supervisor can add it to
        the suppression set of the next respawn even when the event kills
        the process before any reply is sent.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        shard: int,
        suppressed: "set[tuple] | frozenset[tuple]" = frozenset(),
        notify=None,
    ) -> None:
        self.shard = int(shard)
        self.seed = schedule.seed
        self._notify = notify
        self._fired: set[tuple] = set(suppressed)
        self._events = [
            e for e in schedule.for_shard(self.shard) if e.key not in self._fired
        ]
        self._rng = None  # lazily spawned; most schedules are prob=1

    def _roll(self, event: FaultEvent) -> bool:
        if event.prob >= 1.0:
            return True
        if self._rng is None:
            from repro.utils.rng import spawn_generator

            self._rng = spawn_generator(self.seed, f"faults/shard{self.shard}")
        return bool(self._rng.random() < event.prob)

    def _take(self, cycle: int, phase: str, kinds: frozenset) -> list[FaultEvent]:
        hits = []
        for event in self._events:
            if (
                event.cycle == cycle
                and event.phase == phase
                and event.kind in kinds
                and event.key not in self._fired
                and self._roll(event)
            ):
                hits.append(event)
        for event in hits:
            self._fired.add(event.key)
        return hits

    # -- phase-boundary faults (crash / stall / corrupt_arena) -------------- #

    def at_phase(self, cycle: int, phase: str) -> None:
        """Fire any worker-level fault scheduled at ``(cycle, phase)``.

        ``stall`` sleeps and continues; ``crash`` hard-exits the process
        (simulating SIGKILL — no cleanup, peers see EOF); and
        ``corrupt_arena`` raises :class:`InjectedFailure` after the
        caller-provided scribbler has damaged the arena, modelling
        checksum-detected state corruption.
        """
        fatal = frozenset({"crash", "stall", "corrupt_arena"})
        for event in self._take(cycle, phase, fatal):
            if self._notify is not None:
                with suppress(Exception):  # parent went away
                    self._notify(event.key)
            if event.kind == "stall":
                import time

                time.sleep(event.param if event.param > 0 else 0.05)
            elif event.kind == "crash":
                os._exit(17)
            else:  # corrupt_arena: caller scribbles, supervisor restores
                raise InjectedFailure(event.kind, cycle, self.shard)

    # -- chunk faults (consulted by the mailbox fabric) ---------------------- #

    def chunk_fault(self, cycle: int, phase: str) -> "str | None":
        """The chunk fault to apply to the next outgoing chunk, if any.

        Returns one of ``"drop"`` / ``"dup"`` / ``"delay"`` /
        ``"corrupt"`` (with :attr:`last_param` holding the event's knob),
        or ``None``.  Each scheduled chunk event fires exactly once.
        """
        hits = self._take(cycle, phase, _CHUNK_KINDS)
        if not hits:
            return None
        event = hits[0]
        # one chunk fault per send point keeps the injection deterministic
        for extra in hits[1:]:
            self._fired.discard(extra.key)
        self.last_param = event.param
        return event.kind[: -len("_chunk")]

    @property
    def fired(self) -> frozenset:
        """Keys of events that have fired (includes the suppression set)."""
        return frozenset(self._fired)
