"""Process-sharded cycle engine over the shared-memory array plane.

WHATSUP's pitch is horizontal scale — every user is a node and the gossip
fabric grows with the population — yet a :class:`~repro.simulation.engine.
CycleEngine` run occupies exactly one CPython core.  This module hosts the
**scale-out** lever the array-backed state plane (PR 4) was built for:
``REPRO_SHARDS=N`` partitions the node population across *N* worker
processes and runs each cycle as a sequence of parallel sub-cycles
synchronised at barriers.

Layout
------

* The population is partitioned by ``node_id % N`` (:func:`shard_of`) —
  stable under mid-run joins, no routing table.
* Each worker owns its shard's node objects outright and drives them with a
  :class:`_ShardEngine` — a :class:`CycleEngine` subclass whose routing
  methods intercept cross-shard traffic.  Intra-shard gossip and item
  delivery run exactly the single-process code paths.
* Each shard's :class:`~repro.gossip.views.ArrayView` numeric state blocks
  are re-homed into a per-shard :mod:`multiprocessing.shared_memory` arena
  (:meth:`ArrayView.rehome`): the native state kernels receive the mapped
  addresses unchanged, and the parent can read any view's ``(ids, ts,
  wire)`` columns zero-copy (:meth:`ShardedCycleEngine.view_columns`)
  without a pickle round-trip.  ``REPRO_SHARD_SHM=0`` (or an unavailable
  ``shared_memory``) degrades to private memory and inline pipe traffic
  with identical outcomes — the fallback the CI leg pins.
* Cross-shard traffic travels in **columnar shard-boundary mailboxes**:
  per-destination row buffers accumulated during a sub-cycle and flushed
  at its barrier as one pickled blob per (source, destination) pair —
  payload sharing within a flush is preserved by the single pickle, so a
  popular profile snapshot crosses a boundary once per cycle, not once
  per message.  Blobs are staged through per-pair shared-memory segments
  (pipes carry only tiny descriptors); without shared memory they travel
  inline in bounded chunks.

The cycle barrier protocol
--------------------------

A single-process cycle interleaves gossip request, reply and item delivery
per node.  Under sharding the same work is grouped into three barrier-
separated sub-cycles so that every cross-shard exchange still *completes
within its cycle*::

    worker 0                 worker 1                  (lock-step, no
    ─────────────────────    ─────────────────────      parent in the
    A: churn, publications,  A: churn, publications,    data path)
       local gossip;            local gossip;
       remote requests  ──────▶ mailbox ──────▶ ...
    ══════════ barrier 1: request mailboxes flush ══════════
    B: serve remote          B: serve remote
       requests, emit   ──────▶ replies ──────▶ ...
    ══════════ barrier 2: reply mailboxes flush ════════════
    C: apply replies;        C: apply replies;
       deliver item inbox;      deliver item inbox;
       remote item sends ─────▶ mailbox ──────▶ ...
    ══════════ barrier 3: item mailboxes flush ═════════════
       ingest remote items (arrive next cycle), cycle ends

Item copies sent in cycle *t* arrive in cycle *t + 1* on either path, so
cross-shard item delivery is semantically identical to the single-process
pipeline.  Cross-shard gossip request/reply pairs also complete within
their cycle; only the *interleaving order* differs from the
single-process engine (local exchanges first, then remote requests in
shard order, then replies), which is why shard counts above 1 are
**deterministic and seed-stable** but not bitwise-comparable across
different shard counts.

Determinism contract
--------------------

* ``REPRO_SHARDS=1`` (the default) never constructs any of this machinery:
  :func:`make_engine` returns a plain :class:`CycleEngine`, bitwise
  identical to every previous release at fixed seeds.
* For any fixed ``(seed, N)``, repeated runs produce identical outcomes —
  per-shard engine/transport/churn streams are derived with the same
  :class:`numpy.random.SeedSequence` spawning mechanism as every other
  stream in the tree (:class:`ShardRngStreams` salts the stream label
  with the shard index), every mailbox is drained in (source shard, send
  order) order, and node-private generators travel with their nodes.
* Sharding engages only under lossless unit-delay transports (the paper's
  simulation setting); lossy/latency transports fall back to the
  single-process engine with a warning — their per-message RNG draws have
  no deterministic cross-process ordering.

The parent process never touches node state while a run is in flight; it
re-adopts it lazily (:meth:`ShardedCycleEngine.collect`) when ``nodes`` /
``stats`` / ``log`` are read, merging per-worker traffic counters and
dissemination logs in shard order.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
import traceback
import warnings
import zlib
from contextlib import contextmanager, suppress
from typing import Iterable

import multiprocessing
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from repro.core.gates import env_choice, env_flag, env_float, env_int
from repro.network.message import MessageKind, payload_wire_size
from repro.network.stats import RecoveryStats, TrafficStats
from repro.network.transport import PerfectTransport, Transport
from repro.simulation.delivery import delivery_batching_enabled
from repro.simulation.engine import CycleEngine
from repro.simulation.events import DisseminationLog, FaultLog
from repro.simulation.faults import FaultInjector, InjectedFailure, fault_schedule
from repro.simulation.node import BaseNode
from repro.simulation.schedule import PublicationSchedule
from repro.simulation.wire import (
    LinkDecoder,
    LinkEncoder,
    set_wire_tier,
    shard_wire,
    wire_tier,
)
from repro.utils.exceptions import SimulationError
from repro.utils.rng import RngStreams, spawn_generator

__all__ = [
    "shard_count",
    "set_shard_count",
    "sharding",
    "shard_shm_enabled",
    "set_shard_shm",
    "shard_shm",
    "wire_tier",
    "set_wire_tier",
    "shard_wire",
    "shard_knobs",
    "set_shard_knobs",
    "shard_knob_overrides",
    "shard_of",
    "ShardRngStreams",
    "ShardedCycleEngine",
    "PeerLostError",
    "PeerStalledError",
    "make_engine",
]


_n_shards = env_int("REPRO_SHARDS", 1, floor=1)

_shm_enabled = env_flag("REPRO_SHARD_SHM")

#: per-(source, destination) shared-memory mailbox segment size; blobs
#: larger than a segment cross in several staged chunks
_MAILBOX_BYTES = env_int("REPRO_SHARD_MAILBOX_BYTES", 1 << 20, floor=64 * 1024)

#: inline chunk size when shared memory is off — small enough that a
#: stop-and-wait window of one chunk can never fill an OS pipe buffer
#: (which would deadlock two workers mid-send)
_INLINE_CHUNK = 32 * 1024

#: parent-side timeout waiting on a worker reply, seconds
_CTRL_TIMEOUT = env_float("REPRO_SHARD_TIMEOUT", 600.0)

#: total per-barrier deadline on the worker-to-worker chunk exchange; the
#: old protocol waited forever — this bounds a wedged barrier instead
_EXCHANGE_TIMEOUT = env_float("REPRO_SHARD_EXCHANGE_TIMEOUT", 600.0)

#: bounded chunk retransmissions per peer within one barrier
_EXCHANGE_RETRIES = env_int("REPRO_SHARD_RETRIES", 4, floor=1)

#: first retransmission/heartbeat wait, seconds; doubles per idle round
_BACKOFF_BASE = env_float("REPRO_SHARD_BACKOFF", 5.0, floor=0.005)

#: synchronized worker-state checkpoint cadence, in cycles (supervised runs)
_CKPT_EVERY = env_int("REPRO_SHARD_CHECKPOINT", 8, floor=1)

#: degraded-mode offline window after a recovery, cycles (0 = one
#: checkpoint interval)
_DEGRADED_FOR = env_int("REPRO_SHARD_DEGRADED", 0, floor=0)

#: rollback-replay attempts before a supervised run gives up
_MAX_RECOVERIES = env_int("REPRO_SHARD_MAX_RECOVERIES", 8, floor=1)

_ARENA_ALIGN = 64

_RECOVERY_MODES = ("off", "restore", "degraded", "auto")


def _env_recovery() -> str:
    return env_choice("REPRO_SHARD_RECOVERY", "auto", _RECOVERY_MODES)


#: supervision/recovery policy override; ``None`` defers to the
#: ``REPRO_SHARD_RECOVERY`` env var, re-read at engine construction
_RECOVERY_MODE: str | None = None

#: pin each worker to one CPU on multi-core hosts (sharded engines only)
_PIN_CPUS = env_flag("REPRO_SHARD_PIN_CPUS", default=False)


class _PeerFailure(Exception):
    """A worker could not complete a barrier with one or more peers."""

    def __init__(self, shard: int, peers, tag, reason: str) -> None:
        super().__init__(
            f"shard {shard} barrier {tag!r}: {reason} (peers {sorted(peers)})"
        )
        self.shard = shard
        self.peers = sorted(peers)
        self.tag = tag


class PeerLostError(_PeerFailure):
    """A peer worker's pipe closed mid-barrier (the process died)."""

    def __init__(self, shard: int, peer: int, tag) -> None:
        super().__init__(shard, [peer], tag, "peer connection lost")


class PeerStalledError(_PeerFailure):
    """A peer exceeded the barrier deadline or the retransmission budget."""

    def __init__(self, shard: int, peers, tag, reason: str = "deadline exceeded") -> None:
        super().__init__(shard, peers, tag, reason)


def shard_count() -> int:
    """The configured shard count (1 = single-process, the default)."""
    return _n_shards


def set_shard_count(n: int) -> int:
    """Set the shard count; returns the previous setting.

    Consulted when an engine is *constructed* (:func:`make_engine`);
    running engines are unaffected.  Prefer the :func:`sharding` context
    manager outside hot paths — it restores the previous setting even
    when the guarded block raises.
    """
    global _n_shards
    previous = _n_shards
    _n_shards = max(1, int(n))
    return previous


@contextmanager
def sharding(n: int):
    """Context manager pinning the shard count, restoring on exit."""
    previous = set_shard_count(n)
    try:
        yield
    finally:
        set_shard_count(previous)


def shard_shm_enabled() -> bool:
    """Whether shared-memory arenas/mailboxes are used between shards."""
    return _shm_enabled


def set_shard_shm(enabled: bool) -> bool:
    """Enable/disable shared-memory staging; returns the previous setting.

    With the gate off, state blocks stay in private memory and mailbox
    blobs travel inline through the worker pipes in bounded chunks —
    outcomes are identical either way (the fallback tests assert this).
    """
    global _shm_enabled
    previous = _shm_enabled
    _shm_enabled = bool(enabled)
    return previous


@contextmanager
def shard_shm(enabled: bool):
    """Context manager pinning the shared-memory gate, restoring on exit."""
    previous = set_shard_shm(enabled)
    try:
        yield
    finally:
        set_shard_shm(previous)


def shard_of(node_id: int, n_shards: int) -> int:
    """The shard owning *node_id*: a stable modulo partition.

    Stable under mid-run joins (no routing table to rebalance) and
    independent of insertion order, so any process can route a message
    from the id alone.
    """
    return int(node_id) % int(n_shards)


class ShardRngStreams(RngStreams):
    """Per-shard named random streams, independent across shards.

    The worker-side twin of :class:`~repro.utils.rng.RngStreams`: stream
    labels are salted with the shard index before the
    :class:`numpy.random.SeedSequence` derivation, so
    ``ShardRngStreams(seed, 0).get("engine-order")`` and shard 1's stream
    of the same name are statistically independent, while any fixed
    ``(seed, shard, label)`` triple reproduces the same stream in every
    run at every shard count.
    """

    def __init__(self, seed: int, shard: int) -> None:
        super().__init__(seed)
        self.shard = int(shard)

    def _label(self, label: str) -> str:
        return f"shard{self.shard}/{label}"

    def get(self, label: str) -> np.random.Generator:
        if label not in self._streams:
            self._streams[label] = spawn_generator(self.seed, self._label(label))
        return self._streams[label]

    def fresh(self, label: str) -> np.random.Generator:
        return spawn_generator(self.seed, self._label(label))


# --------------------------------------------------------------------------- #
# serialization helpers                                                       #
# --------------------------------------------------------------------------- #


def _dumps(obj: object) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _loads(blob: bytes) -> object:
    return pickle.loads(blob)


#: per-link interning table bound: when a link has interned this many
#: distinct snapshots, both ends reset it (their tables grow in lock-step
#: — one entry per first-crossing uid — so the same size rule fires at
#: the same cycle on both sides)
_INTERN_CAP = env_int("REPRO_SHARD_INTERN_CAP", 20000, floor=256)


# --------------------------------------------------------------------------- #
# runtime knobs                                                               #
# --------------------------------------------------------------------------- #

#: knob name -> (module global, env-parity normalizer).  One table so the
#: programmatic path (``RunConfig.apply()``) and the env layer agree on
#: names, floors, and rounding; the setters rebind the module globals the
#: engine and tests read (monkeypatching ``_MAILBOX_BYTES`` etc. directly
#: keeps working).
_KNOB_GLOBALS = {
    "mailbox_bytes": ("_MAILBOX_BYTES", lambda v: max(64 * 1024, int(v))),
    "ctrl_timeout": ("_CTRL_TIMEOUT", float),
    "exchange_timeout": ("_EXCHANGE_TIMEOUT", float),
    "retries": ("_EXCHANGE_RETRIES", lambda v: max(1, int(v))),
    "backoff": ("_BACKOFF_BASE", lambda v: max(0.005, float(v))),
    "checkpoint_every": ("_CKPT_EVERY", lambda v: max(1, int(v))),
    "degraded_window": ("_DEGRADED_FOR", lambda v: max(0, int(v))),
    "max_recoveries": ("_MAX_RECOVERIES", lambda v: max(1, int(v))),
    "intern_cap": ("_INTERN_CAP", lambda v: max(256, int(v))),
    "recovery": ("_RECOVERY_MODE", None),
    "pin_cpus": ("_PIN_CPUS", bool),
}


def _norm_recovery(value) -> str | None:
    if value is None:  # defer to the env var again
        return None
    raw = str(value).strip().lower()
    if raw not in _RECOVERY_MODES:
        raise ValueError(
            f"unknown recovery mode {value!r} (expected one of {_RECOVERY_MODES})"
        )
    return raw


_KNOB_GLOBALS["recovery"] = ("_RECOVERY_MODE", _norm_recovery)


def shard_knobs() -> dict:
    """The current sharding runtime knobs, by their programmatic names."""
    g = globals()
    return {name: g[attr] for name, (attr, _) in _KNOB_GLOBALS.items()}


def set_shard_knobs(**knobs) -> dict:
    """Set sharding runtime knobs; returns the previous values of those set.

    Accepts any subset of :func:`shard_knobs` keys.  Values go through the
    same floors the env parsing applies (a mailbox below 64 KiB or an
    intern cap below 256 is clamped, not rejected).  Consulted at engine
    construction and, for supervision knobs, per supervised step — like
    the gate setters, running workers are unaffected until respawned.
    """
    g = globals()
    previous = {}
    for name, value in knobs.items():
        try:
            attr, norm = _KNOB_GLOBALS[name]
        except KeyError:
            raise ValueError(
                f"unknown sharding knob {name!r} "
                f"(expected one of {sorted(_KNOB_GLOBALS)})"
            ) from None
        previous[name] = g[attr]
        g[attr] = norm(value) if norm is not None else value
    return previous


@contextmanager
def shard_knob_overrides(**knobs):
    """Context manager pinning sharding knobs, restoring them on exit.

    The restore-guarded twin of :func:`set_shard_knobs` (lint rule RL003):
    tests and benchmarks that tighten a timeout or shrink a mailbox inside
    a block cannot leak the override into unrelated code, even when the
    guarded block raises.
    """
    previous = set_shard_knobs(**knobs)
    try:
        yield
    finally:
        set_shard_knobs(**previous)


def _stats_parts(stats: TrafficStats) -> dict:
    """Plain-dict reduction of a :class:`TrafficStats` (pickle-safe).

    The dataclass's counters are ``defaultdict`` instances with lambda
    factories, which cannot cross a pickle boundary; the parts can.
    """
    return {
        "sent": dict(stats.sent),
        "delivered": dict(stats.delivered),
        "dropped": dict(stats.dropped),
        "bytes_delivered": dict(stats.bytes_delivered),
    }


def _merge_stats_parts(stats: TrafficStats, parts: dict) -> None:
    for kind, v in parts["sent"].items():
        stats.sent[kind] += v
    for kind, v in parts["delivered"].items():
        stats.delivered[kind] += v
    for kind, v in parts["dropped"].items():
        stats.dropped[kind] += v
    for kind, v in parts["bytes_delivered"].items():
        stats.bytes_delivered[kind] += v


def _attach_shm(name: str):
    """Attach an existing shared-memory segment, tracker-quietly.

    The parent created the segment and owns its unlink.  Python 3.13's
    ``track=False`` keeps an attach out of the resource tracker entirely;
    on older versions the attach-side ``register`` is a no-op under the
    fork start method (the workers share the parent's tracker process, so
    the name is already enrolled once) and the parent's single unlink
    leaves the tracker cache clean.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _array_views_of(node: BaseNode):
    """Yield ``(attr, ArrayView)`` pairs of a node's gossip views."""
    from repro.gossip.views import ArrayView

    for attr in ("rps", "wup"):
        proto = getattr(node, attr, None)
        view = getattr(proto, "view", None)
        if isinstance(view, ArrayView):
            yield attr, view


class _ShardArena:
    """Bump allocator over one shard's shared-memory state segment.

    Hands out ``(3, alloc)`` ``int64`` blocks for
    :meth:`~repro.gossip.views.ArrayView.rehome`.  There is no ``free``:
    views that outgrow their block abandon it and fall back to private
    memory (growth beyond ``2·capacity + 8`` rows is a rare transient of
    oversized merges), which keeps the allocator a single offset.
    """

    def __init__(self, shm) -> None:
        self.shm = shm
        self.offset = 0

    def alloc_cols(self, alloc: int) -> tuple:
        """A zeroed block of *alloc* columns, or ``(None, -1)`` when full."""
        nbytes = 3 * 8 * alloc
        start = (self.offset + _ARENA_ALIGN - 1) // _ARENA_ALIGN * _ARENA_ALIGN
        if start + nbytes > self.shm.size:
            return None, -1
        block = np.frombuffer(
            self.shm.buf, dtype=np.int64, count=3 * alloc, offset=start
        ).reshape(3, alloc)
        self.offset = start + nbytes
        return block, start


# --------------------------------------------------------------------------- #
# the peer mailbox fabric                                                     #
# --------------------------------------------------------------------------- #


class _PeerLinks:
    """Worker-side mailbox fabric: one duplex pipe per peer shard, plus an
    optional shared-memory staging segment per direction.

    :meth:`exchange` implements one barrier: every worker ships one blob
    to every peer and returns when it holds every peer's blob and all of
    its own chunks are acknowledged.  The loop is event-driven
    (:func:`multiprocessing.connection.wait`), so a worker always keeps
    servicing incoming chunks while waiting for its own acknowledgements
    — the property that makes the barrier deadlock-free for arbitrary
    blob sizes.  Chunks from a *future* barrier (a fast peer may run
    ahead by up to two sub-cycles, never a full cycle) are acknowledged
    and stashed for that barrier's own :meth:`exchange` call.

    Unlike the first-generation protocol (which waited forever on a
    silent peer), every chunk now carries a sequence number and a CRC32,
    and the wait loop is deadline-bounded:

    * a CRC mismatch at the receiver triggers a NACK and a bounded
      re-request of the same chunk (corruption self-heals on the wire);
    * duplicate sequence numbers are re-acknowledged and dropped, so
      retransmissions and duplication faults are idempotent;
    * an idle wait retransmits the in-flight chunk with exponential
      backoff (a lost chunk or ack self-heals) and probes silent peers
      with a heartbeat — a peer inside its own exchange answers, which
      proves liveness without involving the parent;
    * a peer whose pipe reports EOF raises :class:`PeerLostError`
      immediately, and a peer silent past the total deadline (or past
      the retransmission budget) raises :class:`PeerStalledError` —
      both surface to the parent supervisor instead of hanging the run.
    """

    def __init__(
        self,
        shard: int,
        conns: dict,
        out_segs: dict,
        in_segs: dict,
        injector: "FaultInjector | None" = None,
        wire: dict | None = None,
    ):
        self.shard = shard
        self.conns = conns  # peer shard -> Connection
        self.out_segs = out_segs  # peer shard -> SharedMemory | absent
        self.in_segs = in_segs
        self._conn_src = {conn: peer for peer, conn in conns.items()}
        self._stash: dict = {}  # tag -> {src: [(bytes, last), ...]}
        self._rseq: dict = {}  # (src, tag) -> last in-order seq accepted
        self.shm_bytes = 0
        self.inline_bytes = 0
        self.chunk_retries = 0
        self.crc_failures = 0
        self.dup_chunks = 0
        self._reported = (0, 0, 0)
        self.injector = injector
        wire = wire or {}
        self.timeout = float(wire.get("timeout", _EXCHANGE_TIMEOUT))
        self.retries = int(wire.get("retries", _EXCHANGE_RETRIES))
        self.backoff = float(wire.get("backoff", _BACKOFF_BASE))

    def take_deltas(self) -> dict:
        """Self-healing counter deltas since the previous report."""
        cur = (self.chunk_retries, self.crc_failures, self.dup_chunks)
        prev = self._reported
        self._reported = cur
        return {
            "chunk_retries": cur[0] - prev[0],
            "crc_failures": cur[1] - prev[1],
            "dup_chunks": cur[2] - prev[2],
        }

    def _chunk_size(self, peer: int) -> int:
        seg = self.out_segs.get(peer)
        return seg.size if seg is not None else _INLINE_CHUNK

    def _transmit(
        self, peer: int, tag, seq: int, chunk: bytes, last: bool, fault=None
    ) -> None:
        """Ship one chunk (or apply a scheduled chunk fault to it).

        The CRC is always computed over the clean payload, so an injected
        corruption is guaranteed to be caught at the receiver.
        """
        conn = self.conns[peer]
        crc = zlib.crc32(chunk)
        if fault == "delay":
            param = getattr(self.injector, "last_param", 0.0)
            time.sleep(param if param > 0 else 0.02)
        seg = self.out_segs.get(peer)
        if seg is not None and len(chunk) <= seg.size:
            seg.buf[: len(chunk)] = chunk
            if fault == "corrupt" and len(chunk):
                seg.buf[0] = seg.buf[0] ^ 0xFF
            if fault != "drop":
                conn.send(("d", tag, seq, len(chunk), last, crc, None))
                if fault == "dup":
                    conn.send(("d", tag, seq, len(chunk), last, crc, None))
            self.shm_bytes += len(chunk)
        else:
            wire_chunk = chunk
            if fault == "corrupt" and len(chunk):
                wire_chunk = bytes([chunk[0] ^ 0xFF]) + chunk[1:]
            if fault != "drop":
                conn.send(("d", tag, seq, len(chunk), last, crc, wire_chunk))
                if fault == "dup":
                    conn.send(("d", tag, seq, len(chunk), last, crc, wire_chunk))
            self.inline_bytes += len(chunk)

    def exchange(self, tag, outgoing: dict) -> list:
        """Run one barrier; returns ``[(src_shard, blob), ...]`` sorted."""
        peers = sorted(self.conns)
        if not peers:
            return []
        chunks = {}
        for peer in peers:
            blob = outgoing.get(peer, b"")
            size = self._chunk_size(peer)
            chunks[peer] = [
                blob[i : i + size] for i in range(0, len(blob), size)
            ] or [b""]
        bufs = {peer: [] for peer in peers}
        need_recv = set(peers)
        inflight: dict = {peer: None for peer in peers}  # seq in flight

        # drain chunks a fast peer already pushed for this barrier
        for src, held in self._stash.pop(tag, {}).items():
            for data, last in held:
                bufs[src].append(data)
                if last:
                    need_recv.discard(src)

        cycle, phase = (tag[0], tag[1]) if isinstance(tag, tuple) else (tag, "q")
        injector = self.injector

        def send_next(peer: int) -> None:
            seq = inflight[peer]
            seq = 0 if seq is None else seq + 1
            if seq >= len(chunks[peer]):
                inflight[peer] = None
                return
            fault = None
            if injector is not None:
                fault = injector.chunk_fault(cycle, phase)
            self._transmit(
                peer, tag, seq, chunks[peer][seq], seq == len(chunks[peer]) - 1, fault
            )
            inflight[peer] = seq

        # stop-and-wait per peer: at most one unacknowledged chunk in
        # flight, so a retransmission can never overwrite staged bytes a
        # receiver has yet to read
        acked = {peer: -1 for peer in peers}
        for peer in peers:
            send_next(peer)

        conns = list(self.conns.values())
        deadline = time.monotonic() + self.timeout
        resends = {peer: 0 for peer in peers}
        idle = 0
        while need_recv or any(s is not None for s in inflight.values()):
            now = time.monotonic()
            if now >= deadline:
                stalled = sorted(
                    set(need_recv) | {p for p in peers if inflight[p] is not None}
                )
                raise PeerStalledError(self.shard, stalled, tag)
            wait_for = min(self.backoff * (2 ** min(idle, 6)), deadline - now)
            ready = _conn_wait(conns, wait_for)
            if not ready:
                idle += 1
                # the in-flight chunk (or its ack) may be lost: bounded
                # retransmission with exponential backoff
                for peer in peers:
                    seq = inflight[peer]
                    if seq is None:
                        continue
                    if resends[peer] >= self.retries:
                        raise PeerStalledError(
                            self.shard, [peer], tag, "retransmission budget exhausted"
                        )
                    resends[peer] += 1
                    self.chunk_retries += 1
                    self._transmit(
                        peer, tag, seq, chunks[peer][seq], seq == len(chunks[peer]) - 1
                    )
                # probe peers we are still owed data by; a dead peer's
                # pipe raises, a live one inside exchange answers
                for peer in sorted(need_recv):
                    if inflight[peer] is not None:
                        continue  # the retransmission above already probes
                    try:
                        self.conns[peer].send(("h", tag))
                    except (BrokenPipeError, OSError):
                        raise PeerLostError(self.shard, peer, tag) from None
                continue
            for conn in ready:
                src = self._conn_src[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise PeerLostError(self.shard, src, tag) from None
                op = msg[0]
                if op == "d":
                    _, mtag, seq, nbytes, last, crc, inline = msg
                    key = (src, mtag)
                    expect = self._rseq.get(key, -1) + 1
                    if seq < expect:
                        # duplicate (dup fault, or retransmit after a
                        # lost ack): re-ack without touching the staged
                        # bytes — they may already hold the next chunk
                        self.dup_chunks += 1
                        conn.send(("a", mtag, seq))
                        continue
                    if inline is None:
                        data = bytes(self.in_segs[src].buf[:nbytes])
                    else:
                        data = inline
                    if zlib.crc32(data) != crc:
                        # corrupted in staging/flight: re-request
                        self.crc_failures += 1
                        conn.send(("n", mtag, seq))
                        continue
                    self._rseq[key] = seq
                    conn.send(("a", mtag, seq))
                    if mtag == tag:
                        bufs[src].append(data)
                        if last:
                            need_recv.discard(src)
                    else:  # a peer running ahead: hold for its barrier
                        held = self._stash.setdefault(mtag, {})
                        held.setdefault(src, []).append((data, last))
                elif op == "a":
                    if msg[1] == tag and inflight[src] == msg[2]:
                        acked[src] = msg[2]
                        resends[src] = 0
                        idle = 0
                        send_next(src)
                elif op == "n":
                    # receiver saw a CRC mismatch: re-send the same chunk
                    if msg[1] == tag and inflight[src] == msg[2]:
                        if resends[src] >= self.retries:
                            raise PeerStalledError(
                                self.shard,
                                [src],
                                tag,
                                "persistent chunk corruption",
                            )
                        resends[src] += 1
                        self.chunk_retries += 1
                        seq = inflight[src]
                        self._transmit(
                            src,
                            tag,
                            seq,
                            chunks[src][seq],
                            seq == len(chunks[src]) - 1,
                        )
                elif op == "h":
                    try:
                        conn.send(("hb", msg[1]))
                    except (BrokenPipeError, OSError):
                        raise PeerLostError(self.shard, src, tag) from None
                elif op == "hb":
                    idle = 0  # peer is alive inside its exchange
                else:  # pragma: no cover - protocol violation
                    raise SimulationError(f"bad mailbox message {msg[:2]}")
        for src in peers:
            self._rseq.pop((src, tag), None)
        return [(peer, b"".join(bufs[peer])) for peer in peers]


# --------------------------------------------------------------------------- #
# the worker-side engine                                                      #
# --------------------------------------------------------------------------- #


class _ShardEngine(CycleEngine):
    """A :class:`CycleEngine` over one shard's nodes.

    Intra-shard traffic runs the inherited single-process code paths
    verbatim.  The routing overrides intercept traffic whose target lives
    on another shard and append it to the per-destination mailboxes; the
    worker loop (:class:`_ShardWorker`) flushes those at the cycle's
    barriers and feeds incoming mailboxes back through the
    ``shard_phase_*`` methods, which reproduce the exact bookkeeping of
    :meth:`CycleEngine._run_cycle` split at the barrier points.
    """

    def __init__(
        self,
        nodes,
        schedule,
        transport,
        streams,
        churn,
        shard: int,
        n_shards: int,
    ) -> None:
        super().__init__(
            nodes, schedule, transport=transport, streams=streams, churn=churn
        )
        if not self._lossless:  # pragma: no cover - guarded by make_engine
            raise SimulationError("sharding requires a lossless transport")
        self.shard = int(shard)
        self.n_shards = int(n_shards)
        peers = [d for d in range(n_shards) if d != shard]
        self._req_out: dict[int, list] = {d: [] for d in peers}
        self._rep_out: dict[int, list] = {d: [] for d in peers}
        self._item_out: dict[int, list] = {d: [] for d in peers}
        #: per-link wire codecs: the sender half holds the shipped-uid /
        #: delta-base tables for each peer, the receiver half the
        #: mirrored registries — see repro.simulation.wire
        tier = wire_tier()
        self._codec_out: dict[int, LinkEncoder] = {
            d: LinkEncoder(tier) for d in peers
        }
        self._codec_in: dict[int, LinkDecoder] = {
            d: LinkDecoder(tier) for d in peers
        }
        self._cycle_inbox: dict = {}
        self._cycle_batching = False
        #: degraded-mode window: population offline until this cycle
        self._degraded_until: int | None = None

    # -- degraded mode ------------------------------------------------------- #

    def begin_degraded(self, until: int) -> int:
        """Take this shard's whole population churned-offline until *until*.

        Used after a crash recovery in ``degraded`` mode: rather than
        replaying the dead shard's state, its users are reported offline
        — gossip routes around them exactly as it routes around churned
        nodes, and the ChurnModel counters account the outage — until the
        window closes and :meth:`_degraded_tick` brings them back.
        Returns the number of nodes taken down.
        """
        self._degraded_until = int(until)
        downed = []
        for nid, node in self.nodes.items():
            if node.alive:
                node.alive = False
                downed.append(nid)
        if self.churn is not None:
            self.churn.total_kills += len(downed)
        self._degraded_ids = downed
        return len(downed)

    def _degraded_tick(self, now: int) -> None:
        if self._degraded_until is None:
            return
        if now >= self._degraded_until:
            revived = 0
            # revive only the nodes the degrade took down — nodes the
            # churn model had already killed keep its revival schedule
            for nid in getattr(self, "_degraded_ids", ()):
                node = self.nodes.get(nid)
                if node is not None and not node.alive:
                    node.alive = True
                    revived += 1
            if self.churn is not None:
                self.churn.total_rejoins += revived
            self._degraded_until = None
            self._degraded_ids = []

    # -- mailbox plumbing -------------------------------------------------- #

    def take_mailbox(self, box: dict, phase: str = "gossip") -> dict:
        """Drain a mailbox into per-destination wire frames."""
        out = {}
        codecs = self._codec_out
        for dst, rows in box.items():
            if rows:
                out[dst] = codecs[dst].encode(rows, phase)
                box[dst] = []
        return out

    # -- routing overrides ------------------------------------------------- #

    def gossip(self, sender_id, target_id, payload, kind) -> None:
        if target_id in self.nodes:
            super().gossip(sender_id, target_id, payload, kind)
            return
        dst = shard_of(target_id, self.n_shards)
        # accounting happens at the owning shard, which alone knows the
        # target's liveness; merged totals match the single-process counters
        self._req_out[dst].append((sender_id, target_id, kind, payload))

    def send_item(self, sender_id, target_id, copy, via_like) -> None:
        if target_id in self.nodes:
            super().send_item(sender_id, target_id, copy, via_like)
            return
        dst = shard_of(target_id, self.n_shards)
        self._item_out[dst].append((target_id, sender_id, copy, via_like))

    def send_fanout(
        self, sender_id, targets, copy, via_like, bump_dislikes=False
    ) -> None:
        local = [t for t in targets if t in self.nodes]
        if len(local) == len(targets):
            super().send_fanout(sender_id, targets, copy, via_like, bump_dislikes)
            return
        extra = 1 if bump_dislikes else 0
        n_shards = self.n_shards
        item_out = self._item_out
        for target in targets:
            if target in self.nodes:
                continue
            item_out[shard_of(target, n_shards)].append(
                (target, sender_id, copy.clone_for_forward(extra), via_like)
            )
        if local:
            super().send_fanout(sender_id, local, copy, via_like, bump_dislikes)

    # -- the barrier-split cycle ------------------------------------------- #

    def shard_phase_open(self) -> None:
        """Sub-cycle A: churn, inbox hand-over, publications, local gossip."""
        now = self.now
        self._degraded_tick(now)
        # bound the link tables: both ends of a link grow them in
        # lock-step (one entry per first-crossing uid, all of a cycle's
        # blobs consumed within the cycle), so this size rule fires at
        # the same cycle top on the sender and the receiver
        for enc in self._codec_out.values():
            enc.cap_reset(_INTERN_CAP)
        for dec in self._codec_in.values():
            dec.cap_reset(_INTERN_CAP)
        self.transport.begin_cycle()
        if self.churn is not None:
            self.churn.apply(self, now)

        batching = self._lossless and delivery_batching_enabled()
        self._buffering = batching
        self._cycle_batching = batching

        inbox = self._future_inboxes.pop(now, {})
        if inbox:
            self._pending_items -= sum(len(v) for v in inbox.values())
        self._cycle_inbox = inbox

        for item in self.schedule.items_at(now):
            source = self.nodes.get(item.source)
            if source is not None and source.alive:
                source.publish(item, self, now)

        ids = self.alive_node_ids()
        self._order_rng.shuffle(ids)
        for nid in ids:
            node = self.nodes[nid]
            if node.alive:
                node.begin_cycle(self, now)

    def shard_phase_requests(self, incoming: list) -> None:
        """Sub-cycle B: serve gossip requests that crossed the boundary."""
        now = self.now
        nodes_get = self.nodes.get
        stats = self.stats
        rep_out = self._rep_out
        codecs = self._codec_in
        for src, blob in incoming:
            if not blob:
                continue
            for sender_id, target_id, kind, payload in codecs[src].decode(blob):
                target = nodes_get(target_id)
                ok = target is not None and target._alive
                stats.record_parts(kind, payload_wire_size(payload), ok)
                if not ok:
                    continue
                reply = target.on_gossip(payload, kind, self, now)
                if reply is not None:
                    rep_out[src].append((sender_id, target_id, kind, reply))

    def shard_phase_replies(self, incoming: list) -> None:
        """Sub-cycle C entry: deliver replies to their initiators."""
        now = self.now
        nodes_get = self.nodes.get
        stats = self.stats
        codecs = self._codec_in
        for src, blob in incoming:
            if not blob:
                continue
            for sender_id, _target_id, kind, reply in codecs[src].decode(blob):
                sender = nodes_get(sender_id)
                ok = sender is not None and sender._alive
                stats.record_parts(kind, payload_wire_size(reply), ok)
                if ok:
                    sender.on_gossip(reply, kind, self, now)

    def shard_phase_deliver(self) -> None:
        """Sub-cycle C: drain the item inbox, flush local sends."""
        now = self.now
        inbox = self._cycle_inbox
        self._cycle_inbox = {}
        delivery_ids = list(inbox)
        self._order_rng.shuffle(delivery_ids)
        nodes = self.nodes
        if self._cycle_batching:
            for nid in delivery_ids:
                node = nodes[nid]
                if node._alive:
                    node.receive_items(inbox[nid], self, now)
            self._buffering = False
            self._flush_item_sends()
        else:
            for nid in delivery_ids:
                node = nodes[nid]
                if not node.alive:
                    continue
                for _sender, copy, via_like in inbox[nid]:
                    node.receive_item(copy, via_like, self, now)

    def shard_ingest_items(self, incoming: list) -> None:
        """Barrier 3: adopt remote item sends into next cycle's inboxes."""
        now = self.now
        nodes_get = self.nodes.get
        delivered = dropped = nbytes = 0
        inboxes = None
        codecs = self._codec_in
        for src, blob in incoming:
            if not blob:
                continue
            if inboxes is None:
                inboxes = self._future_inboxes[now + 1]
            for target_id, sender_id, copy, via_like in codecs[src].decode(blob):
                target = nodes_get(target_id)
                if target is not None and target._alive:
                    inboxes[target_id].append((sender_id, copy, via_like))
                    delivered += 1
                    nbytes += copy.wire_size()
                else:
                    dropped += 1
        if delivered or dropped:
            self._pending_items += delivered
            self.stats.record_items_bulk(delivered, dropped, nbytes)

    def shard_phase_close(self) -> None:
        """End of cycle: advance the clock."""
        self.now += 1
        self.cycles_run += 1


# --------------------------------------------------------------------------- #
# the worker process                                                          #
# --------------------------------------------------------------------------- #


def _apply_gates(gates: dict) -> None:
    """Pin the pipeline gates in this process (spawn-start safety)."""
    from repro._native import set_native_kernel
    from repro.core.arraystate import set_array_state
    from repro.core.similarity import default_score_cache, set_batch_scoring
    from repro.simulation.delivery import set_delivery_batching

    set_batch_scoring(gates["batch"])
    set_delivery_batching(gates["delivery"])
    set_native_kernel(gates["native"])
    set_array_state(gates["array"])
    set_wire_tier(gates["wire_tier"])
    global _INTERN_CAP, _PIN_CPUS
    _INTERN_CAP = gates["intern_cap"]
    _PIN_CPUS = gates["pin"]
    # start from an empty score cache: fork inherits the parent's, spawn
    # starts fresh — clearing makes both starts identical (the cache only
    # avoids recomputation; every score is bit-identical either way)
    default_score_cache().clear()


def _pin_to_cpu(shard: int) -> int | None:
    """Pin this worker to one CPU of the allowed set; returns it, or None.

    Round-robin over the process's allowed CPUs (respects an outer
    cpuset/taskset restriction).  A worker that migrates between cores
    pays cache-refill and NUMA tax every barrier; pinning is a pure
    affinity hint — scheduling, and therefore simulation output, is
    unchanged.  No-op on single-CPU hosts and platforms without
    ``sched_setaffinity``.
    """
    try:
        cpus = sorted(os.sched_getaffinity(0))
        if len(cpus) < 2:
            return None
        cpu = cpus[shard % len(cpus)]
        os.sched_setaffinity(0, {cpu})
        return cpu
    except (AttributeError, OSError):  # pragma: no cover - platform-dependent
        return None


class _ShardWorker:
    """Command loop run inside each worker process."""

    def __init__(self, shard: int, n_shards: int, ctrl, peer_conns) -> None:
        self.shard = shard
        self.n_shards = n_shards
        self.ctrl = ctrl
        self.peer_conns = peer_conns
        self.engine: _ShardEngine | None = None
        self.links: _PeerLinks | None = None
        self.arena: _ShardArena | None = None
        self.injector: FaultInjector | None = None
        self._wire: dict = {}
        self._arena_views: list = []
        self._segs: list = []

    # -- fault plumbing ------------------------------------------------------ #

    def _setup_faults(self, spec: dict) -> None:
        self._wire = spec.get("wire") or {}
        schedule = spec.get("faults")
        if schedule is None:
            self.injector = None
            return
        ctrl = self.ctrl

        def notify(key):
            # out-of-band: the parent learns a fatal fault fired even when
            # the fault kills this process before any reply is sent
            with suppress(BrokenPipeError, OSError):
                ctrl.send(("fired", key))

        self.injector = FaultInjector(
            schedule,
            self.shard,
            suppressed=spec.get("suppressed", frozenset()),
            notify=notify,
        )

    def _inject(self, cycle: int, phase: str) -> None:
        if self.injector is None:
            return
        try:
            self.injector.at_phase(cycle, phase)
        except InjectedFailure as exc:
            if exc.kind == "corrupt_arena":
                self._corrupt_arena()
            raise

    def _corrupt_arena(self) -> None:
        """Scribble the first arena-resident block (the injected damage)."""
        for _nid, _name, _off, _alloc, view, block in self._arena_views:
            if view._cols is block:
                block[:, :] = -1
                return

    # -- command handlers --------------------------------------------------- #

    def _init(self, blob: bytes) -> tuple:
        spec = _loads(blob)
        _apply_gates(spec["gates"])
        if _PIN_CPUS:
            _pin_to_cpu(self.shard)
        self._setup_faults(spec)

        # disjoint snapshot-uid ranges per process: parent uids stay tiny,
        # worker i allocates from (i + 1) << 44 — cross-process uid
        # collisions (and with them score-cache poisoning) are impossible
        from repro.core.profiles import FrozenProfile

        FrozenProfile._uid_counter = itertools.count((self.shard + 1) << 44)

        streams = ShardRngStreams(spec["seed"], self.shard)
        self.engine = _ShardEngine(
            spec["nodes"],
            spec["schedule"],
            spec["transport"],
            streams,
            spec["churn"],
            self.shard,
            self.n_shards,
        )
        return ("ready", self._arena_need(spec["want_arena"]))

    def _arena_need(self, want_arena: bool) -> int:
        need = 0
        if want_arena:
            for node in self.engine.nodes.values():
                for _name, view in _array_views_of(node):
                    alloc = max(view._alloc, 2 * view.capacity + 8)
                    need += 3 * 8 * alloc + _ARENA_ALIGN
            if need:
                need += 4096
        return need

    def _checkpoint(self) -> bytes:
        """Pickle this shard's complete simulation state.

        Everything :meth:`_restore` needs to resume bit-for-bit: nodes
        (views pickle their columns even while arena-resident), RNG
        streams mid-sequence, traffic/log/churn state, the engine clock
        and pending counters, future item inboxes, the per-link wire
        codecs (their intern/base tables — so replayed cycles re-emit
        reference and delta frames byte-identically), and the next
        snapshot uid.  One uid is burnt per
        checkpoint — at a fixed, supervised-only cadence — so a restored
        worker allocates exactly the uids the original would have.
        """
        from repro.core.profiles import FrozenProfile

        eng = self.engine
        uid_next = next(FrozenProfile._uid_counter) + 1
        FrozenProfile._uid_counter = itertools.count(uid_next)
        churn = eng.churn
        # defaultdict-of-defaultdict(list) holds unpicklable lambdas:
        # flatten to plain dicts, rebuilt on restore
        future = {
            cycle: {nid: list(rows) for nid, rows in box.items()}
            for cycle, box in eng._future_inboxes.items()
        }
        return _dumps(
            {
                "nodes": list(eng.nodes.values()),
                "schedule": eng.schedule,
                "transport": eng.transport,
                "streams": eng.streams,
                "churn": churn,
                "stats": _stats_parts(eng.stats),
                "log": eng.log,
                "now": eng.now,
                "cycles": eng.cycles_run,
                "pending": eng._pending_items,
                "future": future,
                "codec_out": eng._codec_out,
                "codec_in": eng._codec_in,
                "uid_next": uid_next,
                "degraded_until": eng._degraded_until,
                "degraded_ids": getattr(eng, "_degraded_ids", []),
            }
        )

    def _restore(self, blob: bytes) -> tuple:
        """Rebuild the shard engine from a checkpoint (respawn path)."""
        spec = _loads(blob)
        _apply_gates(spec["gates"])
        if _PIN_CPUS:
            _pin_to_cpu(self.shard)
        self._setup_faults(spec)

        from repro.core.profiles import FrozenProfile

        state = _loads(spec["state"])
        FrozenProfile._uid_counter = itertools.count(state["uid_next"])
        self.engine = _ShardEngine(
            state["nodes"],
            state["schedule"],
            state["transport"],
            state["streams"],
            state["churn"],
            self.shard,
            self.n_shards,
        )
        eng = self.engine
        _merge_stats_parts(eng.stats, state["stats"])
        eng.log = state["log"]
        eng.now = state["now"]
        eng.cycles_run = state["cycles"]
        eng._pending_items = state["pending"]
        for cycle, box in state["future"].items():
            inboxes = eng._future_inboxes[cycle]
            for nid, rows in box.items():
                inboxes[nid].extend(rows)
        eng._codec_out = state["codec_out"]
        eng._codec_in = state["codec_in"]
        eng._degraded_until = state["degraded_until"]
        eng._degraded_ids = state["degraded_ids"]
        degrade = spec.get("degrade")
        if degrade is not None:
            eng.begin_degraded(degrade)
        return ("ready", self._arena_need(spec["want_arena"]))

    def _attach(self, arena_name, out_names: dict, in_names: dict) -> tuple:
        adopted = 0
        if arena_name is not None:
            shm = _attach_shm(arena_name)
            self._segs.append(shm)
            self.arena = _ShardArena(shm)
            for nid, node in self.engine.nodes.items():
                for name, view in _array_views_of(node):
                    alloc = max(view._alloc, 2 * view.capacity + 8)
                    block, offset = self.arena.alloc_cols(alloc)
                    if block is None:
                        break
                    view.rehome(block)
                    self._arena_views.append((nid, name, offset, alloc, view, block))
                    adopted += 1
        out_segs = {}
        for peer, name in out_names.items():
            out_segs[peer] = _attach_shm(name)
            self._segs.append(out_segs[peer])
        in_segs = {}
        for peer, name in in_names.items():
            in_segs[peer] = _attach_shm(name)
            self._segs.append(in_segs[peer])
        self.links = _PeerLinks(
            self.shard,
            self.peer_conns,
            out_segs,
            in_segs,
            injector=self.injector,
            wire=self._wire,
        )
        return ("attached", adopted)

    def _one_cycle(self) -> None:
        eng = self.engine
        links = self.links
        tag = eng.cycles_run
        # worker-level faults fire just before their phase's barrier, so
        # a crash leaves the siblings wedged mid-exchange — the exact
        # situation the deadline/heartbeat machinery must detect
        self._inject(tag, "open")
        eng.shard_phase_open()
        self._inject(tag, "q")
        req_in = links.exchange((tag, "q"), eng.take_mailbox(eng._req_out))
        eng.shard_phase_requests(req_in)
        self._inject(tag, "r")
        rep_in = links.exchange((tag, "r"), eng.take_mailbox(eng._rep_out))
        eng.shard_phase_replies(rep_in)
        eng.shard_phase_deliver()
        self._inject(tag, "i")
        item_in = links.exchange(
            (tag, "i"), eng.take_mailbox(eng._item_out, "items")
        )
        eng.shard_ingest_items(item_in)
        eng.shard_phase_close()

    def _state_map(self) -> dict:
        live = {}
        for nid, name, offset, alloc, view, block in self._arena_views:
            if view._cols is block:  # still arena-resident (never grew)
                live.setdefault(nid, {})[name] = (offset, alloc, view._n)
        return live

    def _collect(self) -> bytes:
        eng = self.engine
        churn = eng.churn
        churn_parts = (
            (churn.total_kills, churn.total_rejoins)
            if churn is not None
            else None
        )
        return _dumps(
            (
                list(eng.nodes.values()),
                _stats_parts(eng.stats),
                eng.log,
                churn_parts,
            )
        )

    def _detach_views(self) -> None:
        """Re-home every arena-resident view back into private memory.

        A separate frame on purpose: the loop variables alias arena
        blocks, and they must be gone (frame exited) before the segments
        are closed — a single live export makes ``mmap.close`` raise
        ``BufferError``.
        """
        for _nid, _name, _off, _alloc, view, block in self._arena_views:
            if view._cols is block:
                view._allocate(view._alloc)
        self._arena_views = []

    def _cleanup(self) -> None:
        """Detach from shared memory before the worker exits.

        Every arena-resident view is re-homed back into private memory so
        no numpy view keeps a buffer export open — closing a segment with
        live exports raises ``BufferError`` from ``SharedMemory.__del__``
        at interpreter shutdown otherwise.
        """
        self._detach_views()
        self.arena = None
        if self.links is not None:
            self.links.out_segs = {}
            self.links.in_segs = {}
        for seg in self._segs:
            with suppress(Exception):  # platform close quirks
                seg.close()
        self._segs = []

    # -- the loop ----------------------------------------------------------- #

    def serve(self) -> None:
        try:
            self._serve()
        finally:
            self._cleanup()

    def _serve(self) -> None:
        ctrl = self.ctrl
        while True:
            try:
                cmd = ctrl.recv()
            except (EOFError, OSError):
                break
            try:
                op = cmd[0]
                if op == "run":
                    try:
                        for _ in range(cmd[1]):
                            self._one_cycle()
                    except _PeerFailure as exc:
                        # a peer died or stalled: report and return to the
                        # loop — the supervisor tears everyone down and
                        # respawns from the checkpoint
                        ctrl.send(("ran_failed", list(exc.peers), str(exc)))
                    except InjectedFailure as exc:
                        ctrl.send(("ran_failed", [self.shard], str(exc)))
                    else:
                        eng = self.engine
                        links = self.links
                        deltas = links.take_deltas() if links is not None else {}
                        ctrl.send(("ran", eng.now, eng._pending_items, deltas))
                elif op == "init":
                    ctrl.send(self._init(cmd[1]))
                elif op == "restore":
                    ctrl.send(self._restore(cmd[1]))
                elif op == "checkpoint":
                    ctrl.send(("ckpt", self._checkpoint()))
                elif op == "attach":
                    ctrl.send(self._attach(cmd[1], cmd[2], cmd[3]))
                elif op == "alive_ids":
                    ctrl.send(("alive_ids", self.engine.alive_node_ids()))
                elif op == "get_node":
                    node = self.engine.nodes.get(cmd[1])
                    ctrl.send(("node", None if node is None else _dumps(node)))
                elif op == "add_node":
                    self.engine.add_node(_loads(cmd[1]))
                    ctrl.send(("ok",))
                elif op == "state_map":
                    ctrl.send(("state_map", self._state_map()))
                elif op == "link_stats":
                    links = self.links
                    from repro.network.stats import WireStats

                    wire = WireStats()
                    for enc in self.engine._codec_out.values():
                        wire.merge(enc.stats)
                    ctrl.send(
                        (
                            "link_stats",
                            {
                                "shm_bytes": links.shm_bytes,
                                "inline_bytes": links.inline_bytes,
                                "chunk_retries": links.chunk_retries,
                                "crc_failures": links.crc_failures,
                                "dup_chunks": links.dup_chunks,
                                "wire": {
                                    "tier": wire_tier(),
                                    **wire.as_dict(),
                                },
                            },
                        )
                    )
                elif op == "collect":
                    ctrl.send(("state", self._collect()))
                elif op == "stop":
                    ctrl.send(("stopped",))
                    break
                else:
                    ctrl.send(("error", f"unknown command {op!r}"))
            except Exception:
                try:
                    ctrl.send(("error", traceback.format_exc()))
                except (BrokenPipeError, OSError):  # parent went away
                    break


def _worker_main(
    shard: int, n_shards: int, ctrl, peer_conns, close_conns=()
) -> None:
    # under a fork start every worker inherits ALL pipe ends created
    # before its fork — including its siblings'.  Close them first, or a
    # dead sibling's pipes never reach EOF (the surviving holders keep
    # them open) and prompt crash detection is impossible.
    for conn in close_conns:
        with suppress(OSError):  # already closed
            conn.close()
    _ShardWorker(shard, n_shards, ctrl, peer_conns).serve()


# --------------------------------------------------------------------------- #
# the parent-side facade                                                      #
# --------------------------------------------------------------------------- #


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return multiprocessing.get_context("spawn")


def _gate_snapshot() -> dict:
    from repro._native import native_kernel_enabled
    from repro.core.arraystate import array_state_enabled
    from repro.core.similarity import batch_scoring_enabled

    return {
        "batch": batch_scoring_enabled(),
        "delivery": delivery_batching_enabled(),
        "native": native_kernel_enabled(),
        "array": array_state_enabled(),
        "wire_tier": wire_tier(),
        "intern_cap": _INTERN_CAP,
        "pin": _PIN_CPUS,
    }


class ShardedCycleEngine:
    """Parent-side facade of a process-sharded simulation run.

    Exposes the :class:`CycleEngine` surface the harness, the experiment
    runner and the CLI consume — ``run`` / ``run_until_drained``,
    ``nodes`` / ``node`` / ``add_node`` / ``alive_node_ids``, ``stats`` /
    ``log`` / ``pending_item_messages`` — while the node population lives
    in worker processes.  Reading ``nodes`` / ``stats`` / ``log`` after a
    run triggers a :meth:`collect`, which adopts the workers' state into
    the parent (the facade is then coherent until the next run).

    Construct through :func:`make_engine`; always :meth:`close` (or use as
    a context manager) so worker processes and shared-memory segments are
    released deterministically.
    """

    def __init__(
        self,
        nodes: Iterable[BaseNode],
        schedule: PublicationSchedule,
        transport: Transport | None = None,
        streams: RngStreams | None = None,
        churn: object | None = None,
        n_shards: int | None = None,
    ) -> None:
        nodes = list(nodes)
        self.n_shards = int(n_shards if n_shards is not None else shard_count())
        if self.n_shards < 2:
            raise SimulationError(
                "ShardedCycleEngine needs n_shards >= 2; "
                "make_engine returns a CycleEngine below that"
            )
        self.schedule = schedule
        self.transport = (
            transport if transport is not None else PerfectTransport()
        )
        if not self.transport.is_lossless():
            raise SimulationError("sharding requires a lossless transport")
        self.streams = streams if streams is not None else RngStreams(0)
        self.churn = churn
        self.now = 0
        self.cycles_run = 0
        self._observers: list = []
        self._pending = 0
        self._order: list[int] = []
        self._nodes: dict[int, BaseNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise SimulationError(f"duplicate node id {node.node_id}")
            self._nodes[node.node_id] = node
            self._order.append(node.node_id)
        self._dirty = False
        self._stats: TrafficStats | None = None
        self._log: DisseminationLog | None = None
        self._closed = False
        self._use_shm = shard_shm_enabled()
        self._arenas: dict[int, object] = {}
        self._own_segs: list = []
        self._procs: list = []
        self._ctrl: list = []
        # -- fault plane / supervision ---------------------------------- #
        self._faults = fault_schedule()
        recovery = _RECOVERY_MODE if _RECOVERY_MODE is not None else _env_recovery()
        if recovery == "auto":
            recovery = "restore" if self._faults is not None else "off"
        self._recovery = recovery
        #: supervision wraps every run in checkpoint + retry machinery;
        #: off by default so the fault-free path stays bitwise-identical
        self._supervised = self._recovery != "off" or self._faults is not None
        self._wire = {
            "timeout": _EXCHANGE_TIMEOUT,
            "retries": _EXCHANGE_RETRIES,
            "backoff": _BACKOFF_BASE,
        }
        self.recovery_stats = RecoveryStats()
        self.fault_log = FaultLog()
        self._fired: set = set()  # fatal fault keys already executed
        self._ckpt: dict | None = None
        try:
            self._start_workers(nodes)
        except Exception:
            self.close()
            raise

    # -- worker lifecycle --------------------------------------------------- #

    def _spawn_procs(self) -> None:
        """Start the worker processes and wire the control/peer pipes."""
        ctx = _mp_context()
        n = self.n_shards
        if self._use_shm:
            # start the resource tracker *before* forking: the workers then
            # share the parent's tracker and their attach-side registrations
            # collapse into the parent's single entry per segment (no
            # spurious "leaked shared_memory" warnings at worker exit)
            with suppress(Exception):  # tracker internals moved
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
        # create every pipe before any fork, so each worker can be handed
        # the complete list of ends that are NOT its own and close them —
        # a fork-started child inherits all of them otherwise, keeping a
        # dead sibling's pipes open and masking its EOF
        pair: dict = {}
        for i in range(n):
            for j in range(i + 1, n):
                pair[(i, j)] = ctx.Pipe()
        ctrls = [ctx.Pipe() for _ in range(n)]
        fork_start = ctx.get_start_method() == "fork"
        all_conns: list = []
        if fork_start:
            for conn_a, conn_b in pair.values():
                all_conns.append(conn_a)
                all_conns.append(conn_b)
            for parent_conn, child_conn in ctrls:
                all_conns.append(parent_conn)
                all_conns.append(child_conn)
        for w in range(n):
            parent_conn, child_conn = ctrls[w]
            peers = {}
            for p in range(n):
                if p == w:
                    continue
                i, j = (w, p) if w < p else (p, w)
                peers[p] = pair[(i, j)][0 if w == i else 1]
            mine = set(id(c) for c in peers.values())
            mine.add(id(child_conn))
            others = [c for c in all_conns if id(c) not in mine]
            proc = ctx.Process(
                target=_worker_main,
                args=(w, n, child_conn, peers, others),
                daemon=True,
                name=f"repro-shard-{w}",
            )
            proc.start()
            self._procs.append(proc)
            self._ctrl.append(parent_conn)
        # the parent keeps no end of the peer pipes: close its copies so a
        # dead worker surfaces as EOF instead of a silent hang
        for conn_a, conn_b in pair.values():
            conn_a.close()
            conn_b.close()
        for _parent_conn, child_conn in ctrls:
            child_conn.close()

    def _provision(self, cmds: list) -> None:
        """Initialise freshly spawned workers and attach shared memory.

        *cmds* is one ``("init", blob)`` or ``("restore", blob)`` command
        per worker; both reply ``("ready", arena_need)``, after which the
        parent creates the arena and mailbox segments (with the inline
        fallback when the platform has no usable shared memory) and
        completes the attach handshake.
        """
        n = self.n_shards
        for w in range(n):
            self._ctrl[w].send(cmds[w])
        needs = [self._expect(w, "ready")[1] for w in range(n)]

        arena_names: list = [None] * n
        out_names: list = [dict() for _ in range(n)]
        in_names: list = [dict() for _ in range(n)]
        if self._use_shm:
            try:
                from multiprocessing import shared_memory

                for w, need in enumerate(needs):
                    if need:
                        seg = shared_memory.SharedMemory(create=True, size=need)
                        self._own_segs.append(seg)
                        self._arenas[w] = seg
                        arena_names[w] = seg.name
                for src in range(n):
                    for dst in range(n):
                        if src == dst:
                            continue
                        seg = shared_memory.SharedMemory(
                            create=True, size=_MAILBOX_BYTES
                        )
                        self._own_segs.append(seg)
                        out_names[src][dst] = seg.name
                        in_names[dst][src] = seg.name
            except Exception:
                # no usable shared memory on this platform: inline fallback
                self._release_segs()
                self._arenas = {}
                arena_names = [None] * n
                out_names = [dict() for _ in range(n)]
                in_names = [dict() for _ in range(n)]
                self._use_shm = False
        for w in range(n):
            self._ctrl[w].send(("attach", arena_names[w], out_names[w], in_names[w]))
        for w in range(n):
            self._expect(w, "attached")

    def _start_workers(self, nodes: list) -> None:
        self._spawn_procs()

        from repro.core.arraystate import array_state_enabled

        n = self.n_shards
        gates = _gate_snapshot()
        shards = [[] for _ in range(n)]
        for nid in self._order:
            shards[shard_of(nid, n)].append(self._nodes[nid])
        want_arena = self._use_shm and array_state_enabled()
        cmds = []
        for w in range(n):
            blob = _dumps(
                {
                    "seed": self.streams.seed,
                    "nodes": shards[w],
                    "schedule": self.schedule,
                    "transport": self.transport,
                    "churn": self.churn,
                    "gates": gates,
                    "want_arena": want_arena,
                    "faults": self._faults,
                    "suppressed": set(self._fired),
                    "wire": self._wire,
                }
            )
            cmds.append(("init", blob))
        self._provision(cmds)

    def _expect(self, worker: int, op: str) -> tuple:
        conn = self._ctrl[worker]
        deadline = time.monotonic() + _CTRL_TIMEOUT
        while True:
            if not conn.poll(max(0.0, deadline - time.monotonic())):
                raise SimulationError(
                    f"shard worker {worker} did not answer within "
                    f"{_CTRL_TIMEOUT:.0f}s (waiting for {op!r})"
                )
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                raise SimulationError(
                    f"shard worker {worker} died (waiting for {op!r})"
                ) from None
            if msg[0] == "fired":  # out-of-band fault notification
                self._note_fired(worker, msg[1])
                continue
            break
        if msg[0] == "error":
            raise SimulationError(f"shard worker {worker} failed:\n{msg[1]}")
        if msg[0] != op:
            raise SimulationError(
                f"shard worker {worker}: expected {op!r}, got {msg[0]!r}"
            )
        return msg

    def _note_fired(self, worker: int, key) -> None:
        """Record a fatal fault's key so a respawn cannot replay it."""
        key = tuple(key)
        if key not in self._fired:
            self._fired.add(key)
            self.fault_log.record(self.cycles_run, worker, "fault_fired", repr(key))

    def _broadcast(self, cmd: tuple, reply_op: str) -> list:
        """Send *cmd* to every worker; collect one reply each.

        Replies are drained in arrival order, not worker order: when one
        worker fails mid-cycle its siblings stay wedged at a mailbox
        barrier and never answer, so waiting on worker 0 first would
        turn any error into a timeout attributed to the wrong process.
        The first ``error`` reply aborts the run immediately — with the
        failing worker's real traceback — and tears the engine down
        (the wedged siblings are terminated by :meth:`close`).
        """
        if self._closed:
            raise SimulationError("engine is closed")
        for worker, conn in enumerate(self._ctrl):
            try:
                conn.send(cmd)
            except (BrokenPipeError, OSError):
                self.close()
                raise SimulationError(
                    f"shard worker {worker} died (control pipe broken "
                    f"before {reply_op!r})"
                ) from None

        replies: dict[int, tuple] = {}
        pending = {conn: w for w, conn in enumerate(self._ctrl)}
        deadline = time.monotonic() + _CTRL_TIMEOUT
        while pending:
            timeout = max(0.0, deadline - time.monotonic())
            ready = _conn_wait(list(pending), timeout)
            if not ready:
                missing = sorted(pending.values())
                self.close()
                raise SimulationError(
                    f"shard workers {missing} did not answer within "
                    f"{_CTRL_TIMEOUT:.0f}s (waiting for {reply_op!r})"
                )
            for conn in ready:
                worker = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self.close()
                    raise SimulationError(
                        f"shard worker {worker} died "
                        f"(waiting for {reply_op!r})"
                    ) from None
                if msg[0] == "fired":  # out-of-band fault notification
                    self._note_fired(worker, msg[1])
                    continue
                del pending[conn]
                if msg[0] == "error":
                    self.close()
                    raise SimulationError(
                        f"shard worker {worker} failed:\n{msg[1]}"
                    )
                if msg[0] != reply_op:  # pragma: no cover - protocol bug
                    self.close()
                    raise SimulationError(
                        f"shard worker {worker}: expected {reply_op!r}, "
                        f"got {msg[0]!r}"
                    )
                replies[worker] = msg
        return [replies[w] for w in range(self.n_shards)]

    # -- population --------------------------------------------------------- #

    @property
    def nodes(self) -> dict[int, BaseNode]:
        """The node population, collected from the workers when stale.

        While a run is in flight between reads, the parent's copies lag;
        the first access after a run adopts the workers' current objects
        (the same instances later reads keep returning).
        """
        if self._dirty:
            self.collect()
        return self._nodes

    def node(self, node_id: int) -> BaseNode:
        """Look up a node by id (fresh worker copy while running)."""
        if not self._dirty or self._closed:
            try:
                return self._nodes[node_id]
            except KeyError:
                raise SimulationError(f"unknown node id {node_id}") from None
        if node_id not in self._nodes:
            raise SimulationError(f"unknown node id {node_id}")
        w = shard_of(node_id, self.n_shards)
        self._ctrl[w].send(("get_node", node_id))
        msg = self._expect(w, "node")
        if msg[1] is None:  # pragma: no cover - registry/worker divergence
            raise SimulationError(f"unknown node id {node_id}")
        return _loads(msg[1])

    def add_node(self, node: BaseNode) -> None:
        """Add a node joining mid-run (its first cycle is the next one)."""
        if self._closed:
            raise SimulationError("engine is closed")
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        w = shard_of(node.node_id, self.n_shards)
        self._ctrl[w].send(("add_node", _dumps(node)))
        self._expect(w, "ok")
        self._nodes[node.node_id] = node
        self._order.append(node.node_id)

    def alive_node_ids(self) -> list[int]:
        """Ids of alive nodes, concatenated in shard order."""
        replies = self._broadcast(("alive_ids",), "alive_ids")
        out: list[int] = []
        for msg in replies:
            out.extend(msg[1])
        return out

    # -- the run loop -------------------------------------------------------- #

    def add_observer(self, fn) -> None:
        """Register ``fn(engine, cycle)``; fired on the facade per cycle.

        Observers see the facade (aggregate clock/pending state), not live
        node objects — reading ``nodes`` from an observer forces a
        collect per cycle, which is correct but slow.
        """
        self._observers.append(fn)

    def _absorb_deltas(self, replies: list) -> None:
        for msg in replies:
            deltas = msg[3] if len(msg) > 3 else None
            if deltas:
                self.recovery_stats.chunk_retries += deltas.get("chunk_retries", 0)
                self.recovery_stats.crc_failures += deltas.get("crc_failures", 0)
                self.recovery_stats.dup_chunks += deltas.get("dup_chunks", 0)

    def _step(self, k: int) -> None:
        if self._supervised:
            self._step_supervised(k)
            return
        replies = self._broadcast(("run", k), "ran")
        self.now += k
        self.cycles_run += k
        self._pending = sum(msg[2] for msg in replies)
        self._absorb_deltas(replies)
        self._dirty = True
        self._stats = None
        self._log = None

    # -- supervision (fault plane active) ------------------------------------ #

    def _step_supervised(self, k: int) -> None:
        """Advance *k* cycles under checkpoint/retry supervision.

        Runs in chunks aligned to the checkpoint cadence: before each
        chunk a synchronized full-state checkpoint is taken when due, and
        a chunk that fails — a worker crashed, stalled past its deadline,
        or surfaced an injected failure — triggers a global
        rollback-replay: every worker is torn down and respawned from the
        last checkpoint (dead shards optionally entering degraded mode),
        the parent clock rolls back with them, and the loop re-runs the
        lost cycles.  Fired fatal faults are suppressed on replay, so the
        respawned population does not re-crash; every other draw replays
        bit-for-bit.
        """
        target = self.cycles_run + k
        recoveries = 0
        while self.cycles_run < target:
            dead = None
            attempted = 0
            if self._ckpt is None or (
                self.cycles_run - self._ckpt["cycle"] >= _CKPT_EVERY
            ):
                ok, result = self._try_checkpoint()
                if not ok:
                    if self._ckpt is None:
                        self.close()
                        raise SimulationError(
                            "shard worker failure before the first "
                            f"checkpoint (shards {sorted(result)})"
                        )
                    dead = result  # recover below, then retry the chunk
            if dead is None:
                chunk = min(
                    target - self.cycles_run,
                    _CKPT_EVERY - (self.cycles_run - self._ckpt["cycle"]),
                )
                ok, result = self._try_run(chunk)
                if ok:
                    self.now += chunk
                    self.cycles_run += chunk
                    self._pending = result
                    continue
                dead = result
                attempted = chunk
            recoveries += 1
            self.recovery_stats.worker_deaths += len(dead)
            if self._recovery == "off" or recoveries > _MAX_RECOVERIES:
                self.close()
                raise SimulationError(
                    f"shard worker failure at cycle {self.cycles_run} "
                    f"(dead/failed shards: {sorted(dead) or 'none'}; "
                    f"recovery={self._recovery!r}, "
                    f"{recoveries - 1} recoveries already spent)"
                )
            replayed = (self.cycles_run - self._ckpt["cycle"]) + attempted
            self.recovery_stats.recoveries += 1
            self.recovery_stats.replayed_cycles += replayed
            self.fault_log.record(
                self.cycles_run,
                -1,
                "recovery",
                f"rollback to cycle {self._ckpt['cycle']} "
                f"(dead shards {sorted(dead) or '[]'})",
            )
            degrade = dead if self._recovery == "degraded" else frozenset()
            self._respawn_from_checkpoint(degrade)
        self._dirty = True
        self._stats = None
        self._log = None

    def _try_run(self, k: int) -> tuple:
        """One supervised run chunk.

        Returns ``(True, pending_total)`` when every worker completed, or
        ``(False, dead_shards)`` when any worker died (control-pipe EOF),
        reported a peer/injected failure, or went silent past the
        worker-side exchange deadline plus control slack.
        """
        replies: dict[int, tuple] = {}
        dead: set[int] = set()
        failed: set[int] = set()
        pending: dict = {}
        for w, conn in enumerate(self._ctrl):
            try:
                conn.send(("run", k))
                pending[conn] = w
            except (BrokenPipeError, OSError):
                # died between runs (external SIGKILL): recover directly
                dead.add(w)
                self.fault_log.record(
                    self.cycles_run, w, "worker_death", "control pipe broken"
                )
        # workers bound their own waits by the exchange deadline; the
        # parent allows that plus control slack before declaring a wedge
        deadline = time.monotonic() + self._wire["timeout"] + _CTRL_TIMEOUT
        while pending:
            timeout = max(0.0, deadline - time.monotonic())
            ready = _conn_wait(list(pending), timeout)
            if not ready:
                for w in pending.values():
                    dead.add(w)
                    self.fault_log.record(
                        self.cycles_run, w, "worker_death", "silent past deadline"
                    )
                break
            for conn in ready:
                w = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del pending[conn]
                    dead.add(w)
                    self.fault_log.record(
                        self.cycles_run, w, "worker_death", "control pipe EOF"
                    )
                    continue
                op = msg[0]
                if op == "fired":
                    self._note_fired(w, msg[1])
                    continue
                del pending[conn]
                if op == "ran":
                    replies[w] = msg
                elif op == "ran_failed":
                    failed.add(w)
                    self.fault_log.record(self.cycles_run, w, "ran_failed", msg[2])
                elif op == "error":
                    failed.add(w)
                    self.fault_log.record(
                        self.cycles_run, w, "worker_error", msg[1][-2000:]
                    )
                else:  # pragma: no cover - protocol bug
                    self.close()
                    raise SimulationError(
                        f"shard worker {w}: expected 'ran', got {op!r}"
                    )
        if dead or failed:
            return (False, frozenset(dead))
        ordered = [replies[w] for w in range(self.n_shards)]
        self._absorb_deltas(ordered)
        return (True, sum(msg[2] for msg in ordered))

    def _try_checkpoint(self) -> tuple:
        """Synchronized full-state checkpoint of every shard.

        Returns ``(True, None)`` and installs the checkpoint only when
        every worker produced its blob; on any worker failure the
        previous checkpoint stays in place (never a partial one) and the
        dead/failed shard set is returned for the recovery path.
        """
        replies: dict[int, tuple] = {}
        dead: set[int] = set()
        pending: dict = {}
        for w, conn in enumerate(self._ctrl):
            try:
                conn.send(("checkpoint",))
                pending[conn] = w
            except (BrokenPipeError, OSError):
                dead.add(w)
                self.fault_log.record(
                    self.cycles_run, w, "worker_death", "control pipe broken"
                )
        deadline = time.monotonic() + _CTRL_TIMEOUT
        while pending:
            timeout = max(0.0, deadline - time.monotonic())
            ready = _conn_wait(list(pending), timeout)
            if not ready:
                dead.update(pending.values())
                break
            for conn in ready:
                w = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del pending[conn]
                    dead.add(w)
                    self.fault_log.record(
                        self.cycles_run, w, "worker_death", "control pipe EOF"
                    )
                    continue
                if msg[0] == "fired":
                    self._note_fired(w, msg[1])
                    continue
                del pending[conn]
                if msg[0] == "ckpt":
                    replies[w] = msg
                else:
                    dead.add(w)
                    self.fault_log.record(
                        self.cycles_run, w, "worker_error", str(msg[:2])
                    )
        if dead:
            return (False, frozenset(dead))
        blobs = [replies[w][1] for w in range(self.n_shards)]
        self._ckpt = {
            "cycle": self.cycles_run,
            "now": self.now,
            "pending": self._pending,
            "blobs": blobs,
        }
        nbytes = sum(len(b) for b in blobs)
        self.recovery_stats.checkpoints += 1
        self.recovery_stats.checkpoint_bytes += nbytes
        self.fault_log.record(self.cycles_run, -1, "checkpoint", f"{nbytes} bytes")
        return (True, None)

    def _teardown_workers(self) -> None:
        """Stop (escalating to kill) every worker and release all shm."""
        for conn in self._ctrl:
            with suppress(BrokenPipeError, OSError):
                conn.send(("stop",))
        for proc in self._procs:
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5)
        for conn in self._ctrl:
            with suppress(OSError):
                conn.close()
        self._ctrl = []
        self._procs = []
        self._arenas = {}
        self._release_segs()

    def _respawn_from_checkpoint(self, degrade_shards: frozenset) -> None:
        """Global rollback: fresh workers, every shard restored.

        Peers of a dead worker hold unrecoverable mid-barrier state (the
        barrier lost in-flight chunks and the interning tables advance in
        lock-step), so recovery replaces *all* workers — new processes,
        new pipes, new segments — and restores each from the checkpoint.
        Shards in *degrade_shards* come back with their population
        churned-offline for the degraded window instead of live.
        """
        from repro.core.arraystate import array_state_enabled

        ckpt = self._ckpt
        self._teardown_workers()
        self._spawn_procs()
        gates = _gate_snapshot()
        want_arena = self._use_shm and array_state_enabled()
        until = ckpt["now"] + (_DEGRADED_FOR or _CKPT_EVERY)
        cmds = []
        for w in range(self.n_shards):
            spec = {
                "gates": gates,
                "want_arena": want_arena,
                "faults": self._faults,
                "suppressed": set(self._fired),
                "wire": self._wire,
                "state": ckpt["blobs"][w],
                "degrade": until if w in degrade_shards else None,
            }
            cmds.append(("restore", _dumps(spec)))
        self._provision(cmds)
        self.now = ckpt["now"]
        self.cycles_run = ckpt["cycle"]
        self._pending = ckpt["pending"]
        if degrade_shards:
            window = until - ckpt["now"]
            self.recovery_stats.degraded_cycles += window * len(degrade_shards)
            self.fault_log.record(
                self.cycles_run,
                -1,
                "degraded",
                f"shards {sorted(degrade_shards)} offline until cycle {until}",
            )

    def fault_stats(self) -> RecoveryStats:
        """The run's fault-plane counters (all zero when unsupervised)."""
        return self.recovery_stats

    def run(self, n_cycles: int) -> None:
        """Advance the simulation by *n_cycles* cycles."""
        if n_cycles <= 0:
            return
        if self._observers:
            for _ in range(n_cycles):
                cycle = self.now
                self._step(1)
                for fn in self._observers:
                    fn(self, cycle)
        else:
            self._step(n_cycles)

    def run_until_drained(self, max_extra: int = 200) -> int:
        """Run past the schedule until no item messages remain in flight."""
        extra = 0
        while extra < max_extra:
            if self.now > self.schedule.last_cycle and self._pending == 0:
                break
            self.run(1)
            extra += 1
        return extra

    def pending_item_messages(self) -> int:
        """Item copies in flight across all shards (post-cycle totals)."""
        return self._pending

    # -- state adoption ------------------------------------------------------ #

    def collect(self) -> None:
        """Adopt the workers' node state, traffic counters and event logs.

        Per-worker logs/stats merge in shard order; node objects replace
        the parent's stale copies under their original insertion order.
        Idempotent between runs.
        """
        replies = self._broadcast(("collect",), "state")
        stats = TrafficStats()
        log = DisseminationLog()
        fresh: dict[int, BaseNode] = {}
        kills = rejoins = 0
        have_churn = False
        for msg in replies:
            nodes, stats_parts, wlog, churn_parts = _loads(msg[1])
            for node in nodes:
                fresh[node.node_id] = node
            _merge_stats_parts(stats, stats_parts)
            log.merge(wlog)
            if churn_parts is not None:
                have_churn = True
                kills += churn_parts[0]
                rejoins += churn_parts[1]
        # adopt worker state *into* the parent's existing node objects
        # (pickle-state transplant), so every reference taken before the
        # run — harness lists, a joiner returned by join_node, test
        # fixtures — observes the collected state under a stable identity
        current = self._nodes
        merged: dict[int, BaseNode] = {}
        for nid in self._order:
            node = fresh.get(nid)
            if node is None:  # pragma: no cover - registry divergence
                continue
            held = current.get(nid)
            if held is not None and held is not node:
                held.__setstate__(node.__getstate__())
                node = held
            merged[nid] = node
        self._nodes = merged
        self._stats = stats
        self._log = log
        if have_churn and self.churn is not None:
            # surface aggregate churn counters on the parent's model copy
            self.churn.total_kills = kills
            self.churn.total_rejoins = rejoins
        self._dirty = False

    @property
    def stats(self) -> TrafficStats:
        """Merged traffic counters across shards (collected on demand)."""
        if self._stats is None or self._dirty:
            self.collect()
        return self._stats

    @property
    def log(self) -> DisseminationLog:
        """Merged dissemination log across shards (collected on demand)."""
        if self._log is None or self._dirty:
            self.collect()
        return self._log

    # -- shared-memory state plane ------------------------------------------- #

    def mailbox_stats(self) -> list[dict]:
        """Per-shard mailbox traffic: bytes staged via shm vs inline.

        Sender-side counts since start-up, in shard order — the
        measurement hook behind the mailbox-overhead numbers in
        ``PERFORMANCE.md``.  Each dict carries the chunk-transport
        counters plus a ``"wire"`` sub-dict: the active tier and the
        merged :class:`~repro.network.stats.WireStats` of the shard's
        outgoing link codecs (frame bytes per encoding tier, profile
        crossings by representation).
        """
        return [
            msg[1] for msg in self._broadcast(("link_stats",), "link_stats")
        ]

    def state_map(self) -> dict:
        """Arena placement of every shard-resident view.

        ``{node_id: {"rps"|"wup": (offset, alloc, n)}}`` for views still
        living in their shard's shared-memory arena.  Empty when shared
        memory is off or the legacy state plane is active.
        """
        if not self._arenas:
            return {}
        merged: dict = {}
        for msg in self._broadcast(("state_map",), "state_map"):
            merged.update(msg[1])
        return merged

    def view_columns(self, node_id: int, proto: str = "rps") -> tuple:
        """One view's live ``(ids, ts)`` columns, read zero-copy.

        Reads the shard arena mapping directly — no worker pickle of the
        view — returning defensive copies of the two columns.  Raises
        when the view is not arena-resident (shared memory off, legacy
        state plane, or the view outgrew its block).
        """
        placement = self.state_map().get(node_id, {}).get(proto)
        if placement is None:
            raise SimulationError(
                f"view {proto!r} of node {node_id} is not arena-resident"
            )
        offset, alloc, n = placement
        seg = self._arenas[shard_of(node_id, self.n_shards)]
        block = np.frombuffer(
            seg.buf, dtype=np.int64, count=3 * alloc, offset=offset
        ).reshape(3, alloc)
        return block[0, :n].copy(), block[1, :n].copy()

    # -- teardown ------------------------------------------------------------ #

    def _release_segs(self) -> None:
        # close and unlink in separate suppressions: a failed close (live
        # buffer export, platform quirk) must never leave the segment
        # registered — the unlink is what prevents a leak
        for seg in self._own_segs:
            with suppress(Exception):  # live export / double close
                seg.close()
            with suppress(Exception):  # already unlinked
                seg.unlink()
        self._own_segs = []

    def close(self) -> None:
        """Stop the workers and release shared-memory segments.

        Safe against abnormal worker exits: a worker that died mid-phase
        (SIGKILL, crash fault) is skipped by the escalation chain and
        every parent-owned segment is unlinked regardless — the engine
        never leaves shared memory behind.
        """
        if self._closed:
            return
        self._closed = True
        self._teardown_workers()

    def __enter__(self) -> "ShardedCycleEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering dependent
        with suppress(Exception):
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCycleEngine(shards={self.n_shards}, "
            f"nodes={len(self._nodes)}, now={self.now}, "
            f"pending={self._pending})"
        )


def make_engine(
    nodes: Iterable[BaseNode],
    schedule: PublicationSchedule,
    transport: Transport | None = None,
    streams: RngStreams | None = None,
    churn: object | None = None,
    run_config=None,
) -> "CycleEngine | ShardedCycleEngine":
    """Construct the engine the current ``REPRO_SHARDS`` setting asks for.

    The facade factory systems go through: with the gate at its default
    of 1 this *is* ``CycleEngine(...)`` — no worker, no shared memory, no
    behavioural delta of any kind.  Above 1 it returns a
    :class:`ShardedCycleEngine` when the configuration supports sharding,
    and falls back to the single-process engine (with a warning) when it
    does not: lossy/latency transports (per-message RNG draws have no
    deterministic cross-process order) or populations too small to give
    every shard at least two nodes.

    *run_config* (a :class:`repro.api.RunConfig`, duck-typed on
    ``apply()``) pins the whole gate matrix for the construction — the
    workers snapshot the gates at spawn, so the engine keeps the config's
    behaviour after the context exits.
    """
    if run_config is not None:
        with run_config.apply():
            return make_engine(
                nodes, schedule, transport=transport, streams=streams, churn=churn
            )
    n = shard_count()
    nodes = list(nodes)
    if n <= 1:
        return CycleEngine(
            nodes, schedule, transport=transport, streams=streams, churn=churn
        )
    tr = transport if transport is not None else PerfectTransport()
    if not tr.is_lossless():
        warnings.warn(
            "REPRO_SHARDS>1 requires a lossless transport; "
            "running single-process",
            RuntimeWarning,
            stacklevel=2,
        )
        return CycleEngine(nodes, schedule, transport=tr, streams=streams, churn=churn)
    if len(nodes) < 2 * n:
        warnings.warn(
            f"population of {len(nodes)} is too small for {n} shards; "
            "running single-process",
            RuntimeWarning,
            stacklevel=2,
        )
        return CycleEngine(nodes, schedule, transport=tr, streams=streams, churn=churn)
    return ShardedCycleEngine(
        nodes,
        schedule,
        transport=tr,
        streams=streams,
        churn=churn,
        n_shards=n,
    )
