"""The cross-shard mailbox payload codec: a columnar delta wire.

Every cross-shard gossip payload used to cross as one interned pickle
(PR 5/6): NamedTuple messages, ``ViewEntry`` tuples and address strings
re-framed by the pickler every cycle, with only the profile *snapshots*
deduplicated per link.  At four shards ~75% of gossip crosses a link, so
that framing tax dominated the mailbox bytes.

This module replaces the payload encoding with three tiers, selected by
``REPRO_SHARD_WIRE`` (default ``delta``):

``pickle``
    The PR 5/6 wire, verbatim: one pickle per mailbox with per-link
    snapshot interning (:func:`_dumps_interned` / :func:`_loads_interned`).
    Kept as the reference tier the equivalence tests sweep against.

``columns``
    Messages ship as flat typed blocks — one ``int64`` row table
    (sender, target, kind, flags, wire, entry count), one ``(ids, ts,
    wire)`` entry table sliced straight off the sender's view columns,
    and per-profile *uid references*.  A profile's canonical state still
    crosses once per link (as packed ``uint64``/``float64`` columns);
    every later crossing is 8 bytes.  ``ViewEntry`` tuples, addresses and
    message objects are rebuilt receiver-side — the descriptor address is
    a pure function of the node id (see ``RpsProtocol``), so it never
    travels.

``delta``
    ``columns`` plus first-class profile deltas: a profile crossing a
    link whose per-node base store already holds an older snapshot of
    the same node ships only ``(base_uid, set-ops, removals)`` — the
    journal-shaped diff between the two score dicts.  A snapshot usually
    differs from its predecessor by one opinion, so re-rating traffic
    collapses from full profiles to a few dozen bytes.

Both columnar tiers deflate the frame body when that wins (the header's
phase byte carries the flag; see ``_PHASE_DEFLATE``) — the whole point
of a columnar layout is that it lines up similar bytes, so cheap
DEFLATE does the last multiple of the byte reduction that no amount of
structural slimming reaches (int64 tables of small values are mostly
zero bytes; the item-phase pickles repeat class/field framing every
row).  The legacy ``pickle`` tier is never compressed: it is the
PR 5/6 wire kept verbatim as the comparison baseline.  Per-section
:class:`~repro.network.stats.WireStats` counters (``column_bytes``,
``full_bytes``, ``delta_bytes``, ``pickle_bytes``) account *raw*
section sizes so the structural/compression contributions stay
separately visible; ``frame_bytes`` (and the mailbox byte totals it
feeds) is the bytes that actually cross.

Wire-format invariants:

* **Bitwise equivalence across tiers.**  Score dicts round-trip with
  their exact float bits *and* their exact insertion order (a delta
  applies removals then appends, reproducing the sender's dict order for
  any same-timeline base), norms/uids/versions travel verbatim, and the
  rebuilt messages carry the sender's exact column block — so a run's
  final state is bit-identical whichever tier carried it.
* **Deterministic lock-step tables.**  Sender and receiver grow their
  per-link tables identically (one registry entry per first-crossing
  uid, one base-store entry per node under a shared freshest-wins rule),
  so the same cap rule fires at the same cycle on both ends — exactly
  the PR 5 interning discipline, now over two stores.
* **Fault-plane transparency.**  Frames are opaque bytes to the chunk
  protocol (CRC/ack/retransmit wraps them unchanged), and both codec
  ends pickle into checkpoints, so rollback-replay reproduces delta
  frames bit-for-bit.
* **Value-driven fallbacks.**  Rows or profiles the fast path cannot
  express (foreign payload types, custom addresses, exotic score keys)
  fall back to an embedded pickle, decided from the values alone —
  identical on replay.

A frame that cannot be decoded (missing uid, missing delta base) raises
— the link tables fell out of lock-step and corrupting a merge silently
would be far worse.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.core.gates import env_choice
from repro.network.stats import WireStats

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.profiles import FrozenProfile

__all__ = [
    "WIRE_TIERS",
    "WIRE_FORMAT_VERSION",
    "wire_tier",
    "set_wire_tier",
    "shard_wire",
    "LinkEncoder",
    "LinkDecoder",
]

#: bump when the frame layout changes; decoders reject other versions
WIRE_FORMAT_VERSION = 1

WIRE_TIERS = ("pickle", "columns", "delta")

#: codec treatment of every NamedTuple that can cross a shard mailbox.
#: A new wire-visible NamedTuple must be added here with a conscious
#: decision (lint rule RL007 enforces it): ``columns`` rides the typed
#: int64 fast path below, ``overflow`` crosses in the value-driven
#: pickled overflow sections, and ``embedded`` never travels standalone
#: (it is reconstructed from another message's payload).
WIRE_MESSAGE_REGISTRY: dict[str, str] = {
    "RpsMessage": "columns",
    "ClusteringMessage": "columns",
    "ViewEntry": "columns",
    "Envelope": "overflow",
    "ProfileEntry": "embedded",
}


_wire_tier = env_choice("REPRO_SHARD_WIRE", "delta", WIRE_TIERS)


def wire_tier() -> str:
    """The active cross-shard wire tier (``pickle``/``columns``/``delta``)."""
    return _wire_tier


def set_wire_tier(tier: str) -> str:
    """Select the wire tier; returns the previous setting.

    Consulted when a sharded engine is *constructed* — each link codec
    pins the tier for its lifetime, so both ends of every link always
    agree (the setting crosses to the workers with the gate snapshot).
    """
    global _wire_tier
    if tier not in WIRE_TIERS:
        raise ValueError(
            f"unknown wire tier {tier!r} (expected one of {WIRE_TIERS})"
        )
    previous = _wire_tier
    _wire_tier = tier
    return previous


@contextmanager
def shard_wire(tier: str) -> Iterator[None]:
    """Context manager pinning the wire tier, restoring on exit."""
    previous = set_wire_tier(tier)
    try:
        yield
    finally:
        set_wire_tier(previous)


# --------------------------------------------------------------------------- #
# the pickle tier (PR 5/6 interned codec, moved here verbatim)                #
# --------------------------------------------------------------------------- #


def _dumps_interned(obj: object, sent: set) -> bytes:
    """Pickle *obj* with per-link profile interning (sender side).

    Profile snapshots are the bulk of every gossip blob, and most of them
    are re-shipped unchanged cycle after cycle (a profile only changes
    when its user rates an item).  Snapshots are immutable and carry a
    process-unique ``uid``, so a link only ever needs to move each
    snapshot's bytes **once**: the first crossing embeds the full
    canonical state, every later crossing is a uid reference resolved
    from the receiver's link registry (:func:`_loads_interned`).
    """
    from repro.core.profiles import FrozenProfile
    from repro.gossip.views import ViewEntry

    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL)

    def persistent_id(o: object) -> tuple[Any, ...] | None:
        klass = type(o)
        if klass is FrozenProfile:
            uid = o.uid
            if uid in sent:
                return (1, uid)
            sent.add(uid)
            return (0, uid, o.__getstate__())
        if klass is ViewEntry and type(o[2]) is FrozenProfile:
            # a descriptor is fully determined by (node id, timestamp,
            # profile snapshot): the address is a pure function of the
            # node id, so the triple is a sound identity for re-shipped
            # descriptors (the ints/uid make the key hashable and small)
            key = (o[0], o[3], o[2].uid)
            if key in sent:
                return (3, key)
            sent.add(key)
            return (2, key, tuple(o))
        return None

    pickler.persistent_id = persistent_id
    pickler.dump(obj)
    return buf.getvalue()


def _loads_interned(blob: bytes, registry: dict) -> object:
    """Unpickle a blob produced by :func:`_dumps_interned` (receiver side).

    First-crossing snapshots are constructed from their embedded state
    and registered under their uid; reference crossings resolve from the
    registry.  A missing uid is a protocol error (the link tables fell
    out of lock-step) and raises ``KeyError`` — corrupting a merge
    silently would be far worse.
    """
    from repro.core.profiles import FrozenProfile
    from repro.gossip.views import ViewEntry

    unpickler = pickle.Unpickler(io.BytesIO(blob))

    def persistent_load(pid: tuple[Any, ...]) -> Any:
        tag = pid[0]
        if tag == 1 or tag == 3:
            return registry[pid[1]]
        if tag == 0:
            profile = FrozenProfile.__new__(FrozenProfile)
            profile.__setstate__(pid[2])
            registry[pid[1]] = profile
            return profile
        entry = ViewEntry._make(pid[2])
        registry[pid[1]] = entry
        return entry

    unpickler.persistent_load = persistent_load
    return unpickler.load()


# --------------------------------------------------------------------------- #
# frame layout                                                                #
# --------------------------------------------------------------------------- #

_MAGIC = 0xC3D7
_HEADER = struct.Struct("<HBBB")  # magic, format version, phase, n_sections

_PHASE_GOSSIP = 0
_PHASE_ITEMS = 1
_PHASES = {"gossip": _PHASE_GOSSIP, "items": _PHASE_ITEMS}

#: high bit of the header's phase byte: the body is deflate-compressed.
#: Columnar layouts put similar bytes side by side (int64 tables of
#: small values, runs of repeated tags/uids), which is exactly the shape
#: cheap DEFLATE thrives on — so the columnar tiers compress every frame
#: body and keep it only when it wins.  ``zlib.compress`` at a fixed
#: level is deterministic, and the keep-iff-smaller rule is a pure
#: function of the payload bytes, so replayed frames stay bit-identical.
_PHASE_DEFLATE = 0x80
_DEFLATE_LEVEL = 6

#: per-entry profile representation tags
_REF, _FULL, _DELTA, _PICKLED = 0, 1, 2, 3

#: gossip row flags
_F_REQUEST = 1  # message is a request (else a reply)
_F_COLS = 2  # the sender's column block travelled; rebuild cols
_F_OVERFLOW = 4  # row is in the embedded pickle, not the tables
_F_CLUSTERING = 8  # payload class is ClusteringMessage (else RpsMessage)

_MAX_I64 = (1 << 63) - 1

_I64 = np.dtype(np.int64)
_U64 = np.dtype(np.uint64)
_F64 = np.dtype(np.float64)
_U8 = np.dtype(np.uint8)



def _pack_frame(phase: int, sections: list[bytes]) -> bytes:
    lens = np.fromiter(
        (len(s) for s in sections), dtype=_I64, count=len(sections)
    )
    body = b"".join((lens.tobytes(), *sections))
    packed = zlib.compress(body, _DEFLATE_LEVEL)
    if len(packed) < len(body):
        phase |= _PHASE_DEFLATE
        body = packed
    return (
        _HEADER.pack(_MAGIC, WIRE_FORMAT_VERSION, phase, len(sections)) + body
    )


def _unpack_frame(blob: bytes) -> tuple[int, list]:
    magic, version, phase, n_sections = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC or version != WIRE_FORMAT_VERSION:
        raise ValueError(
            f"bad wire frame header (magic {magic:#x}, version {version}; "
            f"this codec speaks version {WIRE_FORMAT_VERSION})"
        )
    if phase & _PHASE_DEFLATE:
        phase &= ~_PHASE_DEFLATE
        body = zlib.decompress(bytes(memoryview(blob)[_HEADER.size :]))
    else:
        body = blob[_HEADER.size :]
    lens = np.frombuffer(body, dtype=_I64, count=n_sections)
    offset = 8 * n_sections
    mv = memoryview(body)
    sections = []
    for length in lens.tolist():
        sections.append(mv[offset : offset + length])
        offset += length
    return phase, sections


def _node_address(nid: int, cache: dict) -> str:
    """The descriptor address for *nid* — must mirror ``RpsProtocol``."""
    addr = cache.get(nid)
    if addr is None:
        addr = f"10.0.{nid >> 8 & 255}.{nid & 255}"
        cache[nid] = addr
    return addr


def _full_columns(scores: dict) -> tuple[np.ndarray, np.ndarray] | None:
    """Pack a score dict as (uint64 ids, float64 values) in dict order.

    Returns ``None`` when a key cannot round-trip through ``uint64``
    (the caller falls back to an embedded pickle of the profile state).
    Order matters: the receiver rebuilds the dict with ``zip``, so the
    sender's insertion order is preserved bit-for-bit.
    """
    n = len(scores)
    for k in scores:
        if type(k) is not int or k < 0:
            return None
    try:
        ids = np.fromiter(scores.keys(), dtype=_U64, count=n)
        vals = np.fromiter(scores.values(), dtype=_F64, count=n)
    except (TypeError, ValueError, OverflowError):
        return None
    return ids, vals


def _delta_columns(
    base: dict, new: dict
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Columnarised :func:`repro.core.profiles.score_delta`, or ``None``.

    ``None`` when the diff is not worth shipping or a touched key cannot
    round-trip through ``uint64`` (the caller falls back to a full or
    pickled representation).
    """
    from repro.core.profiles import score_delta

    diff = score_delta(base, new)
    if diff is None:
        return None
    set_ids, set_vals, removed = diff
    for k in set_ids:
        if type(k) is not int or k < 0:
            return None
    for k in removed:
        if type(k) is not int or k < 0:
            return None
    try:
        ids = np.fromiter(set_ids, dtype=_U64, count=len(set_ids))
        vals = np.fromiter(set_vals, dtype=_F64, count=len(set_vals))
        rem = np.fromiter(removed, dtype=_U64, count=len(removed))
    except (TypeError, ValueError, OverflowError):  # pragma: no cover
        return None
    return ids, vals, rem


def _rebuild_profile(
    scores: dict[int, float],
    norm: float,
    is_binary: bool,
    uid: int,
    version: int,
    wire_cache: int | None,
) -> FrozenProfile:
    from repro.core.profiles import FrozenProfile

    profile = FrozenProfile.__new__(FrozenProfile)
    profile.__setstate__(
        {
            "scores": scores,
            "norm": norm,
            "is_binary": is_binary,
            "uid": uid,
            "version": version,
            "wire_cache": wire_cache,
        }
    )
    return profile


# --------------------------------------------------------------------------- #
# the link codec                                                              #
# --------------------------------------------------------------------------- #


class LinkEncoder:
    """Sender-side state of one directed cross-shard link.

    Holds the uid set of snapshots already shipped (reference crossings)
    and, on the ``delta`` tier, the per-node base store the next delta
    diffs against.  Both grow in lock-step with the peer
    :class:`LinkDecoder` — see :meth:`cap_reset`.  Picklable, so
    checkpoints capture the wire state and rollback-replay reproduces
    every frame bit-for-bit.
    """

    __slots__ = ("tier", "stats", "_sent", "_bases", "_addrs")

    def __init__(self, tier: str | None = None) -> None:
        tier = wire_tier() if tier is None else tier
        if tier not in WIRE_TIERS:
            raise ValueError(f"unknown wire tier {tier!r}")
        self.tier = tier
        self.stats = WireStats()
        #: uids (and, pickle tier, entry keys) already shipped
        self._sent: set = set()
        #: freshest shipped snapshot per node id (delta bases)
        self._bases: dict = {}
        #: node id -> rebuilt address string (validation memo; not synced)
        self._addrs: dict = {}

    def __getstate__(self) -> dict:
        return {
            "tier": self.tier,
            "stats": self.stats,
            "sent": self._sent,
            "bases": self._bases,
        }

    def __setstate__(self, state: dict) -> None:
        self.tier = state["tier"]
        self.stats = state["stats"]
        self._sent = state["sent"]
        self._bases = state["bases"]
        self._addrs = {}

    def table_size(self) -> int:
        return len(self._sent)

    def cap_reset(self, cap: int) -> bool:
        """Apply the deterministic table bound; returns whether it fired.

        Both ends of a link grow their tables identically (one ``_sent``
        entry per first-crossing uid, mirrored by one registry entry; one
        base-store entry per first-seen node, updated under a shared
        freshest-wins rule), so the same size rule fires at the same
        cycle top on the sender and the receiver.
        """
        if len(self._sent) > cap:
            self._sent.clear()
            self._bases.clear()
            self.stats.cap_resets += 1
            return True
        return False

    # -- encoding ----------------------------------------------------------- #

    def encode(self, rows: list, phase: str) -> bytes:
        """Encode one mailbox flush (*rows*) for *phase* into one blob."""
        stats = self.stats
        if self.tier == "pickle":
            blob = _dumps_interned(rows, self._sent)
        elif phase == "items":
            blob = self._encode_items(rows)
        else:
            blob = self._encode_gossip(rows)
        stats.frames += 1
        stats.frame_bytes += len(blob)
        stats.rows += len(rows)
        return blob

    def _encode_gossip(self, rows: list) -> bytes:
        from repro.core.profiles import FrozenProfile
        from repro.gossip.rps import RpsMessage
        from repro.gossip.vicinity import ClusteringMessage
        from repro.gossip.views import ViewEntry
        from repro.network.message import MessageKind

        sent = self._sent
        bases = self._bases
        addrs = self._addrs
        stats = self.stats
        want_delta = self.tier == "delta"

        row_vals: list = []
        blocks: list = []
        tags = bytearray()
        uids: list = []
        full_meta: list = []
        full_norms: list = []
        full_ids: list = []
        full_scores: list = []
        delta_meta: list = []
        delta_norms: list = []
        delta_set_ids: list = []
        delta_set_scores: list = []
        delta_removed: list = []
        overflow: list = []
        pickled_profiles: list = []

        for row in rows:
            a, b, kind, msg = row
            # -- fast-path eligibility (value-driven, replay-identical) -- #
            mcls = type(msg)
            if mcls is RpsMessage:
                flags = 0
            elif mcls is ClusteringMessage:
                flags = _F_CLUSTERING
            else:
                flags = -1
            if kind is MessageKind.RPS:
                kcode = 0
            elif kind is MessageKind.WUP:
                kcode = 1
            else:
                kcode = -1
            ok = flags >= 0 and kcode >= 0
            entries = msg.entries if ok else ()
            ok = ok and type(entries) is tuple
            if ok:
                s = msg.sender
                w = msg.wire
                ok = (
                    isinstance(a, int)
                    and isinstance(b, int)
                    and isinstance(s, int)
                    and 0 <= a <= _MAX_I64
                    and 0 <= b <= _MAX_I64
                    and -_MAX_I64 <= s <= _MAX_I64
                    and (
                        w is None
                        or (isinstance(w, int) and 0 <= w <= _MAX_I64)
                    )
                )
            if ok:
                for e in entries:
                    if (
                        type(e) is not ViewEntry
                        or type(e[2]) is not FrozenProfile
                        or not isinstance(e[0], int)
                        or not isinstance(e[3], int)
                        or not 0 <= e[0] <= _MAX_I64
                        or not -_MAX_I64 <= e[3] <= _MAX_I64
                        or e[1] != _node_address(e[0], addrs)
                    ):
                        ok = False
                        break
            if not ok:
                # whole row rides the embedded pickle (plain, un-interned:
                # rare, and it must not disturb the lock-step tables)
                row_vals.append((0, 0, 0, 0, _F_OVERFLOW, -1, 0))
                overflow.append(row)
                stats.overflow_rows += 1
                continue

            # -- entry table: the sender's columns, verbatim when present -- #
            k = len(entries)
            cols = msg.cols
            if cols is not None:
                inc, stride, count = cols
                if (
                    isinstance(inc, np.ndarray)
                    and inc.dtype == _I64
                    and inc.shape == (3, k)
                    and stride == k
                    and count == k
                ):
                    flags |= _F_COLS
                    blocks.append(inc)
                else:  # pragma: no cover - foreign cols shape
                    cols = None
            if cols is None and k:
                blk = np.empty((3, k), dtype=_I64)
                for i, e in enumerate(entries):
                    blk[0, i] = e[0]
                    blk[1, i] = e[3]
                    blk[2, i] = -1
                blocks.append(blk)
            if msg.is_request:
                flags |= _F_REQUEST
            row_vals.append(
                (a, b, msg.sender, kcode, flags, -1 if w is None else w, k)
            )
            stats.entries += k

            # -- profile references --------------------------------------- #
            for e in entries:
                prof = e[2]
                uid = prof.uid
                uids.append(uid)
                if uid in sent:
                    tags.append(_REF)
                    stats.ref_profiles += 1
                    continue
                sent.add(uid)
                nid = e[0]
                base = bases.get(nid)
                encoded = False
                if (
                    want_delta
                    and base is not None
                    and base.uid != uid
                    and base.is_binary == prof.is_binary
                    and base.version <= prof.version
                ):
                    diff = _delta_columns(base.scores, prof.scores)
                    if diff is not None:
                        ids_arr, vals_arr, rem_arr = diff
                        wc = prof.wire_cache
                        delta_meta.append(
                            (
                                base.uid,
                                prof.version,
                                -1 if wc is None else wc,
                                1 if prof.is_binary else 0,
                                ids_arr.size,
                                rem_arr.size,
                            )
                        )
                        delta_norms.append(prof.norm)
                        delta_set_ids.append(ids_arr)
                        delta_set_scores.append(vals_arr)
                        delta_removed.append(rem_arr)
                        tags.append(_DELTA)
                        stats.delta_profiles += 1
                        encoded = True
                if not encoded:
                    packed = _full_columns(prof.scores)
                    if packed is not None:
                        ids_arr, vals_arr = packed
                        wc = prof.wire_cache
                        full_meta.append(
                            (
                                prof.version,
                                -1 if wc is None else wc,
                                1 if prof.is_binary else 0,
                                ids_arr.size,
                            )
                        )
                        full_norms.append(prof.norm)
                        full_ids.append(ids_arr)
                        full_scores.append(vals_arr)
                        tags.append(_FULL)
                        stats.full_profiles += 1
                    else:
                        pickled_profiles.append(prof.__getstate__())
                        tags.append(_PICKLED)
                        stats.pickled_profiles += 1
                # freshest-wins base store; the decoder applies the same
                # rule to its reconstruction, keeping the ends in lock-step
                if base is None or base.version <= prof.version:
                    bases[nid] = prof

        def _cat(parts: list[np.ndarray], dtype: np.dtype) -> bytes:
            if not parts:
                return b""
            if len(parts) == 1:
                return np.ascontiguousarray(parts[0]).tobytes()
            return np.concatenate(parts).tobytes()

        row_tab = np.array(row_vals, dtype=_I64).tobytes() if row_vals else b""
        if blocks:
            ent_tab = (
                np.concatenate(blocks, axis=1)
                if len(blocks) > 1
                else np.ascontiguousarray(blocks[0])
            ).tobytes()
        else:
            ent_tab = b""
        pick = (
            pickle.dumps(
                (overflow, pickled_profiles),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if overflow or pickled_profiles
            else b""
        )
        sections = [
            row_tab,
            ent_tab,
            bytes(tags),
            np.fromiter(uids, dtype=_I64, count=len(uids)).tobytes(),
            np.array(full_meta, dtype=_I64).tobytes() if full_meta else b"",
            np.fromiter(
                full_norms, dtype=_F64, count=len(full_norms)
            ).tobytes(),
            _cat(full_ids, _U64),
            _cat(full_scores, _F64),
            np.array(delta_meta, dtype=_I64).tobytes() if delta_meta else b"",
            np.fromiter(
                delta_norms, dtype=_F64, count=len(delta_norms)
            ).tobytes(),
            _cat(delta_set_ids, _U64),
            _cat(delta_set_scores, _F64),
            _cat(delta_removed, _U64),
            pick,
        ]
        stats.column_bytes += len(row_tab) + len(ent_tab)
        stats.full_bytes += sum(len(sections[i]) for i in (4, 5, 6, 7))
        stats.delta_bytes += sum(len(sections[i]) for i in (8, 9, 10, 11, 12))
        stats.pickle_bytes += len(pick)
        return _pack_frame(_PHASE_GOSSIP, sections)

    def _encode_items(self, rows: list) -> bytes:
        # item rows: (target_id, sender_id, copy, via_like); the copies
        # carry mutable per-path ItemProfiles — no snapshot to intern, so
        # they cross as one plain pickle behind the int columns
        row_vals: list = []
        copies: list = []
        overflow: list = []
        for row in rows:
            target, sender, copy, via_like = row
            if (
                isinstance(target, int)
                and isinstance(sender, int)
                and 0 <= target <= _MAX_I64
                and 0 <= sender <= _MAX_I64
            ):
                row_vals.append((target, sender, 1 if via_like else 0, 0))
                copies.append(copy)
            else:
                row_vals.append((0, 0, 0, _F_OVERFLOW))
                overflow.append(row)
                self.stats.overflow_rows += 1
        row_tab = np.array(row_vals, dtype=_I64).tobytes() if row_vals else b""
        pick = pickle.dumps(
            (copies, overflow), protocol=pickle.HIGHEST_PROTOCOL
        )
        self.stats.column_bytes += len(row_tab)
        self.stats.pickle_bytes += len(pick)
        return _pack_frame(_PHASE_ITEMS, [row_tab, pick])


class LinkDecoder:
    """Receiver-side state of one directed cross-shard link.

    Mirrors the peer :class:`LinkEncoder`: a uid registry of received
    snapshots and the per-node base store deltas resolve against, grown
    under the identical rules so the shared cap fires in lock-step.
    """

    __slots__ = ("tier", "_registry", "_bases", "_addrs")

    def __init__(self, tier: str | None = None) -> None:
        tier = wire_tier() if tier is None else tier
        if tier not in WIRE_TIERS:
            raise ValueError(f"unknown wire tier {tier!r}")
        self.tier = tier
        #: uid (and, pickle tier, entry key) -> received object
        self._registry: dict = {}
        #: freshest received snapshot per node id (delta bases)
        self._bases: dict = {}
        #: node id -> rebuilt address string (one shared str per node)
        self._addrs: dict = {}

    def __getstate__(self) -> dict:
        return {
            "tier": self.tier,
            "registry": self._registry,
            "bases": self._bases,
        }

    def __setstate__(self, state: dict) -> None:
        self.tier = state["tier"]
        self._registry = state["registry"]
        self._bases = state["bases"]
        self._addrs = {}

    def table_size(self) -> int:
        return len(self._registry)

    def cap_reset(self, cap: int) -> bool:
        """The receiver half of :meth:`LinkEncoder.cap_reset`."""
        if len(self._registry) > cap:
            self._registry.clear()
            self._bases.clear()
            return True
        return False

    # -- decoding ----------------------------------------------------------- #

    def decode(self, blob: bytes) -> list:
        """Decode one mailbox blob back into its row list."""
        if self.tier == "pickle":
            return _loads_interned(blob, self._registry)
        phase, sections = _unpack_frame(blob)
        if phase == _PHASE_ITEMS:
            return self._decode_items(sections)
        return self._decode_gossip(sections)

    def _decode_gossip(self, sections: list) -> list:
        from repro.core.profiles import apply_score_delta
        from repro.gossip.rps import RpsMessage
        from repro.gossip.vicinity import ClusteringMessage
        from repro.gossip.views import ViewEntry
        from repro.network.message import MessageKind

        row_tab = np.frombuffer(sections[0], dtype=_I64).reshape(-1, 7)
        ent_tab = np.frombuffer(sections[1], dtype=_I64).reshape(3, -1)
        tags = np.frombuffer(sections[2], dtype=_U8).tolist()
        uids = np.frombuffer(sections[3], dtype=_I64).tolist()
        full_meta = np.frombuffer(sections[4], dtype=_I64).reshape(-1, 4)
        full_norms = np.frombuffer(sections[5], dtype=_F64)
        full_ids = np.frombuffer(sections[6], dtype=_U64)
        full_scores = np.frombuffer(sections[7], dtype=_F64)
        delta_meta = np.frombuffer(sections[8], dtype=_I64).reshape(-1, 6)
        delta_norms = np.frombuffer(sections[9], dtype=_F64)
        delta_set_ids = np.frombuffer(sections[10], dtype=_U64)
        delta_set_scores = np.frombuffer(sections[11], dtype=_F64)
        delta_removed = np.frombuffer(sections[12], dtype=_U64)
        overflow: tuple = ()
        pickled_profiles: tuple = ()
        if len(sections[13]):
            overflow, pickled_profiles = pickle.loads(sections[13])

        registry = self._registry
        bases = self._bases
        addrs = self._addrs
        kinds = (MessageKind.RPS, MessageKind.WUP)
        ids_all = ent_tab[0].tolist()
        ts_all = ent_tab[1].tolist()

        out: list = []
        ei = 0  # entry cursor
        fi = 0  # full-profile cursor
        f_off = 0  # full ids/scores offset
        di = 0  # delta cursor
        d_set = 0  # delta set-op offset
        d_rem = 0  # delta removal offset
        ov = 0  # overflow cursor
        pi = 0  # pickled-profile cursor
        for a, b, s, kcode, flags, w, k in row_tab.tolist():
            if flags & _F_OVERFLOW:
                out.append(overflow[ov])
                ov += 1
                continue
            lo = ei
            ei += k
            entries: list = []
            for i in range(lo, ei):
                uid = uids[i]
                tag = tags[i]
                nid = ids_all[i]
                if tag == _REF:
                    prof = registry[uid]
                else:
                    if tag == _FULL:
                        meta = full_meta[fi]
                        n_sc = int(meta[3])
                        scores = dict(
                            zip(
                                full_ids[f_off : f_off + n_sc].tolist(),
                                full_scores[f_off : f_off + n_sc].tolist(),
                                strict=True,
                            )
                        )
                        f_off += n_sc
                        wc = int(meta[1])
                        prof = _rebuild_profile(
                            scores,
                            float(full_norms[fi]),
                            bool(meta[2]),
                            uid,
                            int(meta[0]),
                            None if wc < 0 else wc,
                        )
                        fi += 1
                    elif tag == _DELTA:
                        meta = delta_meta[di]
                        base = bases.get(nid)
                        if base is None or base.uid != int(meta[0]):
                            raise KeyError(
                                f"wire delta for node {nid} names base uid "
                                f"{int(meta[0])} this link does not hold "
                                "(tables out of lock-step)"
                            )
                        n_sets = int(meta[4])
                        n_removed = int(meta[5])
                        scores = apply_score_delta(
                            base.scores,
                            delta_set_ids[d_set : d_set + n_sets].tolist(),
                            delta_set_scores[d_set : d_set + n_sets].tolist(),
                            delta_removed[d_rem : d_rem + n_removed].tolist(),
                        )
                        d_set += n_sets
                        d_rem += n_removed
                        wc = int(meta[2])
                        prof = _rebuild_profile(
                            scores,
                            float(delta_norms[di]),
                            bool(meta[3]),
                            uid,
                            int(meta[1]),
                            None if wc < 0 else wc,
                        )
                        di += 1
                    else:  # _PICKLED
                        prof = _rebuild_profile(
                            **{
                                key: pickled_profiles[pi][key]
                                for key in (
                                    "scores",
                                    "norm",
                                    "is_binary",
                                    "uid",
                                    "version",
                                    "wire_cache",
                                )
                            }
                        )
                        pi += 1
                    registry[uid] = prof
                    base = bases.get(nid)
                    if base is None or base.version <= prof.version:
                        bases[nid] = prof
                entries.append(
                    ViewEntry(nid, _node_address(nid, addrs), prof, ts_all[i])
                )
            cols = None
            if flags & _F_COLS and k:
                # one contiguous copy per message: the kernel-merge fast
                # path reads the block by address and the frame buffer is
                # read-only
                cols = (np.ascontiguousarray(ent_tab[:, lo:ei]), k, k)
            mcls = ClusteringMessage if flags & _F_CLUSTERING else RpsMessage
            msg = mcls(
                s,
                tuple(entries),
                bool(flags & _F_REQUEST),
                None if w < 0 else w,
                cols,
            )
            out.append((a, b, kinds[kcode], msg))
        return out

    def _decode_items(self, sections: list) -> list:
        row_tab = np.frombuffer(sections[0], dtype=_I64).reshape(-1, 4)
        copies, overflow = pickle.loads(sections[1])
        out: list = []
        ci = 0
        ov = 0
        for target, sender, via_like, flags in row_tab.tolist():
            if flags & _F_OVERFLOW:
                out.append(overflow[ov])
                ov += 1
            else:
                out.append((target, sender, copies[ci], bool(via_like)))
                ci += 1
        return out
