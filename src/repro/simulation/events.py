"""Dissemination event logs.

Every experiment metric in the paper is a function of two event streams:

* **deliveries** — the first receipt of an item by a node (duplicates are
  dropped by the SIR model and only counted in aggregate);
* **forwards** — each forwarding action, tagged with whether the forwarder
  liked the item (BEEP's amplification path) or disliked it (the
  serendipity path).

To keep memory bounded at paper scale (hundreds of thousands of events), the
log is a struct-of-arrays: parallel Python lists of scalars, converted to
NumPy arrays once, lazily, when analyses begin.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DisseminationLog", "FaultLog"]


class FaultLog:
    """Struct-of-arrays record of fault-plane activity in one run.

    One row per noteworthy event — an injected fault, a detected worker
    death, a recovery, a degraded window — so post-mortems (and the
    RUNBOOK's diagnosis steps) can reconstruct what the supervisor did
    and when.  Columns:

    - ``cycle`` — the parent engine clock when the event was recorded,
    - ``shard`` — the shard concerned (-1 for run-wide events),
    - ``kind`` — a short tag (``"crash"``, ``"worker_death"``,
      ``"recovery"``, ``"degraded"``, ``"checkpoint"``, ...),
    - ``detail`` — free-form context string.
    """

    def __init__(self) -> None:
        self.cycle: list[int] = []
        self.shard: list[int] = []
        self.kind: list[str] = []
        self.detail: list[str] = []

    def record(self, cycle: int, shard: int, kind: str, detail: str = "") -> None:
        """Append one event row."""
        self.cycle.append(int(cycle))
        self.shard.append(int(shard))
        self.kind.append(kind)
        self.detail.append(detail)

    def merge(self, other: "FaultLog") -> None:
        """Append every event of *other*, in *other*'s order."""
        self.cycle.extend(other.cycle)
        self.shard.extend(other.shard)
        self.kind.extend(other.kind)
        self.detail.extend(other.detail)

    def events(self) -> list[tuple[int, int, str, str]]:
        """All rows as ``(cycle, shard, kind, detail)`` tuples."""
        return list(zip(self.cycle, self.shard, self.kind, self.detail, strict=True))

    def count(self, kind: str) -> int:
        """Number of rows with the given kind tag."""
        return self.kind.count(kind)

    def __len__(self) -> int:
        return len(self.cycle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLog(events={len(self.cycle)})"


class DisseminationLog:
    """Struct-of-arrays record of one simulation run.

    Delivery columns (one row per *first* receipt):

    - ``d_item`` — dense item index (workload order, not the 8-byte id),
    - ``d_node`` — receiving node id,
    - ``d_cycle`` — receipt cycle,
    - ``d_hops`` — hops travelled from the source (0 for the publisher),
    - ``d_dislikes`` — the copy's dislike counter at receipt,
    - ``d_liked`` — whether the receiver liked the item,
    - ``d_via_like`` — whether the incoming copy was forwarded by a liker.

    Forward columns (one row per forwarding action):

    - ``f_item`` — dense item index,
    - ``f_node`` — forwarding node id,
    - ``f_cycle`` — cycle of the action,
    - ``f_hops`` — the forwarder's distance from the source,
    - ``f_liked`` — like-path (amplification) vs dislike-path forward,
    - ``f_targets`` — number of targets of this action (the realised
      fanout).
    """

    def __init__(self) -> None:
        self.d_item: list[int] = []
        self.d_node: list[int] = []
        self.d_cycle: list[int] = []
        self.d_hops: list[int] = []
        self.d_dislikes: list[int] = []
        self.d_liked: list[bool] = []
        self.d_via_like: list[bool] = []

        self.f_item: list[int] = []
        self.f_node: list[int] = []
        self.f_cycle: list[int] = []
        self.f_hops: list[int] = []
        self.f_liked: list[bool] = []
        self.f_targets: list[int] = []

        #: duplicate receipts, dropped per SIR (aggregate count only)
        self.duplicates: int = 0
        self._arrays: dict[str, np.ndarray] | None = None

    # -- recording ----------------------------------------------------------

    def log_delivery(
        self,
        item_index: int,
        node: int,
        cycle: int,
        hops: int,
        dislikes: int,
        liked: bool,
        via_like: bool,
    ) -> None:
        """Record a first receipt."""
        self.d_item.append(item_index)
        self.d_node.append(node)
        self.d_cycle.append(cycle)
        self.d_hops.append(hops)
        self.d_dislikes.append(dislikes)
        self.d_liked.append(liked)
        self.d_via_like.append(via_like)
        self._arrays = None

    def log_forward(
        self,
        item_index: int,
        node: int,
        cycle: int,
        hops: int,
        liked: bool,
        n_targets: int,
    ) -> None:
        """Record a forwarding action with its realised fanout."""
        self.f_item.append(item_index)
        self.f_node.append(node)
        self.f_cycle.append(cycle)
        self.f_hops.append(hops)
        self.f_liked.append(liked)
        self.f_targets.append(n_targets)
        self._arrays = None

    def log_duplicate(self) -> None:
        """Count a duplicate receipt (dropped by the SIR rule)."""
        self.duplicates += 1

    # -- bulk recording (the batched delivery path) ---------------------------

    def log_deliveries(
        self,
        item_indices: list[int],
        node: int,
        cycle: int,
        hops: list[int],
        dislikes: list[int],
        liked: list[bool],
        via_like: list[bool],
    ) -> None:
        """Record one node's first receipts of a cycle in one bulk append.

        Column-aligned lists, one row per receipt; *node* and *cycle* are
        scalars shared by the whole batch.  Produces exactly the rows the
        per-receipt :meth:`log_delivery` calls would, in the same order.
        """
        k = len(item_indices)
        self.d_item.extend(item_indices)
        self.d_node.extend([node] * k)
        self.d_cycle.extend([cycle] * k)
        self.d_hops.extend(hops)
        self.d_dislikes.extend(dislikes)
        self.d_liked.extend(liked)
        self.d_via_like.extend(via_like)
        self._arrays = None

    def log_forwards(
        self,
        item_indices: list[int],
        node: int,
        cycle: int,
        hops: list[int],
        liked: list[bool],
        n_targets: list[int],
    ) -> None:
        """Record one node's forwarding actions of a cycle in bulk."""
        k = len(item_indices)
        self.f_item.extend(item_indices)
        self.f_node.extend([node] * k)
        self.f_cycle.extend([cycle] * k)
        self.f_hops.extend(hops)
        self.f_liked.extend(liked)
        self.f_targets.extend(n_targets)
        self._arrays = None

    def log_duplicates(self, n: int) -> None:
        """Count *n* duplicate receipts at once (batched delivery path)."""
        self.duplicates += n

    def merge(self, other: "DisseminationLog") -> None:
        """Append every event of *other* to this log, in *other*'s order.

        The shard facade folds per-worker logs together with this
        (:mod:`repro.simulation.sharding`), in shard order — row order
        across shards therefore differs from a single-process run's
        interleaving, but every metric is an aggregate over rows and all
        rows are present exactly once.
        """
        self.d_item.extend(other.d_item)
        self.d_node.extend(other.d_node)
        self.d_cycle.extend(other.d_cycle)
        self.d_hops.extend(other.d_hops)
        self.d_dislikes.extend(other.d_dislikes)
        self.d_liked.extend(other.d_liked)
        self.d_via_like.extend(other.d_via_like)
        self.f_item.extend(other.f_item)
        self.f_node.extend(other.f_node)
        self.f_cycle.extend(other.f_cycle)
        self.f_hops.extend(other.f_hops)
        self.f_liked.extend(other.f_liked)
        self.f_targets.extend(other.f_targets)
        self.duplicates += other.duplicates
        self._arrays = None

    # -- array access ---------------------------------------------------------

    def arrays(self) -> dict[str, np.ndarray]:
        """All columns as NumPy arrays (computed once, cached)."""
        if self._arrays is None:
            self._arrays = {
                "d_item": np.asarray(self.d_item, dtype=np.int64),
                "d_node": np.asarray(self.d_node, dtype=np.int64),
                "d_cycle": np.asarray(self.d_cycle, dtype=np.int64),
                "d_hops": np.asarray(self.d_hops, dtype=np.int64),
                "d_dislikes": np.asarray(self.d_dislikes, dtype=np.int64),
                "d_liked": np.asarray(self.d_liked, dtype=bool),
                "d_via_like": np.asarray(self.d_via_like, dtype=bool),
                "f_item": np.asarray(self.f_item, dtype=np.int64),
                "f_node": np.asarray(self.f_node, dtype=np.int64),
                "f_cycle": np.asarray(self.f_cycle, dtype=np.int64),
                "f_hops": np.asarray(self.f_hops, dtype=np.int64),
                "f_liked": np.asarray(self.f_liked, dtype=bool),
                "f_targets": np.asarray(self.f_targets, dtype=np.int64),
            }
        return self._arrays

    @property
    def n_deliveries(self) -> int:
        """Number of first receipts recorded."""
        return len(self.d_item)

    @property
    def n_forwards(self) -> int:
        """Number of forwarding actions recorded."""
        return len(self.f_item)

    def reached_matrix(self, n_nodes: int, n_items: int) -> np.ndarray:
        """Boolean ``(n_nodes, n_items)`` matrix of who received what.

        The evaluation's ``{reached users}`` per item (Section IV-C).
        """
        arr = self.arrays()
        reached = np.zeros((n_nodes, n_items), dtype=bool)
        if len(arr["d_node"]):
            reached[arr["d_node"], arr["d_item"]] = True
        return reached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DisseminationLog(deliveries={self.n_deliveries}, "
            f"forwards={self.n_forwards}, duplicates={self.duplicates})"
        )
