"""The protocol-node interface.

Every system under test — WHATSUP, the CF baselines, homogeneous gossip,
cascading — implements :class:`BaseNode`.  The engine drives nodes through
four callbacks and nodes act on the network exclusively through the engine's
routing methods (``engine.gossip`` and ``engine.send_item``), which apply
the transport's loss model and account traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import suppress
from typing import TYPE_CHECKING

from repro.core.news import ItemCopy, NewsItem
from repro.network.message import MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import CycleEngine

__all__ = ["BaseNode"]


class BaseNode(ABC):
    """One simulated participant.

    Subclasses hold all protocol state (views, profiles, seen-item sets).
    The engine guarantees:

    * :meth:`begin_cycle` is called once per cycle while the node is alive,
      before any item deliveries of that cycle;
    * :meth:`receive_item` is called once per *delivered* item copy; copies
      sent in cycle *t* arrive in cycle *t + 1*;
    * :meth:`on_gossip` is called synchronously within a partner's
      :meth:`begin_cycle` when a gossip message survives the transport.
    """

    __slots__ = ("node_id", "_alive", "_alive_listener")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._alive = True
        self._alive_listener = None

    def __getstate__(self) -> dict:
        """Serialize every slot across the class hierarchy but the engine hook.

        ``_alive_listener`` is a bound method of the owning engine; keeping
        it would drag the entire engine (and with it every other node)
        into any pickle of a single node.  The receiving engine re-arms
        the hook when the node is registered (shard workers, mid-run
        joins).
        """
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if name == "_alive_listener" or name in state:
                    continue
                with suppress(AttributeError):  # unset slot
                    state[name] = getattr(self, name)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._alive_listener = None

    @property
    def alive(self) -> bool:
        """Dead nodes receive nothing and take no actions (churn model)."""
        return self._alive

    @alive.setter
    def alive(self, value: bool) -> None:
        value = bool(value)
        if value == self._alive:
            return
        self._alive = value
        # the engine hooks this to keep its alive-id cache coherent no
        # matter who flips the flag (churn models, tests, experiments)
        listener = self._alive_listener
        if listener is not None:
            listener(self.node_id, value)

    @abstractmethod
    def begin_cycle(self, engine: "CycleEngine", now: int) -> None:
        """Run periodic maintenance (gossip exchanges) for this cycle."""

    def on_gossip(
        self,
        msg: object,
        kind: MessageKind,
        engine: "CycleEngine",
        now: int,
    ) -> object | None:
        """Handle a gossip message; return a reply payload or ``None``.

        Default: ignore gossip (systems without overlay maintenance).
        """
        return None

    @abstractmethod
    def receive_item(
        self,
        copy: ItemCopy,
        via_like: bool,
        engine: "CycleEngine",
        now: int,
    ) -> None:
        """Handle the delivery of one item copy.

        Implementations must log the receipt via ``engine.note_receipt`` so
        duplicates are counted and metrics see every delivery.
        """

    def receive_items(
        self,
        deliveries: "list[tuple[int, ItemCopy, bool]]",
        engine: "CycleEngine",
        now: int,
    ) -> None:
        """Handle this node's whole per-cycle delivery batch.

        Called by the engine's batched delivery path with the node's full
        cycle inbox (``(sender, copy, via_like)`` rows in arrival order).
        The default delegates to :meth:`receive_item` per row — protocols
        without a bulk implementation keep exact per-message semantics;
        overrides must produce the same outcomes as that loop.
        """
        receive = self.receive_item
        for _sender, copy, via_like in deliveries:
            receive(copy, via_like, engine, now)

    @abstractmethod
    def publish(self, item: NewsItem, engine: "CycleEngine", now: int) -> None:
        """Publish a fresh item (this node is the source)."""
