"""Common harness for complete simulated systems.

Every system under evaluation — WHATSUP and each baseline — couples a
workload with an engine-driven node population.  :class:`SystemHarness`
centralises the shared surface (run loop, delivery/traffic accessors) so the
experiment runner can treat all systems uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.network.stats import TrafficStats
from repro.simulation.engine import CycleEngine
from repro.simulation.events import DisseminationLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    # typing-only to avoid a simulation <-> datasets import cycle
    from repro.datasets.base import Dataset

__all__ = ["SystemHarness"]


class SystemHarness:
    """Base class for runnable (dataset × protocol) systems.

    Subclasses construct ``self.engine`` (a :class:`CycleEngine` over their
    node population) before calling ``super().__init__``.
    """

    #: short identifier used in experiment reports ("whatsup", "cf-cos", ...)
    system_name: str = "system"

    def __init__(self, dataset: "Dataset", engine: CycleEngine) -> None:
        self.dataset = dataset
        self.engine = engine

    def run(self, cycles: int | None = None, *, drain: bool = True) -> None:
        """Run the deployment.

        Parameters
        ----------
        cycles:
            Number of cycles; default covers the publication window.
        drain:
            When true, keep cycling until no item message is in flight.
        """
        if cycles is None:
            cycles = self.dataset.publish_cycles
        self.engine.run(cycles)
        if drain:
            self.engine.run_until_drained()

    # -- uniform accessors ----------------------------------------------------

    @property
    def log(self) -> DisseminationLog:
        """The engine's dissemination log."""
        return self.engine.log

    @property
    def stats(self) -> TrafficStats:
        """The engine's traffic statistics."""
        return self.engine.stats

    def reached_matrix(self) -> np.ndarray:
        """Boolean ``(n_users, n_items)`` delivery matrix."""
        return self.log.reached_matrix(self.dataset.n_users, self.dataset.n_items)

    def fault_stats(self) -> "dict | None":
        """The run's fault-plane counters, or ``None`` (single-process).

        Sharded engines report recoveries, retries, degraded cycles and
        checkpoint volume (:class:`~repro.network.stats.RecoveryStats`);
        a plain :class:`CycleEngine` has no fault plane and returns
        ``None``.
        """
        getter = getattr(self.engine, "fault_stats", None)
        if getter is None:
            return None
        return getter().as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(dataset={self.dataset.name!r}, "
            f"nodes={len(self.engine.nodes)})"
        )
