"""WHATSUP reproduction: a decentralized instant news recommender.

A complete, from-scratch Python reproduction of *Boutet, Frey, Guerraoui,
Jégou, Kermarrec — "WHATSUP: A Decentralized Instant News Recommender",
IEEE IPDPS 2013*:

* the **WUP** implicit social network (random peer sampling + similarity
  clustering with the paper's asymmetric metric);
* the **BEEP** heterogeneous dissemination protocol (opinion-driven
  amplification and orientation);
* all five competitor systems, the three workload generators, a
  cycle-based simulation engine with loss/churn models, and an experiment
  harness regenerating every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import WhatsUpSystem, WhatsUpConfig, survey_dataset
>>> from repro.metrics import evaluate_dissemination
>>> dataset = survey_dataset(n_base_users=60, n_base_items=80)
>>> system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=5), seed=42)
>>> system.run()
>>> scores = evaluate_dissemination(system.reached_matrix(), dataset.likes)

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
system inventory and per-experiment index, and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from repro.core import (
    WhatsUpConfig,
    WhatsUpNode,
    WhatsUpSystem,
    cosine_similarity,
    wup_similarity,
)
from repro.datasets import (
    Dataset,
    dataset_from_likes,
    digg_dataset,
    survey_dataset,
    synthetic_dataset,
)
from repro.experiments import (
    EXPERIMENTS,
    build_system,
    get_scale,
    run_experiment,
    run_one,
)

__version__ = "1.0.0"

__all__ = [
    "WhatsUpConfig",
    "WhatsUpNode",
    "WhatsUpSystem",
    "cosine_similarity",
    "wup_similarity",
    "Dataset",
    "dataset_from_likes",
    "digg_dataset",
    "survey_dataset",
    "synthetic_dataset",
    "EXPERIMENTS",
    "build_system",
    "get_scale",
    "run_experiment",
    "run_one",
    "__version__",
]
