"""Traffic accounting.

Counts attempted/delivered/dropped messages and delivered bytes, split by
protocol kind (:class:`~repro.network.message.MessageKind`).  The experiment
harness derives from these counters:

* the paper's "Messages / Cycles / Nodes" x-axis of Figures 3d-3f (item
  messages only — the quantity Table III reports as ``Mess./User``);
* the per-protocol bandwidth split of Figure 8b, converting bytes to Kbps
  given the gossip-cycle duration (30 s in the paper's deployment runs).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.network.message import Envelope, MessageKind

__all__ = ["TrafficStats", "RecoveryStats", "WireStats"]


@dataclass
class TrafficStats:
    """Mutable counters for one simulation run."""

    sent: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    delivered: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    dropped: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_delivered: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record(self, envelope: Envelope, delivered: bool) -> None:
        """Record one transmission attempt and its outcome."""
        kind = envelope.kind
        self.sent[kind] += 1
        if delivered:
            self.delivered[kind] += 1
            self.bytes_delivered[kind] += envelope.size_bytes
        else:
            self.dropped[kind] += 1

    def record_parts(self, kind: MessageKind, size_bytes: int, delivered: bool) -> None:
        """Record one attempt from its parts (no envelope construction).

        The engine's lossless fast path accounts gossip legs without
        materialising an :class:`~repro.network.message.Envelope`; the
        counters move exactly as :meth:`record` would move them.
        """
        self.sent[kind] += 1
        if delivered:
            self.delivered[kind] += 1
            self.bytes_delivered[kind] += size_bytes
        else:
            self.dropped[kind] += 1

    def record_items_bulk(self, delivered: int, dropped: int, nbytes: int) -> None:
        """Account a whole cycle's item sends in one update.

        *delivered* attempts reached an alive target carrying *nbytes*
        total; *dropped* attempts targeted dead or unknown nodes.  Totals
        match *delivered + dropped* per-envelope :meth:`record` calls.
        """
        kind = MessageKind.ITEM
        self.sent[kind] += delivered + dropped
        if delivered:
            self.delivered[kind] += delivered
            self.bytes_delivered[kind] += nbytes
        if dropped:
            self.dropped[kind] += dropped

    # -- derived quantities -------------------------------------------------

    def total_sent(self) -> int:
        """All transmission attempts across protocols."""
        return sum(self.sent.values())

    def item_messages(self) -> int:
        """Attempted BEEP item transmissions (the paper's message metric)."""
        return self.sent[MessageKind.ITEM]

    def gossip_messages(self) -> int:
        """Attempted RPS + WUP transmissions."""
        return self.sent[MessageKind.RPS] + self.sent[MessageKind.WUP]

    def loss_rate(self, kind: MessageKind | None = None) -> float:
        """Observed drop fraction, overall or for one protocol kind."""
        if kind is None:
            sent = self.total_sent()
            dropped = sum(self.dropped.values())
        else:
            sent = self.sent[kind]
            dropped = self.dropped[kind]
        return dropped / sent if sent else 0.0

    def messages_per_user_per_cycle(self, n_nodes: int, n_cycles: int) -> float:
        """Item messages normalised the way Figures 3d-3f plot them."""
        if n_nodes <= 0 or n_cycles <= 0:
            return 0.0
        return self.item_messages() / n_cycles / n_nodes

    def messages_per_user(self, n_nodes: int) -> float:
        """Item messages per user (Table III's ``Mess./User``)."""
        if n_nodes <= 0:
            return 0.0
        return self.item_messages() / n_nodes

    def bandwidth_kbps(
        self,
        n_nodes: int,
        n_cycles: int,
        cycle_seconds: float,
        kind: MessageKind | None = None,
    ) -> float:
        """Average per-node consumed bandwidth in Kbps (Figure 8b).

        Parameters
        ----------
        n_nodes / n_cycles:
            Run dimensions.
        cycle_seconds:
            Wall-clock duration of one gossip cycle (30 s in the paper's
            emulation runs, ~5 min in the prototype).
        kind:
            Restrict to one protocol family, or ``None`` for the total.
        """
        if n_nodes <= 0 or n_cycles <= 0 or cycle_seconds <= 0:
            return 0.0
        if kind is None:
            nbytes = sum(self.bytes_delivered.values())
        else:
            nbytes = self.bytes_delivered[kind]
        seconds = n_cycles * cycle_seconds
        return (nbytes * 8.0 / 1000.0) / seconds / n_nodes

    def merge(self, other: "TrafficStats") -> None:
        """Accumulate counters from another stats object in place."""
        for kind in MessageKind:
            self.sent[kind] += other.sent[kind]
            self.delivered[kind] += other.delivered[kind]
            self.dropped[kind] += other.dropped[kind]
            self.bytes_delivered[kind] += other.bytes_delivered[kind]


@dataclass
class WireStats:
    """Per-link wire-codec counters of one sharded run.

    Maintained by each :class:`~repro.simulation.wire.LinkEncoder` and
    surfaced through ``mailbox_stats()`` so the bench can attribute
    mailbox bytes to encoding tiers: how many profile crossings were
    uid references, full column packs, journal-shaped deltas, or
    pickle fallbacks, and how the frame bytes split between the typed
    sections and the embedded pickles.
    """

    #: mailbox frames encoded / their total serialized size
    frames: int = 0
    frame_bytes: int = 0
    #: mailbox rows (messages or item sends) carried
    rows: int = 0
    #: view entries carried by gossip rows
    entries: int = 0
    #: profile crossings by representation
    ref_profiles: int = 0
    full_profiles: int = 0
    delta_profiles: int = 0
    pickled_profiles: int = 0
    #: rows the fast path could not express (embedded-pickle fallback)
    overflow_rows: int = 0
    #: frame bytes by section family
    column_bytes: int = 0
    full_bytes: int = 0
    delta_bytes: int = 0
    pickle_bytes: int = 0
    #: deterministic link-table resets (shared cap rule firings)
    cap_resets: int = 0

    def merge(self, other: "WireStats") -> None:
        """Accumulate counters from another stats object in place."""
        self.frames += other.frames
        self.frame_bytes += other.frame_bytes
        self.rows += other.rows
        self.entries += other.entries
        self.ref_profiles += other.ref_profiles
        self.full_profiles += other.full_profiles
        self.delta_profiles += other.delta_profiles
        self.pickled_profiles += other.pickled_profiles
        self.overflow_rows += other.overflow_rows
        self.column_bytes += other.column_bytes
        self.full_bytes += other.full_bytes
        self.delta_bytes += other.delta_bytes
        self.pickle_bytes += other.pickle_bytes
        self.cap_resets += other.cap_resets

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form (bench JSON, ``mailbox_stats()``, CLI)."""
        return {
            "frames": self.frames,
            "frame_bytes": self.frame_bytes,
            "rows": self.rows,
            "entries": self.entries,
            "ref_profiles": self.ref_profiles,
            "full_profiles": self.full_profiles,
            "delta_profiles": self.delta_profiles,
            "pickled_profiles": self.pickled_profiles,
            "overflow_rows": self.overflow_rows,
            "column_bytes": self.column_bytes,
            "full_bytes": self.full_bytes,
            "delta_bytes": self.delta_bytes,
            "pickle_bytes": self.pickle_bytes,
            "cap_resets": self.cap_resets,
        }


@dataclass
class RecoveryStats:
    """Fault-plane and self-healing counters of one sharded run.

    Maintained by the :class:`~repro.simulation.sharding.ShardedCycleEngine`
    supervisor (checkpoints, recoveries) and its workers' mailbox fabric
    (chunk retries, CRC failures, duplicate drops).  All zeros on a
    fault-free run with supervision off — the counters exist so the
    acceptance question "what did the run survive?" has a recorded answer.
    """

    #: mailbox chunks retransmitted (timeout or NACK-triggered)
    chunk_retries: int = 0
    #: chunks whose CRC failed validation at the receiver
    crc_failures: int = 0
    #: duplicate chunks discarded by sequence-number dedup
    dup_chunks: int = 0
    #: worker processes observed dead (crash fault, SIGKILL, wedged-killed)
    worker_deaths: int = 0
    #: rollback-replay recoveries performed
    recoveries: int = 0
    #: cycles of discarded work re-executed after rollbacks
    replayed_cycles: int = 0
    #: cycles during which a recovered shard's population ran churned-offline
    degraded_cycles: int = 0
    #: checkpoints taken / their total pickled size
    checkpoints: int = 0
    checkpoint_bytes: int = 0

    def merge(self, other: "RecoveryStats") -> None:
        """Accumulate counters from another stats object in place."""
        self.chunk_retries += other.chunk_retries
        self.crc_failures += other.crc_failures
        self.dup_chunks += other.dup_chunks
        self.worker_deaths += other.worker_deaths
        self.recoveries += other.recoveries
        self.replayed_cycles += other.replayed_cycles
        self.degraded_cycles += other.degraded_cycles
        self.checkpoints += other.checkpoints
        self.checkpoint_bytes += other.checkpoint_bytes

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form (bench JSON, experiment reports, CLI)."""
        return {
            "chunk_retries": self.chunk_retries,
            "crc_failures": self.crc_failures,
            "dup_chunks": self.dup_chunks,
            "worker_deaths": self.worker_deaths,
            "recoveries": self.recoveries,
            "replayed_cycles": self.replayed_cycles,
            "degraded_cycles": self.degraded_cycles,
            "checkpoints": self.checkpoints,
            "checkpoint_bytes": self.checkpoint_bytes,
        }
