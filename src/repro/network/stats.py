"""Traffic accounting.

Counts attempted/delivered/dropped messages and delivered bytes, split by
protocol kind (:class:`~repro.network.message.MessageKind`).  The experiment
harness derives from these counters:

* the paper's "Messages / Cycles / Nodes" x-axis of Figures 3d-3f (item
  messages only — the quantity Table III reports as ``Mess./User``);
* the per-protocol bandwidth split of Figure 8b, converting bytes to Kbps
  given the gossip-cycle duration (30 s in the paper's deployment runs).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.network.message import Envelope, MessageKind

__all__ = ["TrafficStats"]


@dataclass
class TrafficStats:
    """Mutable counters for one simulation run."""

    sent: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    delivered: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    dropped: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_delivered: dict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record(self, envelope: Envelope, delivered: bool) -> None:
        """Record one transmission attempt and its outcome."""
        kind = envelope.kind
        self.sent[kind] += 1
        if delivered:
            self.delivered[kind] += 1
            self.bytes_delivered[kind] += envelope.size_bytes
        else:
            self.dropped[kind] += 1

    def record_parts(self, kind: MessageKind, size_bytes: int, delivered: bool) -> None:
        """Record one attempt from its parts (no envelope construction).

        The engine's lossless fast path accounts gossip legs without
        materialising an :class:`~repro.network.message.Envelope`; the
        counters move exactly as :meth:`record` would move them.
        """
        self.sent[kind] += 1
        if delivered:
            self.delivered[kind] += 1
            self.bytes_delivered[kind] += size_bytes
        else:
            self.dropped[kind] += 1

    def record_items_bulk(self, delivered: int, dropped: int, nbytes: int) -> None:
        """Account a whole cycle's item sends in one update.

        *delivered* attempts reached an alive target carrying *nbytes*
        total; *dropped* attempts targeted dead or unknown nodes.  Totals
        match *delivered + dropped* per-envelope :meth:`record` calls.
        """
        kind = MessageKind.ITEM
        self.sent[kind] += delivered + dropped
        if delivered:
            self.delivered[kind] += delivered
            self.bytes_delivered[kind] += nbytes
        if dropped:
            self.dropped[kind] += dropped

    # -- derived quantities -------------------------------------------------

    def total_sent(self) -> int:
        """All transmission attempts across protocols."""
        return sum(self.sent.values())

    def item_messages(self) -> int:
        """Attempted BEEP item transmissions (the paper's message metric)."""
        return self.sent[MessageKind.ITEM]

    def gossip_messages(self) -> int:
        """Attempted RPS + WUP transmissions."""
        return self.sent[MessageKind.RPS] + self.sent[MessageKind.WUP]

    def loss_rate(self, kind: MessageKind | None = None) -> float:
        """Observed drop fraction, overall or for one protocol kind."""
        if kind is None:
            sent = self.total_sent()
            dropped = sum(self.dropped.values())
        else:
            sent = self.sent[kind]
            dropped = self.dropped[kind]
        return dropped / sent if sent else 0.0

    def messages_per_user_per_cycle(self, n_nodes: int, n_cycles: int) -> float:
        """Item messages normalised the way Figures 3d-3f plot them."""
        if n_nodes <= 0 or n_cycles <= 0:
            return 0.0
        return self.item_messages() / n_cycles / n_nodes

    def messages_per_user(self, n_nodes: int) -> float:
        """Item messages per user (Table III's ``Mess./User``)."""
        if n_nodes <= 0:
            return 0.0
        return self.item_messages() / n_nodes

    def bandwidth_kbps(
        self,
        n_nodes: int,
        n_cycles: int,
        cycle_seconds: float,
        kind: MessageKind | None = None,
    ) -> float:
        """Average per-node consumed bandwidth in Kbps (Figure 8b).

        Parameters
        ----------
        n_nodes / n_cycles:
            Run dimensions.
        cycle_seconds:
            Wall-clock duration of one gossip cycle (30 s in the paper's
            emulation runs, ~5 min in the prototype).
        kind:
            Restrict to one protocol family, or ``None`` for the total.
        """
        if n_nodes <= 0 or n_cycles <= 0 or cycle_seconds <= 0:
            return 0.0
        if kind is None:
            nbytes = sum(self.bytes_delivered.values())
        else:
            nbytes = self.bytes_delivered[kind]
        seconds = n_cycles * cycle_seconds
        return (nbytes * 8.0 / 1000.0) / seconds / n_nodes

    def merge(self, other: "TrafficStats") -> None:
        """Accumulate counters from another stats object in place."""
        for kind in MessageKind:
            self.sent[kind] += other.sent[kind]
            self.delivered[kind] += other.delivered[kind]
            self.dropped[kind] += other.dropped[kind]
            self.bytes_delivered[kind] += other.bytes_delivered[kind]
