"""Message envelopes routed by the simulation engine.

Every unicast transmission — an RPS shuffle request, a WUP view exchange, or
a BEEP item forward — travels in an :class:`Envelope` that records sender,
target, protocol kind and modelled wire size.  The wire size feeds the
bandwidth analysis of Figure 8b; the kind feeds the per-protocol traffic
split (BEEP dominates, WUP stays near-constant).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = ["MessageKind", "Envelope", "payload_wire_size"]


def payload_wire_size(payload: object) -> int:
    """Modelled serialized size of a protocol payload, in bytes.

    Payloads without a ``wire_size`` method (bare test payloads) measure 0.
    One attribute lookup instead of the ``hasattr`` + call double lookup —
    this runs twice per gossip exchange on the engine's hot path.
    """
    ws = getattr(payload, "wire_size", None)
    return 0 if ws is None else ws()


class MessageKind(enum.Enum):
    """Protocol family of a message, for traffic accounting."""

    RPS = "rps"
    WUP = "wup"
    ITEM = "item"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # members are singletons, so identity hashing is consistent with enum
    # equality — and C-speed, which matters for the per-message counter
    # dicts the traffic stats maintain
    __hash__ = object.__hash__


class Envelope(NamedTuple):
    """One unicast transmission (a NamedTuple: cheap to build per message).

    Attributes
    ----------
    sender / target:
        Node identifiers.
    kind:
        Protocol family (:class:`MessageKind`).
    payload:
        The protocol message object (``RpsMessage``, ``ClusteringMessage``
        or ``ItemCopy``); the engine passes it to the target's handler
        verbatim.
    size_bytes:
        Modelled serialized size, computed by the payload's ``wire_size``.
    via_like:
        For item messages only: whether the sender forwarded the item
        because they *liked* it (BEEP amplification) as opposed to the
        dislike/serendipity path.  Used by the Figure 6 and Table IV
        analyses; ``None`` for gossip messages.
    """

    sender: int
    target: int
    kind: MessageKind
    payload: object
    size_bytes: int
    via_like: "bool | None" = None
