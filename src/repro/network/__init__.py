"""Simulated network substrate.

The paper evaluates WHATSUP in three settings: event-driven simulation, a
ModelNet-emulated cluster with injected message loss (Table VI), and a
PlanetLab deployment whose overloaded nodes drop a significant fraction of
incoming traffic (Figure 8a).  This subpackage models all three:

* :mod:`repro.network.message` — the envelope the engine routes, with a
  byte-accurate wire-size model used for the bandwidth analysis (Fig. 8b);
* :mod:`repro.network.transport` — pluggable delivery models: perfect,
  uniform random loss (ModelNet), and heterogeneous per-node loss with
  bounded inboxes (PlanetLab);
* :mod:`repro.network.stats` — traffic accounting (messages/bytes per
  protocol, bandwidth conversion).
"""

from repro.network.message import Envelope, MessageKind
from repro.network.stats import TrafficStats
from repro.network.transport import (
    LatencyTransport,
    PerfectTransport,
    PlanetLabTransport,
    Transport,
    UniformLossTransport,
)

__all__ = [
    "Envelope",
    "MessageKind",
    "TrafficStats",
    "Transport",
    "PerfectTransport",
    "UniformLossTransport",
    "PlanetLabTransport",
    "LatencyTransport",
]
