"""Transport models: perfect, ModelNet-style uniform loss, PlanetLab-style.

The paper's robustness evaluation manipulates message delivery in two ways:

* **ModelNet emulation** (Section V-E, Table VI): a uniform message-loss
  rate from 0% to 50% applied to both BEEP and WUP messages —
  :class:`UniformLossTransport`;
* **PlanetLab deployment** (Section V-D, Figure 8a): heterogeneous losses —
  "nodes do not receive up to 30% of the news that are correctly sent to
  them ... due to network-level losses and to the high load of some
  PlanetLab nodes, which causes congestion of incoming message queues" —
  :class:`PlanetLabTransport` models this with a small uniform network loss
  plus a fraction of *overloaded* nodes whose bounded per-cycle inboxes drop
  the excess.

A transport decides, per envelope, whether delivery succeeds.  It never
reorders or duplicates (the protocols tolerate loss, which is the property
under study).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.network.message import Envelope, MessageKind
from repro.utils.validation import check_probability

__all__ = [
    "Transport",
    "PerfectTransport",
    "UniformLossTransport",
    "PlanetLabTransport",
    "LatencyTransport",
]


class Transport(ABC):
    """Delivery model interface."""

    def setup(self, node_ids: Iterable[int], rng: np.random.Generator) -> None:
        """One-time initialisation with the node population (optional)."""

    def begin_cycle(self) -> None:
        """Reset per-cycle state (e.g. congestion counters) (optional)."""

    def is_lossless(self) -> bool:
        """Whether every attempt succeeds with the default one-cycle delay.

        Lossless unit-delay transports let the engine skip per-message
        ``attempt``/``delay`` dispatch entirely and run the batched delivery
        pipeline (no loss draws exist whose order could matter).  Transports
        that drop, delay or even *consult the RNG* per message must return
        ``False`` — the default.
        """
        return False

    @abstractmethod
    def attempt(self, envelope: Envelope, rng: np.random.Generator) -> bool:
        """Return ``True`` when *envelope* reaches its target."""

    def delay(self, envelope: Envelope, rng: np.random.Generator) -> int:
        """Cycles until a delivered item message reaches its target.

        The default of 1 is the paper's simulation model (one hop per
        cycle); :class:`LatencyTransport` adds heterogeneous delays.
        Only item messages are delayed — gossip exchanges complete within
        their cycle, as in cycle-based gossip simulators.
        """
        return 1


class PerfectTransport(Transport):
    """Lossless delivery (the paper's pure-simulation setting)."""

    def is_lossless(self) -> bool:
        # exact-type check: a subclass overriding attempt()/delay() must
        # keep the engine's full per-message path unless it opts in by
        # overriding is_lossless() itself
        return type(self) is PerfectTransport

    def attempt(self, envelope: Envelope, rng: np.random.Generator) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PerfectTransport()"


class UniformLossTransport(Transport):
    """Uniform i.i.d. message loss (the ModelNet experiments, Table VI).

    Parameters
    ----------
    loss_rate:
        Probability that any given message is dropped, applied uniformly to
        every protocol (the paper injects loss into "both BEEP and WUP
        messages").
    """

    def __init__(self, loss_rate: float) -> None:
        check_probability("loss_rate", loss_rate)
        self.loss_rate = float(loss_rate)

    def is_lossless(self) -> bool:
        # a zero loss rate never drops *and* never consults the RNG, so
        # the batched pipeline is byte-for-byte equivalent; exact-type
        # check for the same subclass-safety reason as PerfectTransport
        return type(self) is UniformLossTransport and self.loss_rate == 0.0

    def attempt(self, envelope: Envelope, rng: np.random.Generator) -> bool:
        if self.loss_rate == 0.0:
            return True
        return rng.random() >= self.loss_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLossTransport(loss_rate={self.loss_rate})"


class PlanetLabTransport(Transport):
    """Heterogeneous loss with overloaded hotspots (the PlanetLab setting).

    A fraction of nodes is *overloaded*: their incoming message queue holds
    at most ``inbox_capacity`` item messages per cycle and every excess
    message is dropped; additionally every message to an overloaded node is
    dropped with ``overloaded_loss`` probability (CPU starvation), and every
    message anywhere suffers a small ``base_loss`` (network-level loss).

    With the defaults, small fanouts lose a substantial share of deliveries
    (recall collapses, as in Figure 8a's PlanetLab curve at fanout ≤ 5)
    while larger fanouts recover through gossip redundancy.

    Parameters
    ----------
    overloaded_fraction:
        Fraction of nodes designated overloaded at :meth:`setup` time.
    overloaded_loss:
        Per-message drop probability for messages addressed to an
        overloaded node.
    base_loss:
        Uniform network-level loss applied to all messages.
    inbox_capacity:
        Item messages an overloaded node can absorb per cycle before its
        queue congests; ``0`` disables the queue model.
    """

    def __init__(
        self,
        overloaded_fraction: float = 0.3,
        overloaded_loss: float = 0.25,
        base_loss: float = 0.02,
        inbox_capacity: int = 40,
    ) -> None:
        check_probability("overloaded_fraction", overloaded_fraction)
        check_probability("overloaded_loss", overloaded_loss)
        check_probability("base_loss", base_loss)
        if inbox_capacity < 0:
            raise ValueError(f"inbox_capacity must be >= 0, got {inbox_capacity}")
        self.overloaded_fraction = float(overloaded_fraction)
        self.overloaded_loss = float(overloaded_loss)
        self.base_loss = float(base_loss)
        self.inbox_capacity = int(inbox_capacity)
        self._overloaded: set[int] = set()
        self._inbox_counts: dict[int, int] = defaultdict(int)

    def setup(self, node_ids: Iterable[int], rng: np.random.Generator) -> None:
        ids = list(node_ids)
        k = int(round(self.overloaded_fraction * len(ids)))
        if k > 0:
            chosen = rng.choice(len(ids), size=k, replace=False)
            self._overloaded = {ids[int(i)] for i in chosen}
        else:
            self._overloaded = set()

    def begin_cycle(self) -> None:
        self._inbox_counts.clear()

    @property
    def overloaded_nodes(self) -> frozenset[int]:
        """The node ids designated overloaded at setup."""
        return frozenset(self._overloaded)

    def attempt(self, envelope: Envelope, rng: np.random.Generator) -> bool:
        if self.base_loss and rng.random() < self.base_loss:
            return False
        if envelope.target in self._overloaded:
            if self.overloaded_loss and rng.random() < self.overloaded_loss:
                return False
            if self.inbox_capacity and envelope.kind is MessageKind.ITEM:
                count = self._inbox_counts[envelope.target] + 1
                self._inbox_counts[envelope.target] = count
                if count > self.inbox_capacity:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "PlanetLabTransport("
            f"overloaded_fraction={self.overloaded_fraction}, "
            f"overloaded_loss={self.overloaded_loss}, "
            f"base_loss={self.base_loss}, "
            f"inbox_capacity={self.inbox_capacity})"
        )


class LatencyTransport(Transport):
    """Heterogeneous per-message delivery delays on top of any loss model.

    The paper's cycle-based simulations deliver every forwarded item at the
    next cycle (footnote 1 defers "a precise analysis of dissemination
    latency" to future work).  This wrapper implements that analysis: item
    messages take ``1 + Geometric(p) - 1`` cycles (a geometric tail over a
    one-cycle minimum), optionally stretched for a slow fraction of links,
    so the latency experiments (``ext-latency``) can study how opinion-
    driven amplification affects *when* — not just whether — interested
    users are reached.

    Parameters
    ----------
    inner:
        The underlying loss model (default: perfect delivery).
    tail:
        Parameter of the geometric tail; larger means snappier links.
        ``tail=1.0`` restores the fixed one-cycle delay.
    slow_fraction / slow_multiplier:
        A random fraction of *target nodes* is "far away" (WAN links);
        their delays are multiplied.
    """

    def __init__(
        self,
        inner: Transport | None = None,
        *,
        tail: float = 0.6,
        slow_fraction: float = 0.0,
        slow_multiplier: int = 3,
    ) -> None:
        from repro.utils.validation import check_fraction

        check_fraction("tail", tail)
        check_probability("slow_fraction", slow_fraction)
        if slow_multiplier < 1:
            raise ValueError(
                f"slow_multiplier must be >= 1, got {slow_multiplier}"
            )
        self.inner = inner if inner is not None else PerfectTransport()
        self.tail = float(tail)
        self.slow_fraction = float(slow_fraction)
        self.slow_multiplier = int(slow_multiplier)
        self._slow_nodes: set[int] = set()

    def setup(self, node_ids: Iterable[int], rng: np.random.Generator) -> None:
        ids = list(node_ids)
        self.inner.setup(ids, rng)
        k = int(round(self.slow_fraction * len(ids)))
        if k > 0:
            chosen = rng.choice(len(ids), size=k, replace=False)
            self._slow_nodes = {ids[int(i)] for i in chosen}
        else:
            self._slow_nodes = set()

    def begin_cycle(self) -> None:
        self.inner.begin_cycle()

    def attempt(self, envelope: Envelope, rng: np.random.Generator) -> bool:
        return self.inner.attempt(envelope, rng)

    def delay(self, envelope: Envelope, rng: np.random.Generator) -> int:
        d = int(rng.geometric(self.tail))  # >= 1
        if envelope.target in self._slow_nodes:
            d *= self.slow_multiplier
        return d

    @property
    def slow_nodes(self) -> frozenset[int]:
        """Targets designated slow at setup."""
        return frozenset(self._slow_nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyTransport(inner={self.inner!r}, tail={self.tail}, "
            f"slow_fraction={self.slow_fraction})"
        )
