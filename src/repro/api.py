"""The typed run-configuration API: one object for the whole gate matrix.

The pipeline grew one ``REPRO_*`` env gate per performance layer — batch
scoring, batched delivery, native kernels, the array state plane, shard
count, shared memory, the wire tier, faults, recovery, and half a dozen
sharding knobs.  Each has its own module, setter, and context manager;
programmatic callers had to know all of them and stack the restore
guards by hand.

:class:`RunConfig` replaces that soup with a frozen dataclass:

>>> from repro.api import RunConfig
>>> cfg = RunConfig(shards=4, wire_tier="delta", faults="crash@5:1:q")
>>> with cfg.apply():                                  # doctest: +SKIP
...     system = WhatsUpSystem(dataset, seed=7)
...     system.run(cycles=20)

or, equivalently, pass it where engines are built —
``WhatsUpSystem(dataset, run_config=cfg)``, ``make_engine(...,
run_config=cfg)``, ``run_experiment(exp_id, scale, run_config=cfg)`` —
and the construction runs under :meth:`RunConfig.apply` for you.

The env vars remain as the *defaults-loading layer*:
:meth:`RunConfig.from_env` parses them with exactly the rules the
modules themselves use (same spellings, same floors, same fallbacks), so
``RunConfig.from_env().apply()`` is a no-op relative to current
behaviour, and the CLI resolves flags → env → defaults through this one
class.  :meth:`as_env` is the inverse, for spawning subprocesses that
must inherit a configuration.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.core.gates import env_choice, env_flag, env_float, env_int, env_raw

__all__ = ["RunConfig"]


@dataclass(frozen=True)
class RunConfig:
    """A complete, immutable run configuration.

    Field defaults equal the env-gate defaults, so ``RunConfig()`` is
    the out-of-the-box pipeline.  Derive variants with :meth:`replace`,
    activate with :meth:`apply` (or by passing the config to
    ``WhatsUpSystem`` / ``make_engine`` / ``run_experiment``).
    """

    # -- pipeline gates (each a module gate with its own setter) ---------- #
    #: pool-at-a-time similarity scoring (``REPRO_BATCH_SIM``)
    batch_sim: bool = True
    #: per-cycle batched item delivery (``REPRO_BATCH_DELIVERY``)
    batch_delivery: bool = True
    #: compiled C kernels where available (``REPRO_NATIVE``); harmless to
    #: leave on when the extension is absent — dispatch falls back
    native: bool = True
    #: columnar array-backed view state (``REPRO_ARRAY_STATE``)
    array_state: bool = True

    # -- sharding --------------------------------------------------------- #
    #: worker-process count; 1 = single-process (``REPRO_SHARDS``)
    shards: int = 1
    #: shared-memory arenas/mailboxes between shards (``REPRO_SHARD_SHM``)
    shard_shm: bool = True
    #: cross-shard mailbox encoding: ``pickle`` | ``columns`` | ``delta``
    #: (``REPRO_SHARD_WIRE``)
    wire_tier: str = "delta"
    #: pin each worker to one CPU on multi-core hosts
    #: (``REPRO_SHARD_PIN_CPUS``)
    pin_cpus: bool = False
    #: per-link mailbox segment bytes (``REPRO_SHARD_MAILBOX_BYTES``)
    mailbox_bytes: int = 1 << 20
    #: per-link codec-table bound (``REPRO_SHARD_INTERN_CAP``)
    intern_cap: int = 20000

    # -- fault plane / supervision ---------------------------------------- #
    #: fault schedule spec (DSL/JSON/path), or ``None`` (``REPRO_FAULTS``)
    faults: str | None = None
    #: recovery policy: ``off`` | ``restore`` | ``degraded`` | ``auto``
    #: (``REPRO_SHARD_RECOVERY``)
    recovery: str = "auto"
    #: checkpoint cadence in cycles, supervised runs
    #: (``REPRO_SHARD_CHECKPOINT``)
    checkpoint_every: int = 8
    #: degraded-mode offline window, cycles; 0 = one checkpoint interval
    #: (``REPRO_SHARD_DEGRADED``)
    degraded_window: int = 0
    #: rollback-replay attempts before giving up
    #: (``REPRO_SHARD_MAX_RECOVERIES``)
    max_recoveries: int = 8

    # -- timeouts / retransmission ---------------------------------------- #
    #: parent-side worker-reply timeout, seconds (``REPRO_SHARD_TIMEOUT``)
    ctrl_timeout: float = 600.0
    #: per-barrier chunk-exchange deadline, seconds
    #: (``REPRO_SHARD_EXCHANGE_TIMEOUT``)
    exchange_timeout: float = 600.0
    #: chunk retransmissions per peer per barrier (``REPRO_SHARD_RETRIES``)
    retries: int = 4
    #: first retransmission/heartbeat wait, seconds; doubles per idle
    #: round (``REPRO_SHARD_BACKOFF``)
    backoff: float = 5.0

    def __post_init__(self) -> None:
        from repro.simulation.sharding import _RECOVERY_MODES
        from repro.simulation.wire import WIRE_TIERS

        if self.wire_tier not in WIRE_TIERS:
            raise ValueError(
                f"unknown wire tier {self.wire_tier!r} "
                f"(expected one of {WIRE_TIERS})"
            )
        if self.recovery not in _RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {self.recovery!r} "
                f"(expected one of {_RECOVERY_MODES})"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "RunConfig":
        """The configuration the env vars currently select.

        Parses each variable with the exact rules its owning module
        applies at import — the shared :mod:`repro.core.gates` helpers
        (same flag spellings, same numeric floors, same invalid-value
        fallbacks) — so activating the result changes nothing: ``with
        RunConfig.from_env().apply(): ...`` behaves identically to the
        bare environment.
        """
        env = os.environ if environ is None else environ
        return cls(
            batch_sim=env_flag("REPRO_BATCH_SIM", env=env),
            batch_delivery=env_flag("REPRO_BATCH_DELIVERY", env=env),
            native=env_flag("REPRO_NATIVE", env=env),
            array_state=env_flag("REPRO_ARRAY_STATE", env=env),
            shards=env_int("REPRO_SHARDS", 1, floor=1, env=env),
            shard_shm=env_flag("REPRO_SHARD_SHM", env=env),
            wire_tier=env_choice(
                "REPRO_SHARD_WIRE", "delta", ("pickle", "columns", "delta"), env=env
            ),
            pin_cpus=env_flag("REPRO_SHARD_PIN_CPUS", default=False, env=env),
            mailbox_bytes=env_int(
                "REPRO_SHARD_MAILBOX_BYTES", 1 << 20, floor=64 * 1024, env=env
            ),
            intern_cap=env_int("REPRO_SHARD_INTERN_CAP", 20000, floor=256, env=env),
            faults=env_raw("REPRO_FAULTS", env=env).strip() or None,
            recovery=env_choice(
                "REPRO_SHARD_RECOVERY",
                "auto",
                ("off", "restore", "degraded", "auto"),
                env=env,
            ),
            checkpoint_every=env_int("REPRO_SHARD_CHECKPOINT", 8, floor=1, env=env),
            degraded_window=env_int("REPRO_SHARD_DEGRADED", 0, floor=0, env=env),
            max_recoveries=env_int(
                "REPRO_SHARD_MAX_RECOVERIES", 8, floor=1, env=env
            ),
            ctrl_timeout=env_float("REPRO_SHARD_TIMEOUT", 600.0, env=env),
            exchange_timeout=env_float(
                "REPRO_SHARD_EXCHANGE_TIMEOUT", 600.0, env=env
            ),
            retries=env_int("REPRO_SHARD_RETRIES", 4, floor=1, env=env),
            backoff=env_float("REPRO_SHARD_BACKOFF", 5.0, floor=0.005, env=env),
        )

    def as_env(self) -> dict[str, str]:
        """The env-var dict selecting this configuration.

        The inverse of :meth:`from_env` (``from_env(cfg.as_env())``
        round-trips every field) — for spawning subprocesses that must
        inherit the configuration.  ``REPRO_FAULTS`` is omitted when no
        schedule is set, matching the unset-means-none convention.
        """
        env = {
            "REPRO_BATCH_SIM": "1" if self.batch_sim else "0",
            "REPRO_BATCH_DELIVERY": "1" if self.batch_delivery else "0",
            "REPRO_NATIVE": "1" if self.native else "0",
            "REPRO_ARRAY_STATE": "1" if self.array_state else "0",
            "REPRO_SHARDS": str(self.shards),
            "REPRO_SHARD_SHM": "1" if self.shard_shm else "0",
            "REPRO_SHARD_WIRE": self.wire_tier,
            "REPRO_SHARD_PIN_CPUS": "1" if self.pin_cpus else "0",
            "REPRO_SHARD_MAILBOX_BYTES": str(self.mailbox_bytes),
            "REPRO_SHARD_INTERN_CAP": str(self.intern_cap),
            "REPRO_SHARD_RECOVERY": self.recovery,
            "REPRO_SHARD_CHECKPOINT": str(self.checkpoint_every),
            "REPRO_SHARD_DEGRADED": str(self.degraded_window),
            "REPRO_SHARD_MAX_RECOVERIES": str(self.max_recoveries),
            "REPRO_SHARD_TIMEOUT": repr(self.ctrl_timeout),
            "REPRO_SHARD_EXCHANGE_TIMEOUT": repr(self.exchange_timeout),
            "REPRO_SHARD_RETRIES": str(self.retries),
            "REPRO_SHARD_BACKOFF": repr(self.backoff),
        }
        if self.faults is not None:
            env["REPRO_FAULTS"] = self.faults
        return env

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with *changes* applied (fields validate as usual)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #

    @contextmanager
    def apply(self) -> Iterator["RunConfig"]:
        """Activate every gate and knob; restore all prior state on exit.

        The one context manager replacing the per-module stack
        (``batch_scoring`` + ``delivery_batching`` + ``native_kernel`` +
        ``array_state`` + ``sharding`` + ``shard_shm`` + ``shard_wire`` +
        ``faults`` + knob monkeypatching).  Settings are consulted when
        engines are *constructed*: build (or run) the system inside the
        block; an engine keeps its configuration after the block exits.
        Exception-safe — the previous state comes back even when the
        guarded block raises.
        """
        from repro._native import set_native_kernel
        from repro.core.arraystate import set_array_state
        from repro.core.similarity import set_batch_scoring
        from repro.simulation.delivery import set_delivery_batching
        from repro.simulation.faults import set_fault_schedule
        from repro.simulation.sharding import (
            set_shard_count,
            set_shard_knobs,
            set_shard_shm,
        )
        from repro.simulation.wire import set_wire_tier

        undo: list[tuple[Any, Any]] = []

        def _set(setter: Any, value: Any) -> None:
            undo.append((setter, setter(value)))

        try:
            _set(set_batch_scoring, self.batch_sim)
            _set(set_delivery_batching, self.batch_delivery)
            _set(set_native_kernel, self.native)
            _set(set_array_state, self.array_state)
            _set(set_shard_count, self.shards)
            _set(set_shard_shm, self.shard_shm)
            _set(set_wire_tier, self.wire_tier)
            _set(set_fault_schedule, self.faults)
            undo.append(
                (
                    lambda prev: set_shard_knobs(**prev),
                    set_shard_knobs(
                        mailbox_bytes=self.mailbox_bytes,
                        intern_cap=self.intern_cap,
                        pin_cpus=self.pin_cpus,
                        recovery=self.recovery,
                        checkpoint_every=self.checkpoint_every,
                        degraded_window=self.degraded_window,
                        max_recoveries=self.max_recoveries,
                        ctrl_timeout=self.ctrl_timeout,
                        exchange_timeout=self.exchange_timeout,
                        retries=self.retries,
                        backoff=self.backoff,
                    ),
                )
            )
            yield self
        finally:
            while undo:
                setter, previous = undo.pop()
                setter(previous)
