"""Survey-like workload (the paper's in-lab user study).

The paper exposed 200 RSS news items spanning assorted topics (culture,
politics, people, sports, ...) to 120 colleagues and relatives, recording a
like/dislike for every (user, item) pair, then scaled the experiment by
instantiating **4 replicas of each user and item** — yielding the Table I
row of 480 users and ~1000 news (Section IV-A).

Our generator models the population the way the paper's sociability analysis
(Figure 11) describes it: most users have *alter-egos* — people with close
tastes — plus a tail of eccentric raters:

* ``n_groups`` latent **taste groups** (colleague circles, families) each
  care about a few topics (``topics_per_group`` of ``n_topics``);
* each base user joins a group and inherits its focus set, then *flips* a
  geometric number of topics in/out — members of one group are similar but
  not identical, and heavy flippers form the low-sociability tail;
* each base item belongs to one topic (popularity-weighted);
* the user likes an item with probability ``like_prob_focus`` when its
  topic is in her focus set and ``like_prob_other`` otherwise;
* the base like matrix is then tiled ``replication²`` times: every replica
  of a user holds the opinions of her base user on every replica of each
  item, exactly the paper's scaling trick ("the resulting bias affects both
  WHATSUP and the state-of-the-art solutions we compare against").
"""

from __future__ import annotations

import numpy as np

from repro.datasets._build import ensure_items_liked, finalize_items
from repro.datasets.base import Dataset
from repro.datasets.digg import zipf_weights
from repro.utils.exceptions import DatasetError
from repro.utils.rng import spawn_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["survey_dataset"]


def survey_dataset(
    n_base_users: int = 120,
    n_base_items: int = 250,
    replication: int = 1,
    *,
    n_topics: int = 15,
    n_groups: int = 8,
    topics_per_group: int = 3,
    flip_prob: float = 0.6,
    like_prob_focus: float = 0.85,
    like_prob_other: float = 0.03,
    topic_zipf_exponent: float = 0.6,
    publish_cycles: int = 50,
    seed: int = 0,
) -> Dataset:
    """Generate the survey-like workload.

    Parameters
    ----------
    n_base_users / n_base_items:
        The underlying survey dimensions (paper: 120 users, 200-250 items).
    replication:
        Instances per user/item.  The paper uses 4 (→ 480 users, ~1000
        items); the default 1 keeps benchmark runs fast, and
        ``replication=4`` reproduces Table I.
    n_topics:
        Latent topics behind the RSS feeds.
    n_groups / topics_per_group:
        Number of taste groups and the size of each group's focus set.
    flip_prob:
        Parameter of the geometric flip count: each user flips
        ``Geometric(flip_prob) - 1`` topics of her group's focus set
        (0 flips with probability ``flip_prob``); smaller values produce
        more eccentric users and a flatter sociability spectrum.
    like_prob_focus / like_prob_other:
        Like probabilities inside / outside the focus set.
    topic_zipf_exponent:
        Skew of topic frequencies among items.
    publish_cycles / seed:
        Scheduling window and workload seed.

    Returns
    -------
    Dataset
        With ``n_topics`` topics (topic ids shared across replicas — replica
        items of one base item carry the same topic, as the paper's
        replicated news do).
    """
    check_positive("n_base_users", n_base_users)
    check_positive("n_base_items", n_base_items)
    check_positive("replication", replication)
    check_positive("n_topics", n_topics)
    check_positive("n_groups", n_groups)
    check_positive("topics_per_group", topics_per_group)
    check_probability("flip_prob", flip_prob)
    check_probability("like_prob_focus", like_prob_focus)
    check_probability("like_prob_other", like_prob_other)
    if topics_per_group > n_topics:
        raise DatasetError(
            f"topics_per_group ({topics_per_group}) > n_topics ({n_topics})"
        )
    if flip_prob == 0.0:
        raise DatasetError("flip_prob must be > 0 (geometric parameter)")
    rng = spawn_generator(seed, "dataset-survey")

    # taste groups: a focus set per group, Zipf-weighted group sizes;
    # group focus sizes vary around topics_per_group (some circles follow
    # one topic, others many) — the heterogeneity behind Figure 11's
    # sociability spectrum and the hub formation cosine suffers from
    archetypes = np.zeros((n_groups, n_topics), dtype=bool)
    for g in range(n_groups):
        lo = max(1, topics_per_group - 2)
        hi = min(n_topics, topics_per_group + 2)
        size = int(rng.integers(lo, hi + 1))
        archetypes[g, rng.choice(n_topics, size=size, replace=False)] = True
    group_weights = zipf_weights(n_groups, 0.5)
    groups = rng.choice(n_groups, size=n_base_users, p=group_weights)
    focus = archetypes[groups].copy()

    # individual eccentricity: flip a geometric number of topics
    for u in range(n_base_users):
        n_flips = int(rng.geometric(flip_prob)) - 1
        for _ in range(min(n_flips, n_topics)):
            t = int(rng.integers(n_topics))
            focus[u, t] = ~focus[u, t]
        if not focus[u].any():  # nobody likes nothing: keep one topic
            focus[u, int(rng.integers(n_topics))] = True

    topic_pop = zipf_weights(n_topics, topic_zipf_exponent)
    base_topics = rng.choice(n_topics, size=n_base_items, p=topic_pop)

    like_prob = np.where(
        focus[:, base_topics], like_prob_focus, like_prob_other
    )
    base_likes = rng.random((n_base_users, n_base_items)) < like_prob
    # fix up unliked items *before* replication so replicas stay exact
    ensure_items_liked(base_likes, rng)

    # replicate users (rows) and items (columns): every user replica holds
    # her base user's opinion on every item replica
    likes = np.tile(base_likes, (replication, replication))
    item_topics = np.tile(base_topics, replication)
    items, likes = finalize_items("survey", item_topics, likes, publish_cycles, rng)
    return Dataset(
        name="WHATSUP Survey",
        n_users=n_base_users * replication,
        items=items,
        likes=likes,
        publish_cycles=publish_cycles,
        n_topics=n_topics,
    )
