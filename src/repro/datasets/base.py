"""Workload abstraction shared by all dataset generators.

A :class:`Dataset` bundles everything an experiment needs:

* the user population size;
* the ordered list of :class:`~repro.core.news.NewsItem` (each already
  stamped with its source node and publication cycle);
* the ground-truth boolean ``likes[user, item]`` matrix — the oracle behind
  the like/dislike buttons of the paper's user interface;
* optionally an explicit social graph (the Digg workload, used by the
  cascading baseline) and per-item topics (used by the C-Pub/Sub baseline).

The paper's three workloads (Table I) are produced by
:mod:`repro.datasets.synthetic`, :mod:`repro.datasets.digg` and
:mod:`repro.datasets.survey`; all of them are *generators* because the
original traces (an Arxiv crawl, a 2010 Digg crawl and an in-lab survey) are
not redistributable — see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.news import NewsItem
from repro.simulation.schedule import PublicationSchedule
from repro.utils.exceptions import DatasetError

__all__ = ["Dataset", "OpinionOracle"]


@dataclass
class Dataset:
    """One evaluation workload.

    Attributes
    ----------
    name:
        Human-readable workload name (Table I's first column).
    n_users:
        Number of users; node ids are ``0 .. n_users - 1``.
    items:
        Workload items in publication order; ``items[i].created_at`` is the
        cycle at which item *i* is published and ``items[i].source`` the
        publishing node.  Dense item index *i* is used throughout the
        metrics code.
    likes:
        Boolean ``(n_users, n_items)`` ground-truth interest matrix.
    publish_cycles:
        The window ``[0, publish_cycles)`` over which items appear.
    social_graph:
        Optional explicit directed social graph (Digg); edges point from a
        user to the neighbours that receive her cascades.
    n_topics:
        Number of distinct topics (communities / categories), when the
        workload has them; ``0`` otherwise.
    """

    name: str
    n_users: int
    items: list[NewsItem]
    likes: np.ndarray
    publish_cycles: int
    social_graph: nx.DiGraph | None = None
    n_topics: int = 0
    _item_topics: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.likes = np.asarray(self.likes, dtype=bool)
        if self.likes.shape != (self.n_users, len(self.items)):
            raise DatasetError(
                f"likes matrix shape {self.likes.shape} does not match "
                f"({self.n_users}, {len(self.items)})"
            )
        if self.n_users <= 0 or not self.items:
            raise DatasetError("a dataset needs at least one user and one item")
        if self.publish_cycles <= 0:
            raise DatasetError("publish_cycles must be > 0")
        self._item_topics = np.asarray([it.topic for it in self.items], dtype=np.int64)
        for idx, item in enumerate(self.items):
            if not 0 <= item.source < self.n_users:
                raise DatasetError(
                    f"item {idx} has out-of-range source {item.source}"
                )
            if not 0 <= item.created_at < self.publish_cycles:
                raise DatasetError(
                    f"item {idx} publication cycle {item.created_at} outside "
                    f"[0, {self.publish_cycles})"
                )
            if not self.likes[item.source, idx]:
                raise DatasetError(
                    f"item {idx}'s source {item.source} does not like it; "
                    "publishers must be interested in their own items"
                )

    # -- derived views ------------------------------------------------------

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def item_topics(self) -> np.ndarray:
        """Per-item topic ids (``-1`` for untagged workloads)."""
        return self._item_topics

    def schedule(self) -> PublicationSchedule:
        """Build the engine's publication schedule from the item stamps."""
        return PublicationSchedule(
            (item.created_at, item) for item in self.items
        )

    def interested_counts(self) -> np.ndarray:
        """Per-item number of interested users (popularity numerator)."""
        return self.likes.sum(axis=0)

    def popularity(self) -> np.ndarray:
        """Per-item fraction of interested users (Figure 10's x-axis)."""
        return self.interested_counts() / float(self.n_users)

    def like_rate(self) -> float:
        """Overall fraction of (user, item) pairs that are likes."""
        return float(self.likes.mean())

    def topic_subscriptions(self) -> list[set[int]]:
        """Per-user topic subscriptions for the C-Pub/Sub baseline.

        Following Section IV-B: "we subscribe a user to a topic if she likes
        at least one item associated with that topic".
        """
        if self.n_topics <= 0:
            raise DatasetError(
                f"workload {self.name!r} has no topics; C-Pub/Sub needs a "
                "topic-tagged dataset"
            )
        subs: list[set[int]] = [set() for _ in range(self.n_users)]
        topics = self._item_topics
        for user in range(self.n_users):
            liked_items = np.flatnonzero(self.likes[user])
            subs[user] = {int(topics[i]) for i in liked_items if topics[i] >= 0}
        return subs

    def summary_row(self) -> tuple[str, int, int]:
        """The workload's Table I row: (name, #users, #news)."""
        return (self.name, self.n_users, self.n_items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, like_rate={self.like_rate():.2f})"
        )


class OpinionOracle:
    """Callable adapter from the ground-truth matrix to per-node opinions.

    Nodes consult ``oracle(node_id, item)`` when an item first reaches them —
    the simulation stand-in for the user pressing like or dislike.
    """

    __slots__ = ("_likes", "_index_of")

    def __init__(self, dataset: Dataset) -> None:
        # plain nested lists: one oracle call per first receipt is a hot
        # path, and Python list indexing beats numpy scalar indexing there
        self._likes = np.asarray(dataset.likes, dtype=bool).tolist()
        self._index_of = {
            item.item_id: idx for idx, item in enumerate(dataset.items)
        }

    def __call__(self, node_id: int, item: NewsItem) -> bool:
        """Whether *node_id* likes *item* (ground truth)."""
        return self._likes[node_id][self._index_of[item.item_id]]
