"""Synthetic community workload (the paper's Arxiv-derived trace).

The paper builds its synthetic workload by running Newman's community
detection on the Arxiv collaboration graph, obtaining **21 communities with
31 to 1036 members**, and then letting each community's members like exactly
the ~120 items published inside that community — "clearly defined
communities of interest, thus enabling the evaluation of WHATSUP's
performance in a clearly identified topology" (Section IV-A).

Since the point of the Arxiv step is only to obtain a realistic *size
spectrum* of disjoint interest communities, we generate the communities
directly: sizes follow a geometric progression between ``min_size`` and
``size_ratio × min_size`` (matching the paper's 31→1036 spread ≈ ×33),
normalised to the requested user count.  Every member of a community likes
every item of that community and (with probability *noise*) random items of
other communities.

At paper scale — ``synthetic_dataset(n_users=3180)`` with the default 21
communities and 120 items each — this reproduces Table I's synthetic row
(3180 users, ~2000 news after the per-community item cap).
"""

from __future__ import annotations

import numpy as np

from repro.datasets._build import ensure_items_liked, finalize_items
from repro.datasets.base import Dataset
from repro.utils.exceptions import DatasetError
from repro.utils.rng import spawn_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["synthetic_dataset", "community_sizes"]


def community_sizes(
    n_users: int,
    n_communities: int,
    *,
    size_ratio: float = 33.0,
) -> list[int]:
    """Geometric community-size spectrum summing to *n_users*.

    The largest community is ``size_ratio`` times the smallest, mirroring
    the paper's 31→1036 Arxiv spread.  Every community has at least one
    member; rounding residue goes to the largest communities.
    """
    check_positive("n_users", n_users)
    check_positive("n_communities", n_communities)
    check_positive("size_ratio", size_ratio)
    if n_communities > n_users:
        raise DatasetError(
            f"cannot split {n_users} users into {n_communities} communities"
        )
    raw = np.geomspace(1.0, size_ratio, n_communities)
    sizes = np.maximum(1, np.floor(raw / raw.sum() * n_users)).astype(int)
    # distribute the rounding residue to the largest communities first
    residue = n_users - int(sizes.sum())
    order = np.argsort(-raw)
    i = 0
    while residue != 0:
        idx = int(order[i % n_communities])
        step = 1 if residue > 0 else -1
        if sizes[idx] + step >= 1:
            sizes[idx] += step
            residue -= step
        i += 1
    return [int(s) for s in sizes]


def synthetic_dataset(
    n_users: int = 795,
    n_communities: int = 21,
    items_per_community: int = 24,
    *,
    size_ratio: float = 33.0,
    noise: float = 0.0,
    publish_cycles: int = 50,
    seed: int = 0,
) -> Dataset:
    """Generate the synthetic community workload.

    Parameters
    ----------
    n_users:
        Total population.  Paper scale is 3180; the default is a 4×-reduced
        population for fast benchmarking.
    n_communities:
        Number of disjoint interest communities (paper: 21).
    items_per_community:
        News items published inside each community (paper: 120; the default
        keeps the item/user ratio close to the paper's 2000/3180).
    size_ratio:
        Largest/smallest community size ratio (paper: 1036/31 ≈ 33).
    noise:
        Probability that a user likes any given item *outside* her
        community; 0 reproduces the paper's clearly-delineated setting.
    publish_cycles:
        Cycles over which publications are spread.
    seed:
        Workload seed (the dataset is deterministic in it).

    Returns
    -------
    Dataset
        With ``n_topics = n_communities``; item topics are community ids.
    """
    check_probability("noise", noise)
    check_positive("items_per_community", items_per_community)
    rng = spawn_generator(seed, "dataset-synthetic")

    sizes = community_sizes(n_users, n_communities, size_ratio=size_ratio)
    membership = np.repeat(np.arange(n_communities), sizes)
    rng.shuffle(membership)

    n_items = n_communities * items_per_community
    item_topics = np.repeat(np.arange(n_communities), items_per_community)

    likes = membership[:, None] == item_topics[None, :]
    if noise > 0.0:
        extra = rng.random((n_users, n_items)) < noise
        likes = likes | extra
    likes = np.ascontiguousarray(likes)

    ensure_items_liked(likes, rng)
    items, likes = finalize_items("synthetic", item_topics, likes, publish_cycles, rng)
    return Dataset(
        name="Synthetic",
        n_users=n_users,
        items=items,
        likes=likes,
        publish_cycles=publish_cycles,
        n_topics=n_communities,
    )
