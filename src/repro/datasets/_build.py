"""Internal helpers shared by the dataset generators."""

from __future__ import annotations

import numpy as np

from repro.core.news import NewsItem
from repro.simulation.schedule import PublicationSchedule
from repro.utils.exceptions import DatasetError

__all__ = ["ensure_items_liked", "finalize_items"]


def ensure_items_liked(likes: np.ndarray, rng: np.random.Generator) -> None:
    """Guarantee every item has at least one interested user (in place).

    Every published item needs a source, and sources like their own items
    (Algorithm 1 line 14), so an item nobody likes could not exist in the
    paper's workloads.  For generator parameter corners that produce such
    columns, we assign one uniformly random fan.
    """
    empty = np.flatnonzero(likes.sum(axis=0) == 0)
    for col in empty:
        likes[int(rng.integers(likes.shape[0])), col] = True


def finalize_items(
    name: str,
    topics: np.ndarray,
    likes: np.ndarray,
    publish_cycles: int,
    rng: np.random.Generator,
) -> tuple[list[NewsItem], np.ndarray]:
    """Turn a raw like matrix into a publication-ready item list.

    Shuffles item order (so topics interleave over time, as in a live news
    stream), assigns publication cycles uniformly over
    ``[0, publish_cycles)``, and picks each item's source uniformly among
    its interested users.

    Parameters
    ----------
    name:
        Workload name, used in item titles.
    topics:
        Per-item topic ids aligned with *likes* columns.
    likes:
        Boolean ``(n_users, n_items)`` matrix; columns are permuted in the
        returned copy to match the shuffled item order.
    publish_cycles:
        Publication window length.
    rng:
        Generator driving the shuffle and source choices.

    Returns
    -------
    (items, likes):
        The item list in publication order and the column-permuted matrix.
    """
    n_items = likes.shape[1]
    if len(topics) != n_items:
        raise DatasetError(
            f"topics length {len(topics)} != item count {n_items}"
        )
    order = rng.permutation(n_items)
    likes = likes[:, order]
    topics = topics[order]

    items: list[NewsItem] = []
    for idx in range(n_items):
        fans = np.flatnonzero(likes[:, idx])
        if len(fans) == 0:
            raise DatasetError(f"item {idx} has no interested user")
        source = int(fans[rng.integers(len(fans))])
        cycle = PublicationSchedule.publication_cycle_of(
            idx, n_items, publish_cycles
        )
        items.append(
            NewsItem.publish(
                source=source,
                created_at=cycle,
                topic=int(topics[idx]),
                title=f"{name}-item-{idx}",
            )
        )
    return items, likes
