"""Digg-like workload: categories + an explicit social graph.

The paper crawled Digg for three weeks in 2010, obtaining 750 users, 2500
news items and 40 categories, plus the explicit follower graph along which
Digg cascades items (Section IV-A).  To undo the bias of cascade-limited
exposure, the authors define a user's ground-truth interests as *all items
in the categories she published in* — category-driven interests decoupled
from the social graph.

Our generator reproduces the two structural properties the evaluation
exercises:

* **category-driven interests**: item categories follow a Zipf popularity
  law; each user is interested in a few categories (popularity-biased);
  she likes every item of her categories (plus optional noise);
* **a partially-aligned social graph**: a preferential-attachment follower
  graph in which a tunable ``homophily`` fraction of edges link users
  sharing a category and the rest are interest-blind.  Cascading over this
  graph reaches only a small part of each item's audience — the effect
  behind Table V's 0.09 recall for Cascade.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.datasets._build import ensure_items_liked, finalize_items
from repro.datasets.base import Dataset
from repro.utils.exceptions import DatasetError
from repro.utils.rng import spawn_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["digg_dataset", "zipf_weights"]


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf mass over ``n`` ranks: ``w_r ∝ 1 / (r+1)^exponent``."""
    check_positive("n", n)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _interest_sets(
    n_users: int,
    n_categories: int,
    popularity: np.ndarray,
    mean_interests: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Sample each user's interest categories, biased by popularity."""
    interests: list[np.ndarray] = []
    for _ in range(n_users):
        k = 1 + rng.poisson(max(mean_interests - 1.0, 0.0))
        k = min(int(k), n_categories)
        cats = rng.choice(n_categories, size=k, replace=False, p=popularity)
        interests.append(np.sort(cats))
    return interests


def _follower_graph(
    n_users: int,
    interests: list[np.ndarray],
    edges_per_user: int,
    homophily: float,
    rng: np.random.Generator,
) -> nx.DiGraph:
    """Preferential-attachment follower graph with interest homophily.

    Users join in random order; each joiner follows ``edges_per_user``
    existing *influencers*.  With probability ``homophily`` the influencer
    is drawn (follower-count-weighted) among users sharing a category with
    the joiner, otherwise among everyone.  An edge ``influencer → joiner``
    means the joiner receives the influencer's cascades.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_users))
    join_order = rng.permutation(n_users)
    category_members: dict[int, list[int]] = {}
    followers = np.ones(n_users)  # +1 smoothing for preferential attachment

    for pos, joiner in enumerate(join_order):
        joiner = int(joiner)
        existing = join_order[:pos]
        if len(existing) > 0:
            k = min(edges_per_user, len(existing))
            similar = [
                u
                for c in interests[joiner]
                for u in category_members.get(int(c), [])
            ]
            chosen: set[int] = set()
            for _ in range(k):
                pool: list[int]
                if similar and rng.random() < homophily:
                    pool = similar
                else:
                    pool = [int(u) for u in existing]
                weights = followers[pool]
                target = int(
                    np.asarray(pool)[
                        rng.choice(len(pool), p=weights / weights.sum())
                    ]
                )
                if target != joiner and target not in chosen:
                    chosen.add(target)
                    graph.add_edge(target, joiner)
                    followers[target] += 1.0
        for c in interests[joiner]:
            category_members.setdefault(int(c), []).append(joiner)
    return graph


def digg_dataset(
    n_users: int = 188,
    n_items: int = 625,
    n_categories: int = 40,
    *,
    zipf_exponent: float = 1.0,
    mean_interests: float = 3.0,
    edges_per_user: int = 8,
    homophily: float = 0.5,
    noise: float = 0.01,
    publish_cycles: int = 50,
    seed: int = 0,
) -> Dataset:
    """Generate the Digg-like workload.

    Parameters
    ----------
    n_users / n_items:
        Population and stream sizes.  Paper scale is 750 / 2500; the
        default is a 4×-reduced version for fast benchmarking.
    n_categories:
        Distinct news categories (paper: 40).
    zipf_exponent:
        Category-popularity skew (1.0 → classic Zipf).
    mean_interests:
        Mean number of categories per user (1 + Poisson sampling).
    edges_per_user:
        Follower edges each joining user creates (graph density).
    homophily:
        Fraction of follow edges constrained to shared-category users; the
        remainder is interest-blind, which is what caps cascade recall.
    noise:
        Probability of liking an item outside one's categories.
    publish_cycles / seed:
        Scheduling window and workload seed.

    Returns
    -------
    Dataset
        With ``social_graph`` set (the cascade substrate) and
        ``n_topics = n_categories``.
    """
    check_probability("homophily", homophily)
    check_probability("noise", noise)
    check_positive("edges_per_user", edges_per_user)
    if n_categories <= 0:
        raise DatasetError("n_categories must be > 0")
    rng = spawn_generator(seed, "dataset-digg")

    popularity = zipf_weights(n_categories, zipf_exponent)
    item_topics = rng.choice(n_categories, size=n_items, p=popularity)
    interests = _interest_sets(n_users, n_categories, popularity, mean_interests, rng)

    likes = np.zeros((n_users, n_items), dtype=bool)
    for user, cats in enumerate(interests):
        likes[user] = np.isin(item_topics, cats)
    if noise > 0.0:
        likes |= rng.random((n_users, n_items)) < noise

    ensure_items_liked(likes, rng)
    graph = _follower_graph(n_users, interests, edges_per_user, homophily, rng)
    items, likes = finalize_items("digg", item_topics, likes, publish_cycles, rng)
    return Dataset(
        name="Digg",
        n_users=n_users,
        items=items,
        likes=likes,
        publish_cycles=publish_cycles,
        social_graph=graph,
        n_topics=n_categories,
    )
