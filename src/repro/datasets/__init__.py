"""Workload generators reproducing the paper's three datasets (Table I).

| Paper workload           | Generator                     | Paper scale      |
|--------------------------|-------------------------------|------------------|
| Synthetic (Arxiv-based)  | :func:`synthetic_dataset`     | 3180 users, ~2500 news |
| Digg crawl               | :func:`digg_dataset`          | 750 users, 2500 news   |
| WHATSUP survey           | :func:`survey_dataset`        | 480 users, ~1000 news  |

The original traces are not redistributable, so each generator synthesises
an equivalent workload preserving the structural property the paper's
evaluation exercises (see DESIGN.md, "Substitutions").  All generators are
deterministic in their ``seed`` argument.  :func:`dataset_from_likes` wraps
arbitrary external interest matrices into runnable workloads.
"""

from repro.datasets.base import Dataset, OpinionOracle
from repro.datasets.custom import dataset_from_likes
from repro.datasets.digg import digg_dataset, zipf_weights
from repro.datasets.drift import drifting_survey_dataset
from repro.datasets.survey import survey_dataset
from repro.datasets.synthetic import community_sizes, synthetic_dataset

__all__ = [
    "Dataset",
    "OpinionOracle",
    "dataset_from_likes",
    "digg_dataset",
    "drifting_survey_dataset",
    "survey_dataset",
    "synthetic_dataset",
    "community_sizes",
    "zipf_weights",
]
