"""Interest-drift workload: user tastes evolve during the run.

The paper motivates the profile window as "the reactivity of the system
with respect to user interests" (§II-E) and reports that windows between
1/5 and 2/5 of the run length maximise F1, with larger windows making the
system "not dynamic enough" (§IV-D).  On a *static* workload that upper
branch cannot appear — old opinions never go stale — so the window ablation
needs a workload whose ground truth actually moves.

:func:`drifting_survey_dataset` splits the run into ``n_phases`` equal
publication phases.  Users start from taste-group focus sets (as in
:func:`~repro.datasets.survey.survey_dataset`) and, at every phase
boundary, each user independently *drops* each focus topic with probability
``drift`` and replaces it with a random other topic — gradual interest
drift, the realistic version of Figure 7's swap upper bound.  An item's
ground-truth audience is defined by the focus sets of the phase it is
published in: exactly what its receivers would click at that time.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._build import ensure_items_liked, finalize_items
from repro.datasets.base import Dataset
from repro.datasets.digg import zipf_weights
from repro.utils.exceptions import DatasetError
from repro.utils.rng import spawn_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["drifting_survey_dataset"]


def drifting_survey_dataset(
    n_base_users: int = 120,
    n_base_items: int = 300,
    *,
    n_phases: int = 3,
    drift: float = 0.5,
    n_topics: int = 15,
    n_groups: int = 8,
    topics_per_group: int = 3,
    like_prob_focus: float = 0.85,
    like_prob_other: float = 0.03,
    topic_zipf_exponent: float = 0.6,
    publish_cycles: int = 90,
    seed: int = 0,
) -> Dataset:
    """Generate a survey-like workload whose interests drift per phase.

    Parameters
    ----------
    n_base_users / n_base_items:
        Population and stream sizes (no replication — drift studies use
        the raw population).
    n_phases:
        Number of equal-length publication phases; interests change at
        each boundary.
    drift:
        Per-topic probability that a user's focus topic is replaced at a
        phase boundary (0 → static, 1 → completely new tastes each phase).
    others:
        As in :func:`~repro.datasets.survey.survey_dataset`.

    Returns
    -------
    Dataset
        Items are tagged with ``topic = phase * n_topics + topic_id`` so
        phase-aware analyses can segment them; ``n_topics`` on the dataset
        reflects the expanded tag space.
    """
    check_positive("n_base_users", n_base_users)
    check_positive("n_base_items", n_base_items)
    check_positive("n_phases", n_phases)
    check_probability("drift", drift)
    check_positive("n_topics", n_topics)
    check_positive("n_groups", n_groups)
    if topics_per_group > n_topics:
        raise DatasetError(
            f"topics_per_group ({topics_per_group}) > n_topics ({n_topics})"
        )
    if n_phases > n_base_items:
        raise DatasetError("need at least one item per phase")
    rng = spawn_generator(seed, "dataset-drift")

    # initial taste groups (as in the static survey generator)
    archetypes = np.zeros((n_groups, n_topics), dtype=bool)
    for g in range(n_groups):
        archetypes[g, rng.choice(n_topics, size=topics_per_group, replace=False)] = True
    groups = rng.choice(n_groups, size=n_base_users, p=zipf_weights(n_groups, 0.5))
    focus = archetypes[groups].copy()

    topic_pop = zipf_weights(n_topics, topic_zipf_exponent)

    # per-phase item counts (as even as possible)
    base = n_base_items // n_phases
    counts = [base + (1 if p < n_base_items % n_phases else 0) for p in range(n_phases)]

    likes_parts: list[np.ndarray] = []
    topic_parts: list[np.ndarray] = []
    for phase, count in enumerate(counts):
        if phase > 0:
            # drift: drop focus topics w.p. `drift`, replace with new ones
            for u in range(n_base_users):
                current = np.flatnonzero(focus[u])
                for t in current:
                    if rng.random() < drift:
                        focus[u, t] = False
                        replacement = int(rng.integers(n_topics))
                        focus[u, replacement] = True
                if not focus[u].any():
                    focus[u, int(rng.integers(n_topics))] = True
        topics = rng.choice(n_topics, size=count, p=topic_pop)
        like_prob = np.where(
            focus[:, topics], like_prob_focus, like_prob_other
        )
        likes_parts.append(rng.random((n_base_users, count)) < like_prob)
        # phase-tagged topics keep C-Pub/Sub-style analyses phase-aware
        topic_parts.append(phase * n_topics + topics)

    likes = np.concatenate(likes_parts, axis=1)
    item_topics = np.concatenate(topic_parts)
    ensure_items_liked(likes, rng)

    # publication order must follow phases: assign cycles by item index
    # *without* shuffling across phases (finalize_items shuffles globally,
    # so we shuffle within each phase and concatenate instead)
    items = []
    offset = 0
    from repro.core.news import NewsItem
    from repro.simulation.schedule import PublicationSchedule

    cols = []
    for phase, count in enumerate(counts):
        perm = offset + rng.permutation(count)
        cols.extend(int(i) for i in perm)
        offset += count
    likes = likes[:, cols]
    item_topics = item_topics[cols]
    for idx in range(n_base_items):
        fans = np.flatnonzero(likes[:, idx])
        source = int(fans[rng.integers(len(fans))])
        cycle = PublicationSchedule.publication_cycle_of(
            idx, n_base_items, publish_cycles
        )
        items.append(
            NewsItem.publish(
                source=source,
                created_at=cycle,
                topic=int(item_topics[idx]),
                title=f"drift-item-{idx}",
            )
        )
    return Dataset(
        name="Drifting Survey",
        n_users=n_base_users,
        items=items,
        likes=likes,
        publish_cycles=publish_cycles,
        n_topics=n_phases * n_topics,
    )
