"""Build a workload from a user-supplied like matrix.

Downstream users of the library will often have their own interest data —
a real like/dislike log, a ratings dump, an A/B cohort.  This module turns
any boolean matrix into a runnable :class:`~repro.datasets.base.Dataset`
(assigning sources and publication cycles the same way the paper-shaped
generators do), so the full experiment harness works on external data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._build import ensure_items_liked, finalize_items
from repro.datasets.base import Dataset
from repro.utils.exceptions import DatasetError
from repro.utils.rng import spawn_generator

__all__ = ["dataset_from_likes"]


def dataset_from_likes(
    likes: np.ndarray,
    *,
    name: str = "custom",
    item_topics: np.ndarray | None = None,
    publish_cycles: int = 50,
    shuffle_items: bool = True,
    seed: int = 0,
) -> Dataset:
    """Wrap a boolean like matrix into a :class:`Dataset`.

    Parameters
    ----------
    likes:
        Boolean ``(n_users, n_items)`` matrix.  Items nobody likes get one
        random fan assigned (they need a publisher).
    name:
        Workload name used in reports.
    item_topics:
        Optional per-item topic ids (enables the C-Pub/Sub baseline).
    publish_cycles:
        Cycles over which publications are spread.
    shuffle_items:
        Whether to randomise publication order (keep ``True`` unless your
        column order *is* the intended arrival order).
    seed:
        Drives source selection and the optional shuffle.
    """
    likes = np.array(likes, dtype=bool, copy=True)
    if likes.ndim != 2:
        raise DatasetError(f"likes must be 2-D, got shape {likes.shape}")
    n_users, n_items = likes.shape
    if n_users == 0 or n_items == 0:
        raise DatasetError("likes matrix must be non-empty")
    if item_topics is None:
        topics = np.full(n_items, -1, dtype=np.int64)
        n_topics = 0
    else:
        topics = np.asarray(item_topics, dtype=np.int64)
        if topics.shape != (n_items,):
            raise DatasetError(
                f"item_topics shape {topics.shape} != ({n_items},)"
            )
        n_topics = int(topics.max()) + 1 if len(topics) else 0

    rng = spawn_generator(seed, f"dataset-custom-{name}")
    ensure_items_liked(likes, rng)
    if not shuffle_items:
        # finalize_items shuffles; neutralise by pre-permuting with the
        # inverse of the permutation it will apply — simpler: inline the
        # no-shuffle path here.
        from repro.core.news import NewsItem
        from repro.simulation.schedule import PublicationSchedule

        items = []
        for idx in range(n_items):
            fans = np.flatnonzero(likes[:, idx])
            source = int(fans[rng.integers(len(fans))])
            cycle = PublicationSchedule.publication_cycle_of(
                idx, n_items, publish_cycles
            )
            items.append(
                NewsItem.publish(
                    source=source,
                    created_at=cycle,
                    topic=int(topics[idx]),
                    title=f"{name}-item-{idx}",
                )
            )
    else:
        items, likes = finalize_items(name, topics, likes, publish_cycles, rng)
    return Dataset(
        name=name,
        n_users=n_users,
        items=items,
        likes=likes,
        publish_cycles=publish_cycles,
        n_topics=n_topics,
    )
