"""Shared utilities for the WHATSUP reproduction.

This subpackage holds infrastructure that every other layer relies on:

* :mod:`repro.utils.exceptions` — the library's exception hierarchy;
* :mod:`repro.utils.hashing` — stable 8-byte identifiers for news items,
  mirroring the hash identifiers the paper describes in Section II-A;
* :mod:`repro.utils.rng` — deterministic random-stream management so that
  every experiment is reproducible from a single integer seed;
* :mod:`repro.utils.tables` — plain-text table rendering used by the
  experiment harness to print paper-style result tables;
* :mod:`repro.utils.validation` — small argument-checking helpers shared by
  configuration objects.
"""

from repro.utils.exceptions import (
    ConfigurationError,
    DatasetError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.utils.hashing import item_digest, stable_hash64
from repro.utils.rng import RngStreams, spawn_generator
from repro.utils.tables import format_table, format_distribution
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ConfigurationError",
    "DatasetError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "item_digest",
    "stable_hash64",
    "RngStreams",
    "spawn_generator",
    "format_table",
    "format_distribution",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
