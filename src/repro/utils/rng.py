"""Deterministic random-stream management.

Every experiment in the reproduction is driven by a single integer seed.  To
keep independent parts of the system (dataset generation, RPS gossip, BEEP
target selection, transport loss, churn, ...) statistically independent *and*
individually reproducible, we derive named child generators from a root seed
using :class:`numpy.random.SeedSequence` spawning, which is the recommended
mechanism for parallel and multi-component stochastic simulations.

Example
-------
>>> streams = RngStreams(seed=42)
>>> rps_rng = streams.get("rps")
>>> beep_rng = streams.get("beep")
>>> streams2 = RngStreams(seed=42)
>>> float(streams2.get("rps").random()) == float(RngStreams(42).get("rps").random())
True
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStreams", "spawn_generator"]


def _label_entropy(label: str) -> list[int]:
    """Map a stream label to a deterministic entropy word list."""
    # Four 32-bit words derived from the label bytes, so different labels
    # yield independent SeedSequences regardless of the root seed.
    data = label.encode("utf-8")
    words: list[int] = []
    acc = 2166136261  # FNV-1a basis
    for i, byte in enumerate(data):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
        if i % 4 == 3:
            words.append(acc)
    words.append(acc ^ len(data))
    return words[:4] if words else [0]


def spawn_generator(seed: int, label: str) -> np.random.Generator:
    """Create a generator for *label* derived from the root *seed*.

    Two calls with the same ``(seed, label)`` pair return generators that
    produce identical streams; different labels give independent streams.
    """
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, *_label_entropy(label)])
    return np.random.Generator(np.random.PCG64(ss))


class RngStreams:
    """A registry of named, independently seeded random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  All named streams are deterministic
        functions of this value and their label.

    Notes
    -----
    Generators are created lazily and memoised, so repeated ``get("rps")``
    calls return the *same* generator object (its state advances as it is
    used).  Use :meth:`fresh` when an independent restart of a stream is
    needed (e.g. one generator per node).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, label: str) -> np.random.Generator:
        """Return the memoised generator for *label* (creating it if new)."""
        if label not in self._streams:
            self._streams[label] = spawn_generator(self.seed, label)
        return self._streams[label]

    def fresh(self, label: str) -> np.random.Generator:
        """Return a brand-new generator for *label* (never memoised)."""
        return spawn_generator(self.seed, label)

    def __contains__(self, label: str) -> bool:
        return label in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, labels={sorted(self._streams)})"
