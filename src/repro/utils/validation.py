"""Argument-validation helpers.

Configuration dataclasses across the library validate their fields eagerly so
that a bad experiment fails at construction time rather than thousands of
simulated cycles in.  These helpers raise :class:`ConfigurationError` with a
uniform message format.
"""

from __future__ import annotations

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
]


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(name: str, value: float) -> None:
    """Require ``0 < value <= 1`` (a non-empty fraction of a whole)."""
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value!r}")
