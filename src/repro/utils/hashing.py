"""Stable 64-bit identifiers.

The paper (Section II-A) identifies every news item by an 8-byte hash that is
*not transmitted* but recomputed by every node on receipt.  We mirror that
with :func:`item_digest`, a deterministic 64-bit digest of the item's
(title, source, creation-time) triple.  The digest uses BLAKE2b so it is
stable across processes and Python versions (unlike the built-in ``hash``,
which is salted per interpreter).
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_hash64", "item_digest"]

_MASK64 = (1 << 64) - 1


def stable_hash64(data: bytes | str) -> int:
    """Return a deterministic unsigned 64-bit hash of *data*.

    Parameters
    ----------
    data:
        Raw bytes, or a string (encoded as UTF-8 before hashing).

    Returns
    -------
    int
        An integer in ``[0, 2**64)``; the same input always maps to the same
        output, in every process.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _MASK64


def item_digest(title: str, source: int, created_at: int) -> int:
    """Compute the 8-byte identifier of a news item.

    This is the reproduction of the paper's "8-byte hash used as the
    identifier of the news item" (Section II-A): a function of the publicly
    visible fields, so any node can recompute it locally instead of shipping
    it on the wire.

    Parameters
    ----------
    title:
        The item's title (the paper's items carry a title, a short
        description and a link; the title alone already disambiguates items
        in all our workloads, and collisions are handled by the full triple).
    source:
        The node id of the publisher.
    created_at:
        The publication timestamp (cycle number in simulation).

    Returns
    -------
    int
        Unsigned 64-bit identifier.
    """
    payload = f"{title}\x1f{source}\x1f{created_at}"
    return stable_hash64(payload)
