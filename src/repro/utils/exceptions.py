"""Exception hierarchy for the WHATSUP reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of ``repro`` with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter value or an inconsistent parameter combination.

    Raised eagerly at construction time (e.g. a negative fanout, a WUP view
    smaller than ``fLIKE``, a probability outside ``[0, 1]``) so that a bad
    experiment fails before any cycles are simulated.
    """


class DatasetError(ReproError, ValueError):
    """A dataset generator or loader received impossible parameters.

    Examples: more communities than users, a zero-item workload, or a
    ground-truth matrix whose shape disagrees with the declared user count.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent state.

    This indicates a bug in a protocol implementation (e.g. a node forwarding
    to an unknown peer id) rather than a user mistake.
    """


class ProtocolError(ReproError, RuntimeError):
    """A gossip/dissemination protocol violated one of its own invariants.

    Example: a BEEP copy whose dislike counter exceeds the configured TTL, or
    a view that grew beyond its capacity.
    """
