"""Plain-text table rendering for paper-style experiment reports.

The benchmark harness reproduces the paper's tables (Table III-VI) and the
data series behind its figures.  Rather than depending on a plotting stack,
every experiment prints an aligned text table; these helpers implement that
formatting in one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_distribution"]


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".3f",
) -> str:
    """Render *rows* as an aligned, pipe-separated text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells may be strings, ints, floats or
        bools.  Floats are formatted with *float_fmt*.
    title:
        Optional table caption printed above the header.
    float_fmt:
        ``format()`` spec applied to float cells, default three decimals.

    Returns
    -------
    str
        The rendered multi-line table (no trailing newline).
    """
    str_rows = [[_render_cell(c, float_fmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        cols = zip(cells, widths, strict=False)
        return " | ".join(c.ljust(w) for c, w in cols).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_distribution(
    dist: Mapping[object, float],
    *,
    title: str | None = None,
    as_percent: bool = True,
) -> str:
    """Render a discrete distribution as a two-row table (paper Table IV style).

    Parameters
    ----------
    dist:
        Mapping from category (e.g. number of dislikes) to probability mass.
    title:
        Optional caption.
    as_percent:
        When true (default), masses are shown as integer percentages, like
        the paper's "54% 31% 10% 3% 2%" row.
    """
    keys = list(dist.keys())
    if as_percent:
        values = [f"{100.0 * float(dist[k]):.0f}%" for k in keys]
    else:
        values = [f"{float(dist[k]):.3f}" for k in keys]
    return format_table(
        [str(k) for k in keys],
        [values],
        title=title,
    )
