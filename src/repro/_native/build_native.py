"""cffi builder for :mod:`repro._native` — the compiled similarity kernels.

The C source below implements the simulator's hottest inner loops — pool
similarity scoring (Vicinity merges, BEEP's dislike orientation), the
fused merge score+trim selection, and the dislike-target argmax — over the
packed sorted ``uint64`` snapshot arrays that
:class:`repro.core.profiles.FrozenProfile` and
:class:`repro.core.profiles.PackedView` already maintain.

Marshaling strategy
-------------------
A naive native kernel loses its C win to per-call marshaling: rebuilding
concatenated pool arrays in numpy costs more than the scoring it replaces
at the protocols' pool sizes (30–70 candidates).  These kernels instead
walk the Python objects *inside C* — the extension is compiled against
the full CPython API (not the limited ABI), and because cffi releases
the GIL around API-mode calls, every object-walking kernel re-acquires
it with ``PyGILState_Ensure`` before touching any ``PyObject``:

* each packed profile caches a ``_nd`` descriptor tuple
  ``(is_binary, liked_ptr, n_liked, rated_ptr, n_rated, scores_ptr,
  norm)`` pointing straight into its (immutable, owner-kept-alive) numpy
  arrays;
* a kernel call receives the owner and the candidate *list/entries*
  object itself and extracts descriptors with ``PyList_GET_ITEM`` /
  ``PyObject_GetAttr`` — ~0.2 µs per candidate instead of several numpy
  array constructions per call (the caller holds references to every
  object involved for the whole call, so the borrowed ``id()`` pointers
  stay valid);
* anything unexpected (missing descriptor, non-binary profile where the
  metric's binary fast path is required, out-of-``int64`` ids) makes the
  kernel return ``-1`` with the Python error state cleared, and the
  caller falls back to the numpy / set-algebra tiers.

Bitwise-equivalence discipline
------------------------------
Every kernel reproduces the scalar Python metrics *bit for bit*:

* set intersections are exact integer counts (merge walks over sorted
  arrays — the same sets Python's ``len(a & b)`` measures);
* weighted sums accumulate in ascending packed-id order, the canonical
  order shared by the scalar general path and the numpy batch kernel —
  identical addition order means identical IEEE-754 partial sums (a
  binary chooser's explicit dislikes contribute exactly-zero terms,
  which cannot change any partial sum);
* divisions, multiplications and ``sqrt`` are single correctly-rounded
  IEEE-754 operations in both languages, applied in the same expression
  shape, and the zero-score guards mirror the Python guards exactly;
* the fused merge selection orders by descending
  ``(score, timestamp, -node_id)`` — node ids are unique, so the total
  order is deterministic and ``qsort``'s instability is unobservable.

The build is optional everywhere: ``setup.py`` wires it up only when cffi
is importable, and :func:`build_inplace` compiles the extension next to the
package for ``PYTHONPATH=src`` trees.  Without a C toolchain the pure-Python
tiers keep working (see :mod:`repro._native`).

Build it in place with::

    PYTHONPATH=src python -m repro._native.build_native
"""

from __future__ import annotations

from pathlib import Path

import cffi

from repro.core.gates import env_flag

#: C declarations shared with the Python side.
CDEF = """
int64_t whatsup_score_profiles(uintptr_t owner_obj, uintptr_t profiles_list,
    int code, double *out);

int64_t whatsup_merge_rank(uintptr_t owner_obj, uintptr_t entries_list,
    int code, int64_t capacity, int64_t *keep_out);

int64_t whatsup_item_argmax(uintptr_t item_obj, uintptr_t profiles_list,
    int code, int64_t *tied_out);

int64_t whatsup_rank_topk(const double *scores, const int64_t *ts,
    const int64_t *nids, int64_t k, int64_t capacity, int64_t *out);

int64_t whatsup_argmax_ties(const double *scores, int64_t k, int64_t *out);

int64_t whatsup_state_oldest(uintptr_t cols_addr, int64_t stride, int64_t n);

int64_t whatsup_state_find(uintptr_t cols_addr, int64_t stride, int64_t n,
    int64_t nid);

int64_t whatsup_state_upsert(uintptr_t cols_addr, int64_t stride,
    uintptr_t pobj_addr, int64_t n, int64_t alloc, const int64_t *inc,
    int64_t inc_stride, int64_t inc_n, uintptr_t entries_obj, int64_t owner);

int64_t whatsup_state_select(uintptr_t cols_addr, int64_t stride,
    uintptr_t pobj_addr, int64_t n, const int64_t *sel, int64_t k);

int64_t whatsup_state_trim_drop(uintptr_t cols_addr, int64_t stride,
    uintptr_t pobj_addr, int64_t n, const int64_t *drop, int64_t k_drop);

int64_t whatsup_state_ship(uintptr_t cols_addr, int64_t stride,
    int64_t *sel, int64_t k, int64_t excl_slot, int64_t own_id,
    int64_t own_ts, int64_t own_wire, int64_t *out);
"""

# Metric/orientation codes for the object-walking kernels (mirrored by
# repro.core.similarity._native_pool_code — keep the two in sync):
#   0 = wup, owner is the chooser n          (binary owner + pool)
#   1 = wup, owner is the candidate side c   (binary owner + pool)
#   2 = cosine                               (binary owner + pool)
#   3 = jaccard    4 = overlap               (liked sets; any profiles)
#   5 = wup, real-valued owner as candidate side c vs binary chooser pool
#   6 = cosine, real-valued owner as candidate side c vs binary chooser pool

C_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <stdlib.h>

/* Python.h is already included by the cffi-generated preamble. */

/* One packed profile, decoded from its cached `_nd` descriptor tuple:
 * (is_binary, liked_ptr, n_liked, rated_ptr, n_rated, scores_ptr, norm).
 * The pointers alias the profile's memoised numpy arrays, which stay
 * alive as long as the profile object does. */
typedef struct {
    int       is_binary;
    const uint64_t *liked;  int64_t n_liked;
    const uint64_t *rated;  int64_t n_rated;
    const double   *scores;             /* aligned with `rated` */
    double    norm;
} prof_desc;

static PyObject *s_nd = NULL;       /* interned "_nd" */
static PyObject *s_packed = NULL;   /* interned "packed" */
static PyObject *s_pack = NULL;     /* interned "_pack" */

static int intern_names(void)
{
    if (s_nd != NULL) return 0;
    s_nd = PyUnicode_InternFromString("_nd");
    s_packed = PyUnicode_InternFromString("packed");
    s_pack = PyUnicode_InternFromString("_pack");
    if (s_nd == NULL || s_packed == NULL || s_pack == NULL) {
        PyErr_Clear();
        return -1;
    }
    return 0;
}

/* Decode one `_nd` tuple into *out.  Returns 0, or -1 on shape mismatch. */
static int parse_nd(PyObject *nd, prof_desc *out)
{
    unsigned long long v;
    double norm;
    if (!PyTuple_Check(nd) || PyTuple_GET_SIZE(nd) != 7) return -1;
    out->is_binary = (int)PyLong_AsLong(PyTuple_GET_ITEM(nd, 0));
    v = PyLong_AsUnsignedLongLong(PyTuple_GET_ITEM(nd, 1));
    out->liked = (const uint64_t *)(uintptr_t)v;
    out->n_liked = (int64_t)PyLong_AsLongLong(PyTuple_GET_ITEM(nd, 2));
    v = PyLong_AsUnsignedLongLong(PyTuple_GET_ITEM(nd, 3));
    out->rated = (const uint64_t *)(uintptr_t)v;
    out->n_rated = (int64_t)PyLong_AsLongLong(PyTuple_GET_ITEM(nd, 4));
    v = PyLong_AsUnsignedLongLong(PyTuple_GET_ITEM(nd, 5));
    out->scores = (const double *)(uintptr_t)v;
    norm = PyFloat_AsDouble(PyTuple_GET_ITEM(nd, 6));
    out->norm = norm;
    if (PyErr_Occurred()) { PyErr_Clear(); return -1; }
    return 0;
}

/* Read `holder._nd` (filling it via `holder._pack()` when still None)
 * and decode it into *out.  Returns 0 on success, -2 when the holder has
 * no `_nd` attribute at all, -1 on any other failure. */
static int resolve_nd_from(PyObject *holder, prof_desc *out)
{
    PyObject *nd = PyObject_GetAttr(holder, s_nd);
    if (nd == NULL) { PyErr_Clear(); return -2; }
    if (nd == Py_None) {
        PyObject *r;
        Py_DECREF(nd);
        r = PyObject_CallMethodNoArgs(holder, s_pack);
        if (r == NULL) { PyErr_Clear(); return -1; }
        Py_DECREF(r);
        nd = PyObject_GetAttr(holder, s_nd);
        if (nd == NULL) { PyErr_Clear(); return -1; }
        if (nd == Py_None) { Py_DECREF(nd); return -1; }
    }
    if (parse_nd(nd, out) < 0) { Py_DECREF(nd); return -1; }
    Py_DECREF(nd);
    return 0;
}

/* Resolve a profile-like object to its packed descriptor.  Handles the
 * shapes the dispatch can see: FrozenProfile / PackedView /
 * _EphemeralPack (lazy `_nd`, filled by their `_pack()`), and mutable
 * Profile (no `_nd`; `packed()` returns a memoised PackedView). */
static int resolve_profile(PyObject *obj, prof_desc *out)
{
    PyObject *packed;
    int rc = resolve_nd_from(obj, out);
    if (rc != -2) return rc;
    packed = PyObject_CallMethodNoArgs(obj, s_packed);
    if (packed == NULL) { PyErr_Clear(); return -1; }
    rc = resolve_nd_from(packed, out);
    /* the PackedView is memoised on the profile, which outlives the
     * call, so dropping our reference keeps the arrays alive */
    Py_DECREF(packed);
    return rc == 0 ? 0 : -1;
}

/* |a ∩ b| for ascending-sorted uint64 arrays (merge walk). */
static int64_t isect_count(const uint64_t *a, int64_t na,
                           const uint64_t *b, int64_t nb)
{
    int64_t i = 0, j = 0, c = 0;
    while (i < na && j < nb) {
        uint64_t x = a[i], y = b[j];
        if (x == y)      { c++; i++; j++; }
        else if (x < y)  { i++; }
        else             { j++; }
    }
    return c;
}

/* Does `code` require every pool candidate to be flagged binary?  The
 * liked-set metrics (jaccard/overlap) read liked ids only, which every
 * packed profile exposes; all other codes use binary fast-path algebra. */
static int needs_binary_pool(int code)
{
    return code != 3 && code != 4;
}

/* Score one candidate against the owner under `code` (see the code table
 * in build_native.py).  Mirrors the scalar metrics bit for bit. */
static double score_pair(int code, const prof_desc *o, const prof_desc *c)
{
    int64_t common, sub;
    switch (code) {
    case 0:                         /* wup, owner = chooser n */
        if (c->norm == 0.0 || o->n_liked == 0) return 0.0;
        common = isect_count(o->liked, o->n_liked, c->liked, c->n_liked);
        if (common == 0) return 0.0;
        sub = isect_count(o->liked, o->n_liked, c->rated, c->n_rated);
        return (double)common / (sqrt((double)sub) * c->norm);
    case 1:                         /* wup, owner = candidate side c */
        if (o->norm == 0.0 || c->n_liked == 0) return 0.0;
        common = isect_count(c->liked, c->n_liked, o->liked, o->n_liked);
        if (common == 0) return 0.0;
        sub = isect_count(c->liked, c->n_liked, o->rated, o->n_rated);
        return (double)common / (sqrt((double)sub) * o->norm);
    case 2:                         /* cosine, binary fast path */
        if (o->norm == 0.0 || c->norm == 0.0) return 0.0;
        common = isect_count(o->liked, o->n_liked, c->liked, c->n_liked);
        if (common == 0) return 0.0;
        return (double)common / (o->norm * c->norm);
    case 3: {                       /* jaccard over liked sets */
        if (o->n_liked == 0 || c->n_liked == 0) return 0.0;
        common = isect_count(o->liked, o->n_liked, c->liked, c->n_liked);
        if (common == 0) return 0.0;
        return (double)common / (double)(o->n_liked + c->n_liked - common);
    }
    case 4: {                       /* overlap over liked sets */
        int64_t m;
        if (o->n_liked == 0 || c->n_liked == 0) return 0.0;
        common = isect_count(o->liked, o->n_liked, c->liked, c->n_liked);
        if (common == 0) return 0.0;
        m = o->n_liked < c->n_liked ? o->n_liked : c->n_liked;
        return (double)common / (double)m;
    }
    case 5: case 6: {               /* real-valued owner as candidate side */
        /* chooser = binary candidate c, candidate side = the owner item
         * profile: accumulate the owner's scores over L_c ∩ R_owner in
         * ascending packed-id order (the canonical summation order). */
        int64_t a = 0, b = 0;
        double dot = 0.0;
        if (o->norm == 0.0 || o->n_rated == 0) return 0.0;
        common = 0;
        while (a < c->n_liked && b < o->n_rated) {
            uint64_t x = c->liked[a], y = o->rated[b];
            if (x == y)      { dot += o->scores[b]; common++; a++; b++; }
            else if (x < y)  { a++; }
            else             { b++; }
        }
        if (code == 5) {            /* wup: dot/(sqrt(|common|)*norm_owner) */
            if (common == 0 || dot == 0.0) return 0.0;
            return dot / (sqrt((double)common) * o->norm);
        }
        /* cosine: dot/(norm_chooser*norm_owner) */
        if (dot == 0.0 || c->norm == 0.0) return 0.0;
        return dot / (c->norm * o->norm);
    }
    default:
        return 0.0;
    }
}

/* Validate owner/code compatibility (binary fast paths need a binary
 * owner except the item-side codes 5/6 and the liked-set metrics). */
static int owner_ok(int code, const prof_desc *o)
{
    if (code == 0 || code == 1 || code == 2) return o->is_binary;
    return 1;
}

/* Score a whole candidate pool (a Python list of profile-likes) against
 * one owner.  Fills out[] aligned with the list; returns k, or -1 when
 * any object cannot take the native path (caller falls back). */
int64_t whatsup_score_profiles(uintptr_t owner_obj, uintptr_t profiles_list,
    int code, double *out)
{
    /* cffi calls C with the GIL released; the object walk needs it back */
    PyGILState_STATE gil = PyGILState_Ensure();
    PyObject *owner = (PyObject *)owner_obj;
    PyObject *list = (PyObject *)profiles_list;
    prof_desc o, c;
    Py_ssize_t k, i;
    int binary_pool;
    int64_t rc = -1;
    if (intern_names() < 0) goto done;
    if (!PyList_Check(list)) goto done;
    if (resolve_profile(owner, &o) < 0) goto done;
    if (!owner_ok(code, &o)) goto done;
    binary_pool = needs_binary_pool(code);
    k = PyList_GET_SIZE(list);
    for (i = 0; i < k; i++) {
        if (resolve_profile(PyList_GET_ITEM(list, i), &c) < 0) goto done;
        if (binary_pool && !c.is_binary) goto done;
        out[i] = score_pair(code, &o, &c);
    }
    rc = (int64_t)k;
done:
    PyGILState_Release(gil);
    return rc;
}

/* ---- fused merge scoring + ranked trim ------------------------------- */

typedef struct {
    double  s;
    int64_t ts;
    int64_t nid;
    int64_t idx;
} whatsup_row;

/* Descending (score, timestamp, -node_id): the exact total order of
 * View.trim_ranked_aligned's tuple sort. */
static int row_cmp(const void *pa, const void *pb)
{
    const whatsup_row *a = (const whatsup_row *)pa;
    const whatsup_row *b = (const whatsup_row *)pb;
    if (a->s != b->s)     return a->s < b->s ? 1 : -1;
    if (a->ts != b->ts)   return a->ts < b->ts ? 1 : -1;
    if (a->nid != b->nid) return a->nid < b->nid ? -1 : 1;
    return 0;
}

/* The Vicinity merge inner loop in one call: score every view entry
 * (a list of ViewEntry namedtuples: [0]=node_id, [2]=profile,
 * [3]=timestamp) against the owner profile, then select the top
 * `capacity` in descending (score, timestamp, -node_id) order.  Writes
 * the kept entry indices, best first, to keep_out and returns how many —
 * or -1 when any entry cannot take the native path. */
int64_t whatsup_merge_rank(uintptr_t owner_obj, uintptr_t entries_list,
    int code, int64_t capacity, int64_t *keep_out)
{
    PyGILState_STATE gil = PyGILState_Ensure();
    PyObject *owner = (PyObject *)owner_obj;
    PyObject *list = (PyObject *)entries_list;
    prof_desc o, c;
    whatsup_row *rows = NULL;
    Py_ssize_t k, i;
    int64_t kept, rc = -1;
    int binary_pool;
    if (intern_names() < 0) goto done;
    if (!PyList_Check(list) || capacity <= 0) goto done;
    if (resolve_profile(owner, &o) < 0) goto done;
    if (!owner_ok(code, &o)) goto done;
    binary_pool = needs_binary_pool(code);
    k = PyList_GET_SIZE(list);
    if (k == 0) { rc = 0; goto done; }
    rows = (whatsup_row *)malloc((size_t)k * sizeof(whatsup_row));
    if (rows == NULL) goto done;
    for (i = 0; i < k; i++) {
        PyObject *entry = PyList_GET_ITEM(list, i);
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) < 4)
            goto done;
        if (resolve_profile(PyTuple_GET_ITEM(entry, 2), &c) < 0)
            goto done;
        if (binary_pool && !c.is_binary) goto done;
        rows[i].s = score_pair(code, &o, &c);
        rows[i].nid = (int64_t)PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
        rows[i].ts = (int64_t)PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 3));
        if (PyErr_Occurred()) { PyErr_Clear(); goto done; }
        rows[i].idx = (int64_t)i;
    }
    qsort(rows, (size_t)k, sizeof(whatsup_row), row_cmp);
    kept = capacity < (int64_t)k ? capacity : (int64_t)k;
    for (i = 0; i < kept; i++) keep_out[i] = rows[i].idx;
    rc = kept;
done:
    free(rows);
    PyGILState_Release(gil);
    return rc;
}

/* ---- fused dislike orientation + argmax ------------------------------ */

/* BEEP's dislike-target selection for the paper's fanout of 1: score one
 * item profile against the chooser pool (codes 5/6) and collect the
 * indices tied for the maximum, ascending — the same tie set
 * `flatnonzero(scores == scores.max())` yields, so the caller's uniform
 * tie-break consumes identical RNG draws.  Returns the tie count, or -1
 * when the pool cannot take the native path. */
int64_t whatsup_item_argmax(uintptr_t item_obj, uintptr_t profiles_list,
    int code, int64_t *tied_out)
{
    PyGILState_STATE gil = PyGILState_Ensure();
    PyObject *item = (PyObject *)item_obj;
    PyObject *list = (PyObject *)profiles_list;
    prof_desc o, c;
    double *scores = NULL;
    double best;
    Py_ssize_t k, i;
    int64_t n = 0, rc = -1;
    if (intern_names() < 0) goto done;
    if (!PyList_Check(list)) goto done;
    k = PyList_GET_SIZE(list);
    if (k == 0) { rc = 0; goto done; }
    if (resolve_profile(item, &o) < 0) goto done;
    scores = (double *)malloc((size_t)k * sizeof(double));
    if (scores == NULL) goto done;
    for (i = 0; i < k; i++) {
        if (resolve_profile(PyList_GET_ITEM(list, i), &c) < 0 ||
            !c.is_binary)
            goto done;
        scores[i] = score_pair(code, &o, &c);
    }
    best = scores[0];
    for (i = 1; i < k; i++)
        if (scores[i] > best) best = scores[i];
    for (i = 0; i < k; i++)
        if (scores[i] == best) tied_out[n++] = (int64_t)i;
    rc = n;
done:
    free(scores);
    PyGILState_Release(gil);
    return rc;
}

/* ---- array-based selection kernels ----------------------------------- */

/* Ranked-trim selection from precomputed aligned arrays (the scores=
 * form of View.trim_ranked): top-`capacity` indices in descending
 * (score, timestamp, -node_id) order. */
int64_t whatsup_rank_topk(const double *scores, const int64_t *ts,
    const int64_t *nids, int64_t k, int64_t capacity, int64_t *out)
{
    whatsup_row *rows;
    int64_t i, kept;
    if (k <= 0 || capacity <= 0) return 0;
    rows = (whatsup_row *)malloc((size_t)k * sizeof(whatsup_row));
    if (rows == NULL) return -1;
    for (i = 0; i < k; i++) {
        rows[i].s = scores[i];
        rows[i].ts = ts[i];
        rows[i].nid = nids[i];
        rows[i].idx = i;
    }
    qsort(rows, (size_t)k, sizeof(whatsup_row), row_cmp);
    kept = capacity < k ? capacity : k;
    for (i = 0; i < kept; i++) out[i] = rows[i].idx;
    free(rows);
    return kept;
}

/* Indices (ascending) of all entries equal to the maximum score. */
int64_t whatsup_argmax_ties(const double *scores, int64_t k, int64_t *out)
{
    int64_t i, n = 0;
    double best;
    if (k <= 0) return 0;
    best = scores[0];
    for (i = 1; i < k; i++)
        if (scores[i] > best) best = scores[i];
    for (i = 0; i < k; i++)
        if (scores[i] == best) out[n++] = i;
    return n;
}

/* ---- array-state plane kernels (ArrayView bookkeeping) --------------- */

/* These kernels operate on the ArrayView state plane: a (3, alloc) int64
 * column block laid out [ids | ts | wire] (row pointers derived from the
 * base address and the allocation stride) plus an aligned numpy *object*
 * array holding the ViewEntry payload references.  Addresses are cached
 * on the view and passed as plain integers — no per-call buffer
 * marshaling, no per-entry field walks.  Kernels that move payload
 * references hold the GIL (cffi releases it around calls) and keep the
 * object column's every-slot-owns-a-reference invariant intact. */

typedef struct { int64_t *ids; int64_t *ts; int64_t *wire; } state_cols;

static state_cols cols_at(uintptr_t addr, int64_t stride)
{
    state_cols c;
    c.ids = (int64_t *)addr;
    c.ts = c.ids + stride;
    c.wire = c.ids + 2 * stride;
    return c;
}

/* Slot of the entry with the smallest (timestamp, node_id) key — the
 * gossip tail peer selection.  Returns -1 when the view is empty. */
int64_t whatsup_state_oldest(uintptr_t cols_addr, int64_t stride, int64_t n)
{
    state_cols c = cols_at(cols_addr, stride);
    int64_t i, best = 0;
    if (n <= 0) return -1;
    for (i = 1; i < n; i++) {
        if (c.ts[i] < c.ts[best] ||
            (c.ts[i] == c.ts[best] && c.ids[i] < c.ids[best]))
            best = i;
    }
    return best;
}

/* Slot holding node id `nid`, or -1 — the columnar sibling of a dict
 * lookup, used by shipment exclusion. */
int64_t whatsup_state_find(uintptr_t cols_addr, int64_t stride, int64_t n,
    int64_t nid)
{
    const int64_t *ids = (const int64_t *)cols_addr;
    int64_t i;
    (void)stride;
    for (i = 0; i < n; i++)
        if (ids[i] == nid) return i;
    return -1;
}

/* Sequential freshest-wins merge of a columnar shipment — the gossip
 * upsert_all inner loop.  Incoming rows (columns at inc_addr with their
 * own stride, payload references in the aligned entries tuple/list) are
 * processed in order, so in-batch duplicates resolve exactly as the
 * sequential Python loop does: rows for `owner` are skipped, a row
 * matching a stored id replaces it in place when its timestamp is >=,
 * and new ids append.  Payload references move with proper refcounting.
 * Returns (new_n << 32) | applied_count, or -1 when the entries object
 * has an unexpected shape or an append would overrun `alloc` (callers
 * reserve first, so the overrun is a programming error; the caller
 * raises rather than falling back on a half-applied merge). */
int64_t whatsup_state_upsert(uintptr_t cols_addr, int64_t stride,
    uintptr_t pobj_addr, int64_t n, int64_t alloc, const int64_t *inc_base,
    int64_t inc_stride, int64_t inc_n, uintptr_t entries_obj, int64_t owner)
{
    PyGILState_STATE gil = PyGILState_Ensure();
    state_cols own = cols_at(cols_addr, stride);
    state_cols inc = cols_at((uintptr_t)inc_base, inc_stride);
    PyObject **pobj = (PyObject **)pobj_addr;
    PyObject *seq = (PyObject *)entries_obj;
    int64_t i, j, applied = 0, rc = -1;
    int is_tuple;
    if (PyTuple_Check(seq)) is_tuple = 1;
    else if (PyList_Check(seq)) is_tuple = 0;
    else goto done;
    /* a mispaired entries/cols argument must fail as a Python-level
     * error, not an out-of-bounds read */
    if ((is_tuple ? PyTuple_GET_SIZE(seq) : PyList_GET_SIZE(seq)) < inc_n)
        goto done;
    for (i = 0; i < inc_n; i++) {
        int64_t nid = inc.ids[i];
        PyObject *e, *old;
        if (nid == owner) continue;
        for (j = 0; j < n; j++)
            if (own.ids[j] == nid) break;
        if (j < n) {
            if (inc.ts[i] < own.ts[j]) continue;  /* stale: keep ours */
        } else {
            if (n >= alloc) goto done;
            own.ids[n] = nid;
            j = n;
            n++;
        }
        own.ts[j] = inc.ts[i];
        own.wire[j] = inc.wire[i];
        e = is_tuple ? PyTuple_GET_ITEM(seq, i) : PyList_GET_ITEM(seq, i);
        old = pobj[j];
        Py_INCREF(e);
        pobj[j] = e;
        Py_XDECREF(old);
        applied++;
    }
    rc = (n << 32) | applied;
done:
    PyGILState_Release(gil);
    return rc;
}

/* Keep exactly the slots listed in sel (k int64 indices, any order) —
 * the shared backend of compaction (ascending sel: evictions, random
 * trims) and ranked reordering (rank-order sel: merge trims).  Gathers
 * through scratch buffers so overlapping moves are safe, releases the
 * dropped payload references and None-fills the vacated tail slots.
 * Returns k, or -1 on allocation failure (caller falls back to numpy). */
int64_t whatsup_state_select(uintptr_t cols_addr, int64_t stride,
    uintptr_t pobj_addr, int64_t n, const int64_t *sel, int64_t k)
{
    PyGILState_STATE gil = PyGILState_Ensure();
    state_cols c = cols_at(cols_addr, stride);
    PyObject **pobj = (PyObject **)pobj_addr;
    int64_t *itmp = NULL;
    PyObject **otmp = NULL;
    int64_t i, rc = -1;
    if (k > 0) {
        itmp = (int64_t *)malloc((size_t)k * 3 * sizeof(int64_t));
        otmp = (PyObject **)malloc((size_t)k * sizeof(PyObject *));
        if (itmp == NULL || otmp == NULL) goto done;
    }
    for (i = 0; i < k; i++) {
        int64_t s = sel[i];
        itmp[i] = c.ids[s];
        itmp[k + i] = c.ts[s];
        itmp[2 * k + i] = c.wire[s];
        otmp[i] = pobj[s];
        Py_INCREF(otmp[i]);
    }
    for (i = 0; i < n; i++) {
        PyObject *old = pobj[i];
        pobj[i] = NULL;
        Py_XDECREF(old);
    }
    for (i = 0; i < k; i++) {
        c.ids[i] = itmp[i];
        c.ts[i] = itmp[k + i];
        c.wire[i] = itmp[2 * k + i];
        pobj[i] = otmp[i];          /* scratch reference transferred */
    }
    for (i = k; i < n; i++) {
        Py_INCREF(Py_None);
        pobj[i] = Py_None;
    }
    rc = k;
done:
    free(itmp);
    free(otmp);
    PyGILState_Release(gil);
    return rc;
}

/* Random-trim compaction: drop the k_drop slots listed in `drop`, keep
 * everything else in order.  One forward in-place pass — dropped payload
 * references are released, kept ones move with their columns, vacated
 * tail slots are None-filled.  Returns the new row count, or -1 on
 * allocation failure (caller falls back to the numpy gather). */
int64_t whatsup_state_trim_drop(uintptr_t cols_addr, int64_t stride,
    uintptr_t pobj_addr, int64_t n, const int64_t *drop, int64_t k_drop)
{
    PyGILState_STATE gil = PyGILState_Ensure();
    state_cols c = cols_at(cols_addr, stride);
    PyObject **pobj = (PyObject **)pobj_addr;
    char *mark;
    int64_t i, w = 0, rc = -1;
    mark = (char *)calloc((size_t)(n > 0 ? n : 1), 1);
    if (mark == NULL) goto done;
    for (i = 0; i < k_drop; i++) mark[drop[i]] = 1;
    for (i = 0; i < n; i++) {
        if (mark[i]) {
            PyObject *old = pobj[i];
            pobj[i] = NULL;
            Py_XDECREF(old);
        } else {
            c.ids[w] = c.ids[i];
            c.ts[w] = c.ts[i];
            c.wire[w] = c.wire[i];
            pobj[w] = pobj[i];     /* reference moves forward */
            w++;
        }
    }
    for (i = w; i < n; i++) {
        /* these slots' references moved forward or were dropped */
        Py_INCREF(Py_None);
        pobj[i] = Py_None;
    }
    rc = w;
done:
    free(mark);
    PyGILState_Release(gil);
    return rc;
}

/* Assemble a shipment column block: the own-descriptor row followed by k
 * gathered rows, written to `out` (a (3, k+1) block, stride k+1).  With
 * sel != NULL the gathered slots are sel[j] (candidate indices, bumped
 * past excl_slot in place so the caller can reuse them for the payload
 * gather); with sel == NULL every slot except excl_slot ships, in order.
 * Returns the summed wire size of the block, or -1 when any descriptor
 * is unmemoised (the caller prices the message by walking instead). */
int64_t whatsup_state_ship(uintptr_t cols_addr, int64_t stride,
    int64_t *sel, int64_t k, int64_t excl_slot, int64_t own_id,
    int64_t own_ts, int64_t own_wire, int64_t *out)
{
    state_cols c = cols_at(cols_addr, stride);
    int64_t *out_ids = out, *out_ts = out + (k + 1),
            *out_wire = out + 2 * (k + 1);
    int64_t j, total = own_wire, s;
    int bad = own_wire < 0;
    out_ids[0] = own_id;
    out_ts[0] = own_ts;
    out_wire[0] = own_wire;
    if (sel != NULL) {
        for (j = 0; j < k; j++) {
            s = sel[j];
            if (excl_slot >= 0 && s >= excl_slot) s++;
            sel[j] = s;            /* caller reuses for the payload gather */
            out_ids[j + 1] = c.ids[s];
            out_ts[j + 1] = c.ts[s];
            out_wire[j + 1] = c.wire[s];
            if (c.wire[s] < 0) bad = 1; else total += c.wire[s];
        }
    } else {
        int64_t w = 1;
        int64_t n = k + (excl_slot >= 0 ? 1 : 0);
        for (s = 0; s < n; s++) {
            if (s == excl_slot) continue;
            out_ids[w] = c.ids[s];
            out_ts[w] = c.ts[s];
            out_wire[w] = c.wire[s];
            if (c.wire[s] < 0) bad = 1; else total += c.wire[s];
            w++;
        }
    }
    return bad ? -1 : total;
}
"""

# REPRO_NATIVE_SANITIZE=1 rebuilds the extension under ASan/UBSan for the
# CI sanitizer leg (and local triage): -fno-sanitize-recover turns every
# report into a hard abort, -O1/-g keep the stack traces honest.  The
# sanitized object is a debugging artifact — the perf flags stay -O2 on
# the normal path.
_sanitize_enabled = env_flag("REPRO_NATIVE_SANITIZE", default=False)
if _sanitize_enabled:
    _compile_args = [
        "-O1",
        "-g",
        "-fno-omit-frame-pointer",
        "-fsanitize=address,undefined",
        "-fno-sanitize-recover=all",
    ]
    _link_args = ["-fsanitize=address,undefined"]
else:
    _compile_args = ["-O2"]
    _link_args = []

ffibuilder = cffi.FFI()
ffibuilder.cdef(CDEF)
ffibuilder.set_source(
    "repro._native._kernels",
    C_SOURCE,
    extra_compile_args=_compile_args,
    extra_link_args=_link_args,
    # the kernels use fast CPython internals (PyList_GET_ITEM & co.), so
    # the stable-ABI subset is off the table; the extension is rebuilt
    # per interpreter anyway.  _CFFI_NO_LIMITED_API stops the generated
    # preamble from defining Py_LIMITED_API, py_limited_api=False keeps
    # setuptools from tagging the wheel abi3.
    define_macros=[("_CFFI_NO_LIMITED_API", None)],
    py_limited_api=False,
)


def build_inplace(verbose: bool = False) -> str | None:
    """Compile the extension next to the installed/checked-out package.

    Returns the path to the built shared object, or ``None`` when the build
    fails (no C toolchain, read-only tree, ...) — callers treat that as
    "native kernels unavailable" and stay on the Python tiers.
    """
    target_dir = Path(__file__).resolve().parent.parent.parent
    try:
        return ffibuilder.compile(tmpdir=str(target_dir), verbose=verbose)
    except Exception:  # pragma: no cover - toolchain-dependent
        return None


if __name__ == "__main__":
    so = build_inplace(verbose=True)
    if so is None:
        raise SystemExit("native kernel build failed (missing C toolchain?)")
    print(f"built {so}")
