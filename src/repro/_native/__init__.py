"""Optional compiled kernels for the similarity/selection hot loops.

This package hosts the **native tier** of the three-tier similarity
dispatch (native → numpy → set-algebra, see
:mod:`repro.core.similarity`): a small C extension, built with cffi from
:mod:`repro._native.build_native`, that scores packed candidate pools,
performs the merge trim / argmax selections, and runs the array-state
bookkeeping (``state_*`` kernels) at C speed.

The extension is strictly optional:

* when the compiled module is absent (no C toolchain, fresh checkout), the
  loader reports "unavailable" and every caller stays on the pure-Python
  tiers — the tree imports and passes its test suite without a compiler;
* ``REPRO_NATIVE=0`` (or :func:`set_native_kernel` /
  :func:`native_kernel`) disables the native tier even when the extension
  is built, which the equivalence tests use to prove all tiers produce
  bitwise-identical outcomes.

Build in place (writes ``_kernels.*.so`` next to this file)::

    PYTHONPATH=src python -m repro._native.build_native

The descriptor contract (``_nd``)
---------------------------------

The profile-scoring kernels never unpack Python containers per call.
Every packed profile object (:class:`~repro.core.profiles.FrozenProfile`,
``PackedView``, ``_EphemeralPack``) lazily caches a ``_nd`` tuple::

    (is_binary, liked_ptr, n_liked, rated_ptr, n_rated, scores_ptr, norm)

where the ``*_ptr`` fields are the **raw base addresses** of the packed
``uint64``/``float64`` arrays (``ndarray.ctypes.data``).  The C side
decodes the tuple (``parse_nd``) and walks the arrays directly.  Two
rules make this sound:

* **Lifetime** — a descriptor is valid only while its owning pack object
  keeps the arrays alive, which the pack guarantees by construction for
  its whole lifetime (the arrays are immutable-by-convention; any
  mutation produces a *new* pack and a new descriptor).
* **Process-locality** — raw addresses never survive a process boundary.
  The pickle layer (``__getstate__``) nulls ``_nd`` on every pack class,
  and the kernels refill it via the object's ``_pack()`` on first native
  contact in the receiving process.  The same rule covers the address
  caches on :class:`~repro.gossip.views.ArrayView`.

The address contract (state kernels)
------------------------------------

The ``state_*`` bookkeeping kernels take the view's column-block base
address and payload-column base address as **plain integers** cached on
the view (no per-call ``from_buffer`` marshaling; the first-cut design
that marshalled buffers per call measured *slower* than the numpy tier).
The addresses are refreshed whenever the block is reallocated — including
:meth:`~repro.gossip.views.ArrayView.rehome`, which moves the block into
a ``multiprocessing.shared_memory`` arena under the sharded engine.  A
mapped address is an address: the kernels are agnostic to whether the
memory is private or shared (asserted by the shm parity tests in
``tests/test_sharding.py``).

GIL notes
---------

cffi releases the GIL around extension calls, but every kernel that
touches a ``PyObject`` — the candidate-list scoring loops, and the state
kernels that move payload references with refcounting (``state_upsert``,
``state_select``, ``state_trim_drop``) — re-acquires it via
``PyGILState_Ensure`` for exactly the object-touching region.  The
purely numeric kernels (``rank_topk``, ``argmax_ties``, ``state_oldest``,
``state_find``, ``state_ship``) run GIL-free.  Shard workers are
separate processes with separate interpreters, so the GIL never couples
shards; no kernel ever blocks while holding it.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.core.gates import env_flag

__all__ = [
    "NativeKernel",
    "load",
    "ensure_built",
    "native_available",
    "native_kernel_enabled",
    "set_native_kernel",
    "native_kernel",
    "kernel",
]


class NativeKernel:
    """Thin marshaling wrapper around the compiled cffi module.

    All entry points take C-contiguous numpy arrays (``uint64`` ids,
    ``int64`` offsets/keys, ``float64`` scores) and return fresh numpy
    arrays; zero-copy ``from_buffer`` views are passed to C, so no array
    contents are ever copied for a call.
    """

    __slots__ = ("ffi", "lib")

    def __init__(self, module) -> None:
        self.ffi = module.ffi
        self.lib = module.lib

    # -- buffer helpers ----------------------------------------------------

    def _i64(self, arr: np.ndarray):
        if arr.size == 0:
            return self.ffi.NULL
        return self.ffi.from_buffer("int64_t[]", arr)

    def _f64(self, arr: np.ndarray):
        if arr.size == 0:
            return self.ffi.NULL
        return self.ffi.from_buffer("double[]", arr)

    # -- object-walking kernels --------------------------------------------

    def score_profiles(
        self, owner, profiles: list, code: int
    ) -> np.ndarray | None:
        """Scores of a pool (a *list* of profile-likes) against *owner*.

        ``code`` is a metric/orientation code from the table in
        :mod:`repro._native.build_native`.  Returns ``None`` when any pool
        member cannot take the native path (missing packed descriptor,
        non-binary profile under a binary fast-path code) — the caller
        falls back to the numpy / set-algebra tiers.

        The objects are walked inside C while the GIL is held; ``id()``
        hands over borrowed pointers to objects the caller keeps alive for
        the duration of the call.
        """
        k = len(profiles)
        out = np.empty(k, dtype=np.float64)
        if k == 0:
            return out
        rc = self.lib.whatsup_score_profiles(
            id(owner), id(profiles), code, self._f64(out)
        )
        return out if rc >= 0 else None

    def merge_rank(
        self, owner, entries: list, code: int, capacity: int
    ) -> np.ndarray | None:
        """The fused Vicinity merge inner loop: score + ranked trim.

        Scores every :class:`~repro.gossip.views.ViewEntry` in *entries*
        against *owner* and returns the indices of the top-*capacity*
        entries in descending ``(score, timestamp, -node_id)`` order — the
        exact total order (and hence kept set *and* kept dict order) of
        the Python trim.  ``None`` → caller falls back.
        """
        k = len(entries)
        out = np.empty(min(int(capacity), k), dtype=np.int64)
        if k == 0:
            return out
        kept = self.lib.whatsup_merge_rank(
            id(owner), id(entries), code, capacity, self._i64(out)
        )
        if kept < 0:
            return None
        return out[:kept]

    def item_argmax(
        self, item, profiles: list, code: int
    ) -> np.ndarray | None:
        """Fused dislike orientation: tie indices of the best chooser.

        Scores *item* (real-valued profile, candidate side) against the
        binary chooser pool and returns the ascending indices tied for the
        maximum — the same tie set ``flatnonzero(scores == scores.max())``
        yields, so the caller's uniform tie-break consumes identical RNG
        draws.  ``None`` → caller falls back.
        """
        k = len(profiles)
        out = np.empty(k, dtype=np.int64)
        if k == 0:
            return out
        n = self.lib.whatsup_item_argmax(
            id(item), id(profiles), code, self._i64(out)
        )
        if n < 0:
            return None
        return out[:n]

    # -- array-based selection kernels -------------------------------------

    def rank_topk(
        self,
        scores: np.ndarray,
        timestamps: np.ndarray,
        node_ids: np.ndarray,
        capacity: int,
    ) -> np.ndarray | None:
        """Indices of the top-*capacity* rows in descending
        ``(score, timestamp, -node_id)`` order, or ``None`` on failure."""
        k = scores.size
        out = np.empty(min(capacity, k), dtype=np.int64)
        kept = self.lib.whatsup_rank_topk(
            self._f64(scores),
            self._i64(timestamps),
            self._i64(node_ids),
            k,
            capacity,
            self._i64(out),
        )
        if kept < 0:
            return None  # pragma: no cover - malloc failure
        return out[:kept]

    def argmax_ties(self, scores: np.ndarray) -> np.ndarray:
        """Ascending indices of every entry equal to ``scores.max()``."""
        k = scores.size
        out = np.empty(k, dtype=np.int64)
        n = self.lib.whatsup_argmax_ties(self._f64(scores), k, self._i64(out))
        return out[:n]

    # -- array-state plane kernels (ArrayView bookkeeping) -----------------
    #
    # These take cached integer addresses of the view's column block and
    # payload-reference array (the view keeps the backing numpy arrays
    # alive and refreshes the addresses on reallocation), so a call
    # marshals nothing — not even a from_buffer view.

    def state_oldest(self, cols_addr: int, stride: int, n: int) -> int:
        """Slot of the smallest ``(timestamp, node_id)`` key, or ``-1``."""
        return int(self.lib.whatsup_state_oldest(cols_addr, stride, n))

    def state_find(self, cols_addr: int, stride: int, n: int, nid: int) -> int:
        """Slot holding node id *nid*, or ``-1``."""
        return int(self.lib.whatsup_state_find(cols_addr, stride, n, nid))

    def state_upsert(
        self,
        cols_addr: int,
        stride: int,
        pobj_addr: int,
        n: int,
        alloc: int,
        inc: np.ndarray,
        inc_stride: int,
        inc_n: int,
        entries,
        owner: int,
    ) -> tuple[int, int]:
        """Freshest-wins columnar-shipment merge (``upsert_all`` in C).

        Mutates the view's columns and payload references in place;
        *entries* (a tuple/list aligned with the incoming columns) is
        kept alive by this frame for the duration of the call.  Returns
        ``(new_n, applied_count)``; raises on an allocation overrun —
        callers reserve capacity first, so that is a broken invariant,
        not a fallback case.
        """
        rc = int(
            self.lib.whatsup_state_upsert(
                cols_addr,
                stride,
                pobj_addr,
                n,
                alloc,
                self._i64(inc),
                inc_stride,
                inc_n,
                id(entries),
                owner,
            )
        )
        if rc < 0:
            raise RuntimeError(
                "state_upsert: entries shorter than the shipped columns, "
                "or reserved-column overrun"
            )
        return rc >> 32, rc & 0xFFFFFFFF

    def state_select(
        self,
        cols_addr: int,
        stride: int,
        pobj_addr: int,
        n: int,
        sel: np.ndarray,
        k: int,
    ) -> bool:
        """Keep exactly the slots in *sel* (any order), in ``sel`` order.

        Returns ``False`` on scratch-allocation failure (caller falls
        back to the numpy gather — same result).
        """
        rc = self.lib.whatsup_state_select(
            cols_addr, stride, pobj_addr, n, self._i64(sel), k
        )
        return rc >= 0

    def state_trim_drop(
        self,
        cols_addr: int,
        stride: int,
        pobj_addr: int,
        n: int,
        drop: np.ndarray,
        k_drop: int,
    ) -> int:
        """Compact away the slots in *drop*; returns the new count or -1."""
        return int(
            self.lib.whatsup_state_trim_drop(
                cols_addr, stride, pobj_addr, n, self._i64(drop), k_drop
            )
        )

    def state_ship(
        self,
        cols_addr: int,
        stride: int,
        sel: "np.ndarray | None",
        k: int,
        excl_slot: int,
        own_id: int,
        own_ts: int,
        own_wire: int,
        out: np.ndarray,
    ) -> int:
        """Assemble a shipment block into *out*; returns its wire total.

        With *sel* the candidate indices are bumped past *excl_slot* in
        place (the caller reuses them to gather payload references); with
        ``sel=None`` every slot but *excl_slot* ships.  ``-1`` → some
        descriptor was unmemoised; the caller prices by walking.
        """
        return int(
            self.lib.whatsup_state_ship(
                cols_addr,
                stride,
                self.ffi.NULL if sel is None else self._i64(sel),
                k,
                excl_slot,
                own_id,
                own_ts,
                own_wire,
                self._i64(out),
            )
        )


#: memoised load result: unset / NativeKernel / None (= unavailable)
_UNSET = object()
_loaded: object = _UNSET


def load() -> NativeKernel | None:
    """The wrapped compiled module, or ``None`` when it is not built."""
    global _loaded
    if _loaded is _UNSET:
        try:
            from repro._native import _kernels  # type: ignore[attr-defined]
        except ImportError:
            _loaded = None
        else:
            _loaded = NativeKernel(_kernels)
    return _loaded  # type: ignore[return-value]


def ensure_built(verbose: bool = False) -> NativeKernel | None:
    """Load the extension, building it in place first if necessary.

    Requires cffi and a C toolchain; returns ``None`` (never raises) when
    either is missing, leaving the Python tiers in charge.
    """
    global _loaded
    kernel_mod = load()
    if kernel_mod is not None:
        return kernel_mod
    try:
        from repro._native.build_native import build_inplace
    except ImportError:
        return None
    if build_inplace(verbose=verbose) is None:
        return None
    _loaded = _UNSET
    return load()


def native_available() -> bool:
    """Whether the compiled extension is importable."""
    return load() is not None


#: the user-facing gate: ``REPRO_NATIVE=0`` disables the native tier even
#: when the extension is built; the tier is also auto-disabled (regardless
#: of this flag) whenever the extension is absent
_native_enabled = env_flag("REPRO_NATIVE")


def native_kernel_enabled() -> bool:
    """Whether the native tier is active (gate on *and* extension built)."""
    return _native_enabled and load() is not None


def set_native_kernel(enabled: bool) -> bool:
    """Set the native-tier gate; returns the previous gate value.

    Enabling the gate on a tree without the compiled extension is a no-op
    in effect: :func:`native_kernel_enabled` stays ``False`` until the
    extension is built (graceful degradation, not an error).
    """
    global _native_enabled
    previous = _native_enabled
    _native_enabled = bool(enabled)
    return previous


@contextmanager
def native_kernel(enabled: bool):
    """Context manager pinning the native gate, restoring it on exit.

    The restore-guarded form of :func:`set_native_kernel` — tests and
    benchmarks use this so a failure inside the block cannot leak the
    setting into unrelated code.
    """
    previous = set_native_kernel(enabled)
    try:
        yield
    finally:
        set_native_kernel(previous)


def kernel() -> NativeKernel | None:
    """The hot-path accessor: the kernel when the native tier is active.

    Returns ``None`` when the gate is off or the extension is missing, so
    call sites dispatch with one cheap truthiness check.
    """
    if not _native_enabled:
        return None
    return load()
