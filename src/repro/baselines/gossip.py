"""Homogeneous gossip baseline (paper Section V-B, Table III).

The classic epidemic dissemination protocol: every node forwards every item
it receives for the first time to ``fanout`` nodes chosen **uniformly at
random**, regardless of anyone's opinion.  Connectivity comes from the same
RPS layer WHATSUP uses; there is no clustering layer, no amplification, no
orientation — this is the "standard homogeneous gossip protocol" whose best
Table III operating point (f = 4) scores an F1 of 0.51 at nearly twice
WHATSUP's message cost.

Users still press like/dislike (their profiles update and are carried by
RPS descriptors), but the opinions never influence dissemination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.news import ItemCopy, NewsItem
from repro.core.node import OpinionFn
from repro.core.profiles import UserProfile
from repro.datasets.base import Dataset, OpinionOracle
from repro.gossip.bootstrap import random_view_bootstrap
from repro.gossip.rps import RpsProtocol
from repro.network.message import MessageKind
from repro.network.transport import Transport
from repro.simulation.engine import CycleEngine
from repro.simulation.harness import SystemHarness
from repro.simulation.node import BaseNode
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["GossipNode", "GossipSystem"]


class GossipNode(BaseNode):
    """One participant of the homogeneous gossip baseline."""

    __slots__ = ("fanout", "opinion", "profile", "rps", "seen")

    def __init__(
        self,
        node_id: int,
        fanout: int,
        rps_view_size: int,
        opinion: OpinionFn,
        streams: RngStreams,
    ) -> None:
        super().__init__(node_id)
        if fanout <= 0:
            raise ConfigurationError(f"fanout must be > 0, got {fanout}")
        self.fanout = fanout
        self.opinion = opinion
        self.profile = UserProfile()
        self.rps = RpsProtocol(
            node_id, rps_view_size, streams.fresh(f"gossip-{node_id}-rps")
        )
        self.seen: set[int] = set()

    def begin_cycle(self, engine: CycleEngine, now: int) -> None:
        started = self.rps.initiate(self.profile.snapshot(), now)
        if started is not None:
            partner, msg = started
            engine.gossip(self.node_id, partner, msg, MessageKind.RPS)

    def on_gossip(self, msg, kind, engine, now):
        if kind is MessageKind.RPS:
            return self.rps.handle(msg, self.profile.snapshot(), now)
        return None

    def _flood(self, copy: ItemCopy, engine: CycleEngine) -> None:
        targets = self.rps.view.sample(self.fanout, self.rps.rng)
        if not targets:
            return
        for entry in targets:
            engine.send_item(
                self.node_id, entry.node_id, copy.clone_for_forward(), via_like=True
            )
        engine.log_forward(self.node_id, copy, True, len(targets))

    def receive_item(self, copy, via_like, engine, now):
        item = copy.item
        if item.item_id in self.seen:
            engine.log_duplicate()
            return
        self.seen.add(item.item_id)
        liked = bool(self.opinion(self.node_id, item))
        self.profile.record_opinion(item.item_id, item.created_at, liked)
        engine.log_delivery(self.node_id, copy, liked, via_like)
        self._flood(copy, engine)  # opinion-blind forwarding

    def publish(self, item: NewsItem, engine, now):
        self.seen.add(item.item_id)
        self.profile.record_opinion(item.item_id, item.created_at, True)
        copy = ItemCopy(item=item)
        engine.log_delivery(self.node_id, copy, liked=True, via_like=True)
        self._flood(copy, engine)


class GossipSystem(SystemHarness):
    """Homogeneous gossip over a workload.

    Parameters
    ----------
    dataset:
        The workload.
    fanout:
        Per-node forwarding fanout (the paper's best point is 4).
    rps_view_size:
        RPS view capacity (kept at WHATSUP's 30 for comparability).
    seed / transport:
        Run seed and optional loss model.
    """

    system_name = "gossip"

    def __init__(
        self,
        dataset: Dataset,
        fanout: int = 4,
        *,
        rps_view_size: int = 30,
        seed: int = 0,
        transport: Transport | None = None,
    ) -> None:
        self.streams = RngStreams(seed)
        oracle = OpinionOracle(dataset)
        self.nodes = [
            GossipNode(uid, fanout, rps_view_size, oracle, self.streams)
            for uid in range(dataset.n_users)
        ]
        # seed RPS views with random peers (same bootstrap as WHATSUP)
        random_view_bootstrap(
            self.nodes, self.streams.get("bootstrap"), lambda n: (n.rps.view,)
        )
        engine = CycleEngine(
            self.nodes,
            dataset.schedule(),
            transport=transport,
            streams=self.streams,
        )
        super().__init__(dataset, engine)
