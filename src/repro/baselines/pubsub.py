"""C-Pub/Sub: the ideal centralized topic-based publish/subscribe baseline.

Paper Section IV-B: "we compare WHATSUP against C-Pub/Sub, a centralized
topic-based pub/sub system achieving complete dissemination.  C-Pub/Sub
guarantees that all the nodes subscribed to a topic receive all the
associated items.  C-Pub/Sub is also ideal in terms of message complexity
as it disseminates news items along trees that span all and only their
subscribers."  Subscriptions are derived from the ground truth: a user is
subscribed to a topic iff she likes at least one item of that topic.

Because the system is *ideal*, it needs no simulation: deliveries and
message counts follow in closed form —

* item *i* reaches exactly the subscribers of ``topic(i)``;
* the spanning tree over the ``s`` subscribers costs ``s - 1`` edge
  messages (the publisher is one of the subscribers).

The class still exposes the same surface as the engine-backed systems
(``reached_matrix``, message totals) so the experiment harness treats it
uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

__all__ = ["CPubSubSystem"]


class CPubSubSystem:
    """Closed-form evaluation of the ideal topic pub/sub."""

    system_name = "c-pubsub"

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._subscriptions = dataset.topic_subscriptions()
        self._reached: np.ndarray | None = None
        self._messages: int = 0

    def run(self, cycles: int | None = None, *, drain: bool = True) -> None:
        """Compute the dissemination outcome (no cycles are simulated)."""
        ds = self.dataset
        reached = np.zeros((ds.n_users, ds.n_items), dtype=bool)
        subs_per_topic: dict[int, np.ndarray] = {}
        for topic in range(ds.n_topics):
            subs_per_topic[topic] = np.array(
                [topic in s for s in self._subscriptions], dtype=bool
            )
        messages = 0
        for idx, item in enumerate(ds.items):
            subscribers = subs_per_topic.get(item.topic)
            if subscribers is None:
                continue
            reached[:, idx] = subscribers
            # the publisher always holds its item even if (degenerate case)
            # it is not a subscriber of the topic
            reached[item.source, idx] = True
            n_sub = int(reached[:, idx].sum())
            messages += max(n_sub - 1, 0)  # spanning-tree edges
        self._reached = reached
        self._messages = messages

    # -- harness-compatible surface ----------------------------------------

    def reached_matrix(self) -> np.ndarray:
        """Boolean delivery matrix (must :meth:`run` first)."""
        if self._reached is None:
            raise RuntimeError("CPubSubSystem.run() has not been called")
        return self._reached

    @property
    def total_messages(self) -> int:
        """Spanning-tree message count across all items."""
        return self._messages

    def messages_per_user(self) -> float:
        """Messages normalised per user (Table V comparability)."""
        return self._messages / self.dataset.n_users

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CPubSubSystem(dataset={self.dataset.name!r})"
