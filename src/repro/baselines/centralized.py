"""C-WHATSUP: the centralized, global-knowledge variant (paper Section IV-B).

"We also compare WHATSUP with a centralized system (C-WHATSUP) gathering the
global knowledge of all the profiles of its users and news items.
C-WHATSUP leverages this global information (vs a restricted sample of the
network) to boost precision using complete search.  When a user likes a news
item, the server delivers it to the fLIKE closest users according to the
cosine similarity metric.  In addition, it also provides the item to the
fLIKE users with the highest correlation with the item's profile.  When a
user does not like an item, the server presents it to the fDISLIKE nodes
whose profiles are most similar to the item's profile (up to TTL times)."

Implementation notes
--------------------
The server holds every user profile as a row of a dense like/rated matrix
and every item profile as a dense score vector, all updated *instantly* on
each rating (the decentralized system only sees aggregates with gossip
delay).  Complete search is vectorised:

* closest users to a liker — a cosine mat-vec over the like matrix;
* correlation with an item profile — the matrix form of the WUP metric
  restricted to the profile's domain.

Profile windows apply globally: entries age by their item's creation cycle,
so "visible" columns are simply those whose items are younger than the
window — identical semantics to the decentralized purge.

The server→user deliveries ride the same engine/transport as every other
system, so loss models and message accounting stay comparable (copies carry
no serialized item profile: the profile lives on the server).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import WhatsUpConfig
from repro.core.news import ItemCopy, NewsItem
from repro.core.node import OpinionFn
from repro.datasets.base import Dataset, OpinionOracle
from repro.network.transport import Transport
from repro.simulation.engine import CycleEngine
from repro.simulation.harness import SystemHarness
from repro.simulation.node import BaseNode
from repro.utils.rng import RngStreams

__all__ = ["CentralServer", "CWhatsUpNode", "CWhatsUpSystem"]


class CentralServer:
    """Global-knowledge profile store and complete-search target selector."""

    def __init__(self, dataset: Dataset, config: WhatsUpConfig) -> None:
        self.config = config
        n_users, n_items = dataset.n_users, dataset.n_items
        self._index_of = {
            item.item_id: idx for idx, item in enumerate(dataset.items)
        }
        self._created = np.array(
            [item.created_at for item in dataset.items], dtype=np.int64
        )
        # user profiles (global, instantly updated)
        self._likes = np.zeros((n_users, n_items), dtype=np.float64)
        self._rated = np.zeros((n_users, n_items), dtype=np.float64)
        # item profiles: dense score vectors + domain masks
        self._item_scores = np.zeros((n_items, n_items), dtype=np.float64)
        self._item_domain = np.zeros((n_items, n_items), dtype=bool)
        # who already holds each item: the server never wastes a delivery on
        # an informed user (it has global knowledge, unlike gossip)
        self._informed = np.zeros((n_users, n_items), dtype=bool)
        self._now = 0
        self._visible: np.ndarray = self._created >= -1  # all, updated per cycle

    # -- time ---------------------------------------------------------------

    def set_now(self, now: int) -> None:
        """Advance the server clock; recomputes the profile-window mask."""
        if now != self._now or self._visible is None:
            self._now = now
            window_start = now - self.config.profile_window
            self._visible = self._created >= window_start

    def index_of(self, item: NewsItem) -> int:
        return self._index_of[item.item_id]

    # -- instant profile updates ---------------------------------------------

    def record_opinion(self, user: int, item: NewsItem, liked: bool) -> None:
        """Update the user profile and, on a like, the item profile."""
        idx = self.index_of(item)
        self._informed[user, idx] = True
        self._rated[user, idx] = 1.0
        self._likes[user, idx] = 1.0 if liked else 0.0
        if liked:
            self._integrate_item_profile(user, idx)

    def _integrate_item_profile(self, user: int, idx: int) -> None:
        """Algorithm 1's ``addToNewsProfile`` in dense-vector form."""
        u_rated = self._rated[user] > 0.0
        u_scores = self._likes[user]
        domain = self._item_domain[idx]
        scores = self._item_scores[idx]
        both = domain & u_rated
        scores[both] = (scores[both] + u_scores[both]) / 2.0
        fresh = u_rated & ~domain
        scores[fresh] = u_scores[fresh]
        domain |= u_rated

    # -- complete search -------------------------------------------------------

    def _visible_likes(self) -> np.ndarray:
        return self._likes * self._visible

    def closest_users_by_cosine(self, user: int, k: int) -> list[int]:
        """The *k* users cosine-closest to *user* (complete search)."""
        lmat = self._visible_likes()
        target = lmat[user]
        norm_t = np.sqrt(target.sum())
        if norm_t == 0.0:
            return []
        dots = lmat @ target
        norms = np.sqrt(lmat.sum(axis=1))
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = np.where(norms > 0, dots / (norms * norm_t), 0.0)
        sims[user] = -np.inf
        return self._top_k(sims, k)

    def correlated_users(
        self, idx: int, k: int, exclude: int | None = None
    ) -> list[int]:
        """The *k* users most similar to item *idx*'s profile (WUP form)."""
        domain = self._item_domain[idx] & self._visible
        if not domain.any():
            return []
        scores = np.where(domain, self._item_scores[idx], 0.0)
        p_norm = np.sqrt(float(scores @ scores))
        if p_norm == 0.0:
            return []
        lmat = self._visible_likes()
        num = lmat @ scores
        sub2 = lmat @ domain.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = np.where(sub2 > 0, num / (np.sqrt(sub2) * p_norm), 0.0)
        if exclude is not None:
            sims[exclude] = -np.inf
        return self._top_k(sims, k)

    @staticmethod
    def _top_k(sims: np.ndarray, k: int) -> list[int]:
        """Indices of the *k* highest *strictly positive* similarities.

        Complete search only delivers to users with some profile affinity:
        once every remaining uninformed user has zero similarity, the item
        stops spreading — this is what keeps the centralized variant's
        precision above the decentralized one's (Figure 9) instead of
        degenerating into a broadcast.
        """
        k = min(k, len(sims))
        if k <= 0:
            return []
        part = np.argpartition(-sims, k - 1)[:k]
        ranked = part[np.argsort(-sims[part], kind="stable")]
        return [int(i) for i in ranked if sims[i] > 0.0]

    # -- the paper's delivery rules ----------------------------------------

    def like_targets(
        self, user: int, item: NewsItem, rng: np.random.Generator
    ) -> list[int]:
        """fLIKE cosine-closest users ∪ fLIKE item-correlated users.

        Paper-literal complete search: the server picks the overall closest
        users; those that already hold the item are simply dropped from the
        send list (a server with global knowledge never transmits a
        duplicate, and it does **not** go hunting for further-away fresh
        targets — that restraint is what keeps its precision above the
        decentralized system's, Figure 9).

        Cold start: while nobody's visible profile overlaps anybody's,
        similarities are all zero and complete search returns nothing.
        Until the item has reached ``fLIKE`` users the server falls back to
        random uninformed targets — the centralized analogue of the random
        initial views that bootstrap the decentralized system.
        """
        idx = self.index_of(item)
        f = self.config.f_like
        # complete search ranks a 2f-deep pool per criterion, then delivers
        # to at most f fresh users per criterion — the server skips the
        # informed prefix of the ranking but does not search arbitrarily far
        by_user = [
            t
            for t in self.closest_users_by_cosine(user, 2 * f)
            if not self._informed[t, idx]
        ][:f]
        by_item = [
            t
            for t in self.correlated_users(idx, 2 * f, exclude=user)
            if not self._informed[t, idx]
        ][:f]
        targets = dict.fromkeys(by_user)
        for t in by_item:
            targets.setdefault(t)
        targets.pop(user, None)
        chosen = list(targets)
        if not chosen and int(self._informed[:, idx].sum()) <= f:
            uninformed = np.flatnonzero(~self._informed[:, idx])
            uninformed = uninformed[uninformed != user]
            if len(uninformed):
                k = min(f, len(uninformed))
                picks = rng.choice(len(uninformed), size=k, replace=False)
                chosen = [int(uninformed[int(i)]) for i in picks]
        self._informed[chosen, idx] = True
        return chosen

    def dislike_targets(self, user: int, item: NewsItem) -> list[int]:
        """fDISLIKE users most similar to the item's profile."""
        idx = self.index_of(item)
        chosen = [
            t
            for t in self.correlated_users(idx, self.config.f_dislike, exclude=user)
            if not self._informed[t, idx]
        ]
        self._informed[chosen, idx] = True
        return chosen


class CWhatsUpNode(BaseNode):
    """A C-WHATSUP client: rates items; the server picks the next readers."""

    __slots__ = ("server", "opinion", "seen", "rng")

    def __init__(
        self,
        node_id: int,
        server: CentralServer,
        opinion: OpinionFn,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id)
        self.server = server
        self.opinion = opinion
        self.seen: set[int] = set()
        self.rng = rng

    def begin_cycle(self, engine: CycleEngine, now: int) -> None:
        self.server.set_now(now)  # idempotent per cycle

    def _deliver(self, copy: ItemCopy, targets: list[int], liked: bool, engine) -> None:
        if not targets:
            return
        for target in targets:
            clone = ItemCopy(
                item=copy.item,
                dislikes=copy.dislikes + (0 if liked else 1),
                hops=copy.hops + 1,
            )
            engine.send_item(self.node_id, target, clone, via_like=liked)
        engine.log_forward(self.node_id, copy, liked, len(targets))

    def receive_item(self, copy, via_like, engine, now):
        item = copy.item
        if item.item_id in self.seen:
            engine.log_duplicate()
            return
        self.seen.add(item.item_id)
        self.server.set_now(now)
        liked = bool(self.opinion(self.node_id, item))
        self.server.record_opinion(self.node_id, item, liked)
        engine.log_delivery(self.node_id, copy, liked, via_like)
        if liked:
            self._deliver(
                copy,
                self.server.like_targets(self.node_id, item, self.rng),
                True,
                engine,
            )
        elif copy.dislikes < self.server.config.beep_ttl:
            self._deliver(
                copy, self.server.dislike_targets(self.node_id, item), False, engine
            )

    def publish(self, item: NewsItem, engine, now):
        self.seen.add(item.item_id)
        self.server.set_now(now)
        self.server.record_opinion(self.node_id, item, True)
        copy = ItemCopy(item=item)
        engine.log_delivery(self.node_id, copy, liked=True, via_like=True)
        self._deliver(
            copy,
            self.server.like_targets(self.node_id, item, self.rng),
            True,
            engine,
        )


class CWhatsUpSystem(SystemHarness):
    """The centralized WHATSUP deployment (Figure 9's upper bound)."""

    system_name = "c-whatsup"

    def __init__(
        self,
        dataset: Dataset,
        config: WhatsUpConfig | None = None,
        *,
        seed: int = 0,
        transport: Transport | None = None,
    ) -> None:
        self.config = config if config is not None else WhatsUpConfig()
        self.streams = RngStreams(seed)
        oracle = OpinionOracle(dataset)
        self.server = CentralServer(dataset, self.config)
        coldstart_rng = self.streams.get("cwhatsup-coldstart")
        self.nodes = [
            CWhatsUpNode(uid, self.server, oracle, coldstart_rng)
            for uid in range(dataset.n_users)
        ]
        engine = CycleEngine(
            self.nodes,
            dataset.schedule(),
            transport=transport,
            streams=self.streams,
        )
        super().__init__(dataset, engine)
