"""The paper's competitors (Section IV-B).

* :class:`GossipSystem` — standard homogeneous gossip (opinion-blind);
* :class:`CfSystem` — decentralized nearest-neighbour CF, instantiated as
  CF-WUP (``metric="wup"``) or CF-Cos (``metric="cosine"``);
* :class:`CascadeSystem` — explicit social cascading (Digg workload);
* :class:`CPubSubSystem` — the ideal centralized topic pub/sub (closed form);
* :class:`CWhatsUpSystem` — centralized WHATSUP with global knowledge.
"""

from repro.baselines.cascade import CascadeNode, CascadeSystem
from repro.baselines.centralized import CentralServer, CWhatsUpNode, CWhatsUpSystem
from repro.baselines.cf import CfNode, CfSystem
from repro.baselines.gossip import GossipNode, GossipSystem
from repro.baselines.pubsub import CPubSubSystem

__all__ = [
    "CascadeNode",
    "CascadeSystem",
    "CentralServer",
    "CWhatsUpNode",
    "CWhatsUpSystem",
    "CfNode",
    "CfSystem",
    "GossipNode",
    "GossipSystem",
    "CPubSubSystem",
]
