"""Decentralized collaborative-filtering baselines CF-WUP and CF-Cos.

Paper Section IV-B: "In a decentralized CF scheme based on nearest-neighbor
technique, when a node receives a news item it likes, it forwards it to its
k closest neighbors according to some similarity metric. ... While it is
decentralized, this scheme does not benefit from the orientation and
amplification mechanisms provided by BEEP.  More specifically, it takes no
action when a node does not like a news item."

The neighbourhood is maintained exactly like WHATSUP's WUP layer (RPS +
greedy clustering) so that the *only* difference from WHATSUP is the
forwarding rule — which is what Figures 3/4 and Table III isolate:

* liked item → forwarded to **all k** clustering neighbours (not a random
  subset of a larger view — there is no amplification tuning);
* disliked item → dropped (no dislike path, no TTL, no orientation);
* item copies carry no item profile (nothing would read it).

``CF-WUP`` instantiates the clustering metric with the paper's asymmetric
metric; ``CF-Cos`` with classical cosine.
"""

from __future__ import annotations

from repro.core.news import ItemCopy, NewsItem
from repro.core.node import OpinionFn
from repro.core.profiles import UserProfile
from repro.core.similarity import get_metric
from repro.datasets.base import Dataset, OpinionOracle
from repro.gossip.bootstrap import random_view_bootstrap
from repro.gossip.rps import RpsProtocol
from repro.gossip.vicinity import ClusteringProtocol
from repro.network.message import MessageKind
from repro.network.transport import Transport
from repro.simulation.engine import CycleEngine
from repro.simulation.harness import SystemHarness
from repro.simulation.node import BaseNode
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngStreams

__all__ = ["CfNode", "CfSystem"]


class CfNode(BaseNode):
    """One participant of the decentralized CF baseline."""

    __slots__ = (
        "k",
        "opinion",
        "profile",
        "rps",
        "clustering",
        "seen",
        "profile_window",
    )

    def __init__(
        self,
        node_id: int,
        k: int,
        metric_name: str,
        rps_view_size: int,
        profile_window: int,
        opinion: OpinionFn,
        streams: RngStreams,
    ) -> None:
        super().__init__(node_id)
        if k <= 0:
            raise ConfigurationError(f"k must be > 0, got {k}")
        self.k = k
        self.opinion = opinion
        self.profile = UserProfile()
        self.profile_window = profile_window
        self.rps = RpsProtocol(
            node_id, rps_view_size, streams.fresh(f"cf-{node_id}-rps")
        )
        self.clustering = ClusteringProtocol(
            node_id,
            k,
            get_metric(metric_name),
            streams.fresh(f"cf-{node_id}-clu"),
        )
        self.seen: set[int] = set()

    def begin_cycle(self, engine: CycleEngine, now: int) -> None:
        window_start = now - self.profile_window
        if window_start > 0:
            self.profile.purge_older_than(window_start)
        snapshot = self.profile.snapshot()
        for proto, kind in (
            (self.rps, MessageKind.RPS),
            (self.clustering, MessageKind.WUP),
        ):
            started = proto.initiate(snapshot, now)
            if started is not None:
                partner, msg = started
                engine.gossip(self.node_id, partner, msg, kind)

    def on_gossip(self, msg, kind, engine, now):
        snapshot = self.profile.snapshot()
        if kind is MessageKind.RPS:
            return self.rps.handle(msg, snapshot, now)
        if kind is MessageKind.WUP:
            rps_entries, rps_cols = self.rps.view.entries_with_columns()
            return self.clustering.handle(
                msg, snapshot, now, rps_entries=rps_entries, rps_cols=rps_cols
            )
        return None

    def _forward_to_neighbours(self, copy: ItemCopy, engine: CycleEngine) -> None:
        targets = self.clustering.view.node_ids()
        if not targets:
            return
        for target in targets:
            engine.send_item(
                self.node_id, target, copy.clone_for_forward(), via_like=True
            )
        engine.log_forward(self.node_id, copy, True, len(targets))

    def receive_item(self, copy, via_like, engine, now):
        item = copy.item
        if item.item_id in self.seen:
            engine.log_duplicate()
            return
        self.seen.add(item.item_id)
        liked = bool(self.opinion(self.node_id, item))
        self.profile.record_opinion(item.item_id, item.created_at, liked)
        engine.log_delivery(self.node_id, copy, liked, via_like)
        if liked:  # "takes no action when a node does not like a news item"
            self._forward_to_neighbours(copy, engine)

    def publish(self, item: NewsItem, engine, now):
        self.seen.add(item.item_id)
        self.profile.record_opinion(item.item_id, item.created_at, True)
        copy = ItemCopy(item=item)
        engine.log_delivery(self.node_id, copy, liked=True, via_like=True)
        self._forward_to_neighbours(copy, engine)


class CfSystem(SystemHarness):
    """Decentralized CF over a workload.

    Parameters
    ----------
    dataset:
        The workload.
    k:
        Neighbourhood size (Table III's best points: 19 for CF-WUP, 29 for
        CF-Cos on the survey workload).
    metric:
        ``"wup"`` → CF-WUP, ``"cosine"`` → CF-Cos.
    rps_view_size / profile_window:
        Kept at WHATSUP's defaults for comparability.
    """

    def __init__(
        self,
        dataset: Dataset,
        k: int = 19,
        metric: str = "wup",
        *,
        rps_view_size: int = 30,
        profile_window: int = 13,
        seed: int = 0,
        transport: Transport | None = None,
    ) -> None:
        # paper naming: CF-WUP / CF-Cos
        short = {"cosine": "cos"}.get(metric.lower(), metric.lower())
        self.system_name = f"cf-{short}"
        self.streams = RngStreams(seed)
        oracle = OpinionOracle(dataset)
        self.nodes = [
            CfNode(
                uid, k, metric, rps_view_size, profile_window, oracle, self.streams
            )
            for uid in range(dataset.n_users)
        ]
        random_view_bootstrap(
            self.nodes,
            self.streams.get("bootstrap"),
            lambda n: (n.rps.view, n.clustering.view),
        )
        engine = CycleEngine(
            self.nodes,
            dataset.schedule(),
            transport=transport,
            streams=self.streams,
        )
        super().__init__(dataset, engine)
