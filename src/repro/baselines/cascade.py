"""Explicit social cascading (paper Section IV-B, Table V).

"Cascading is a dissemination approach followed by several social
applications, e.g., Twitter, Digg.  Whenever a node likes (tweets in
Twitter and diggs in Digg) a news item, it forwards it to all of its
explicit social neighbors."

The cascade runs over the workload's *static* social graph (only the Digg
workload has one); there is no gossip layer and no reaction to dislikes.
Its structural weakness — the explicit graph only partially aligns with
interests — is what caps its recall at 0.09 in the paper's Table V.
"""

from __future__ import annotations

from repro.core.news import ItemCopy, NewsItem
from repro.core.node import OpinionFn
from repro.datasets.base import Dataset, OpinionOracle
from repro.network.transport import Transport
from repro.simulation.engine import CycleEngine
from repro.simulation.harness import SystemHarness
from repro.simulation.node import BaseNode
from repro.utils.exceptions import DatasetError
from repro.utils.rng import RngStreams

__all__ = ["CascadeNode", "CascadeSystem"]


class CascadeNode(BaseNode):
    """One participant of the explicit-cascade baseline."""

    __slots__ = ("neighbours", "opinion", "seen")

    def __init__(
        self,
        node_id: int,
        neighbours: list[int],
        opinion: OpinionFn,
    ) -> None:
        super().__init__(node_id)
        self.neighbours = list(neighbours)
        self.opinion = opinion
        self.seen: set[int] = set()

    def begin_cycle(self, engine: CycleEngine, now: int) -> None:
        pass  # static topology: nothing to maintain

    def _cascade(self, copy: ItemCopy, engine: CycleEngine) -> None:
        if not self.neighbours:
            return
        for target in self.neighbours:
            engine.send_item(
                self.node_id, target, copy.clone_for_forward(), via_like=True
            )
        engine.log_forward(self.node_id, copy, True, len(self.neighbours))

    def receive_item(self, copy, via_like, engine, now):
        item = copy.item
        if item.item_id in self.seen:
            engine.log_duplicate()
            return
        self.seen.add(item.item_id)
        liked = bool(self.opinion(self.node_id, item))
        engine.log_delivery(self.node_id, copy, liked, via_like)
        if liked:  # only likes cascade
            self._cascade(copy, engine)

    def publish(self, item: NewsItem, engine, now):
        self.seen.add(item.item_id)
        copy = ItemCopy(item=item)
        engine.log_delivery(self.node_id, copy, liked=True, via_like=True)
        self._cascade(copy, engine)


class CascadeSystem(SystemHarness):
    """Explicit cascading over the workload's social graph.

    Raises :class:`DatasetError` when the workload has no social graph —
    the paper could compare against cascading "in the only dataset for
    which an explicit social network is available, namely Digg".
    """

    system_name = "cascade"

    def __init__(
        self,
        dataset: Dataset,
        *,
        seed: int = 0,
        transport: Transport | None = None,
    ) -> None:
        if dataset.social_graph is None:
            raise DatasetError(
                f"workload {dataset.name!r} has no explicit social graph; "
                "cascading needs one (use the Digg workload)"
            )
        self.streams = RngStreams(seed)
        oracle = OpinionOracle(dataset)
        graph = dataset.social_graph
        self.nodes = [
            CascadeNode(uid, sorted(graph.successors(uid)), oracle)
            for uid in range(dataset.n_users)
        ]
        engine = CycleEngine(
            self.nodes,
            dataset.schedule(),
            transport=transport,
            streams=self.streams,
        )
        super().__init__(dataset, engine)
