"""Interest dynamics experiments (paper Figure 7, Section V-C).

Two interventions, both on the survey workload:

* **joining node** — a new user with interests identical to a running
  *reference node* cold-starts mid-run (Section II-D); we track how many
  cycles its WUP view needs to become as good as the reference's;
* **changing node** — two random users *swap* interests mid-run (the
  paper's upper bound on gradual interest drift); we track how long their
  views take to re-converge.

The paper's measurement: "the average similarity between the reference node
and the members of its WUP view", compared with the same measure applied to
the joining/changing node.  The headline numbers: the WUP metric needs ~20
cycles for a joiner (cosine: >100) and ~40 for a swap (cosine: >100), and
the joiner starts receiving liked news immediately (Figure 7c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.node import WhatsUpNode
from repro.core.similarity import get_metric
from repro.datasets import survey_dataset
from repro.datasets.base import Dataset, OpinionOracle

__all__ = ["DynamicsTrace", "run_dynamics_experiment", "view_similarity_to"]


def view_similarity_to(reference: WhatsUpNode, node: WhatsUpNode, metric) -> float:
    """Average similarity between *reference*'s profile and *node*'s WUP view.

    The paper's Figure 7 measure: how well a node's view would serve the
    reference interests.
    """
    entries = node.wup.view.entries()
    if not entries:
        return 0.0
    ref_profile = reference.profile.snapshot()
    return float(
        np.mean([metric(ref_profile, e.profile) for e in entries])
    )


class _SwappableOracle:
    """Ground-truth oracle with an indirection layer for interest swaps."""

    def __init__(self, dataset: Dataset) -> None:
        self._oracle = OpinionOracle(dataset)
        self._alias: dict[int, int] = {}

    def swap(self, a: int, b: int) -> None:
        """Exchange the interests of users *a* and *b* from now on."""
        ra = self._alias.get(a, a)
        rb = self._alias.get(b, b)
        self._alias[a] = rb
        self._alias[b] = ra

    def alias(self, node_id: int, row: int) -> None:
        """Make *node_id* answer with user *row*'s interests."""
        self._alias[node_id] = row

    def __call__(self, node_id: int, item) -> bool:
        return self._oracle(self._alias.get(node_id, node_id), item)


@dataclass
class DynamicsTrace:
    """Per-cycle traces of the Figure 7 experiment."""

    cycles: list[int] = field(default_factory=list)
    reference_similarity: list[float] = field(default_factory=list)
    joining_similarity: list[float] = field(default_factory=list)
    changing_similarity: list[float] = field(default_factory=list)
    #: cycle -> number of liked news received that cycle (joiner, Fig. 7c)
    joiner_liked_per_cycle: dict[int, int] = field(default_factory=dict)
    reference_liked_per_cycle: dict[int, int] = field(default_factory=dict)
    intervention_cycle: int = 0

    def convergence_cycle(
        self, threshold: float = 0.8, min_reference: float = 0.15
    ) -> int | None:
        """First post-intervention cycle where the joiner's view reaches
        *threshold* × the reference's view quality (paper's 80% criterion).

        Cycles where the reference's own view similarity is below
        *min_reference* are skipped: early in a run everybody's views score
        near zero and the ratio criterion would fire vacuously.
        """
        return self._first_reaching(self.joining_similarity, threshold, min_reference)

    def change_convergence_cycle(
        self, threshold: float = 0.8, min_reference: float = 0.15
    ) -> int | None:
        """Recovery time of the interest-changing node.

        A node that swaps interests first *loses* view quality — its old
        opinions dominate the profile until the window purges them — and
        then rebuilds.  We therefore locate the post-intervention minimum
        of its view similarity and report the first cycle after it where
        the ratio criterion holds (measured from the intervention).
        """
        post = [
            (i, c)
            for i, c in enumerate(self.cycles)
            if c >= self.intervention_cycle
        ]
        if not post:
            return None
        dip_index = min(post, key=lambda ic: self.changing_similarity[ic[0]])[0]
        for i, c in post:
            if i < dip_index:
                continue
            ref = self.reference_similarity[i]
            if ref >= min_reference and self.changing_similarity[i] >= threshold * ref:
                return c - self.intervention_cycle
        return None

    def _first_reaching(
        self, series: list[float], threshold: float, min_reference: float
    ) -> int | None:
        for c, value, ref in zip(
            self.cycles, series, self.reference_similarity, strict=False
        ):
            if (
                c >= self.intervention_cycle
                and ref >= min_reference
                and value >= threshold * ref
            ):
                return c - self.intervention_cycle
        return None


def _representative_users(dataset: Dataset, rng: np.random.Generator) -> np.ndarray:
    """Users eligible as reference/changing nodes.

    The paper repeats the experiment with 100 random joining nodes from its
    real survey population, where every respondent liked some mainstream
    items.  Our generator has a deliberate eccentric tail (for the
    Figure 11 sociability spectrum) whose members like almost nothing
    popular; cloning one would measure the tail, not cold start.  We sample
    references from users above the 25th like-rate percentile.
    """
    rates = dataset.likes.mean(axis=1)
    cutoff = np.percentile(rates, 25)
    eligible = np.flatnonzero(rates > cutoff)
    return eligible if len(eligible) >= 3 else np.arange(dataset.n_users)


def _run_single(
    metric_name: str,
    n_base_users: int,
    n_base_items: int,
    publish_cycles: int,
    total_cycles: int,
    intervention_cycle: int,
    profile_window: int,
    f_like: int,
    seed: int,
) -> DynamicsTrace:
    dataset = survey_dataset(
        n_base_users=n_base_users,
        n_base_items=n_base_items,
        publish_cycles=publish_cycles,
        seed=seed,
    )
    config = WhatsUpConfig(
        f_like=f_like,
        profile_window=profile_window,
        similarity=metric_name,
    )
    # the dynamics experiment rewires node oracles *after* construction
    # and reads per-node similarity from an every-cycle observer —
    # inherently single-process introspection, so the engine is pinned
    # to REPRO_SHARDS=1 regardless of the ambient sharding gate
    from repro.simulation.sharding import sharding

    with sharding(1):
        system = WhatsUpSystem(dataset, config, seed=seed)
    oracle = _SwappableOracle(dataset)
    # replace every node's oracle with the swappable one
    for node in system.nodes:
        node.opinion = oracle
    system.oracle = oracle

    metric = get_metric(metric_name)
    rng = system.streams.get("dynamics")
    eligible = _representative_users(dataset, rng)
    picks = rng.choice(len(eligible), size=3, replace=False)
    reference_id = int(eligible[picks[0]])
    swap_a = int(eligible[picks[1]])
    swap_b = int(eligible[picks[2]])
    joiner_id = dataset.n_users + 1

    trace = DynamicsTrace(intervention_cycle=intervention_cycle)
    state: dict = {"joiner": None}

    def observer(engine, cycle: int) -> None:
        reference = engine.node(reference_id)
        trace.cycles.append(cycle)
        trace.reference_similarity.append(
            view_similarity_to(reference, reference, metric)
        )
        joiner = state["joiner"]
        trace.joining_similarity.append(
            view_similarity_to(reference, joiner, metric) if joiner else 0.0
        )
        changing = engine.node(swap_a)
        # measured against the node's *new* interests: after the swap the
        # changing node must rebuild a view serving its fresh profile,
        # so (as in the paper) we measure its view against itself
        trace.changing_similarity.append(
            view_similarity_to(changing, changing, metric)
        )

    system.engine.add_observer(observer)

    # phase 1: warm-up until the intervention
    system.run(intervention_cycle, drain=False)

    # interventions: join a clone of the reference; swap two users
    oracle.alias(joiner_id, reference_id)
    joiner = system.join_node(joiner_id, opinion=oracle)
    state["joiner"] = joiner
    oracle.swap(swap_a, swap_b)

    # phase 2: observe convergence
    system.run(total_cycles - intervention_cycle, drain=True)

    # Figure 7c: liked receptions per cycle for joiner vs reference
    arr = system.log.arrays()
    for node_id, bucket in (
        (joiner_id, trace.joiner_liked_per_cycle),
        (reference_id, trace.reference_liked_per_cycle),
    ):
        mask = (arr["d_node"] == node_id) & arr["d_liked"]
        for cyc in arr["d_cycle"][mask]:
            bucket[int(cyc)] = bucket.get(int(cyc), 0) + 1
    return trace


def run_dynamics_experiment(
    *,
    metric_name: str = "wup",
    n_base_users: int = 120,
    n_base_items: int = 500,
    publish_cycles: int = 200,
    total_cycles: int = 200,
    intervention_cycle: int = 80,
    profile_window: int = 40,
    f_like: int = 5,
    seed: int = 1,
    repeats: int = 3,
) -> DynamicsTrace:
    """Run the Figure 7 joining/changing-node experiment.

    The workload publishes continuously so profiles stay warm throughout;
    the profile window is ~40 cycles, as in the paper's dynamics runs.
    Traces are averaged over *repeats* independent populations and node
    choices (the paper averages 100 repetitions; 3 keeps benchmark runs
    short — raise it for paper-grade smoothness).

    Returns the averaged per-cycle traces; benchmark code derives the
    convergence summaries from them.
    """
    traces = [
        _run_single(
            metric_name,
            n_base_users,
            n_base_items,
            publish_cycles,
            total_cycles,
            intervention_cycle,
            profile_window,
            f_like,
            seed + 1000 * r,
        )
        for r in range(max(1, repeats))
    ]
    if len(traces) == 1:
        return traces[0]
    merged = DynamicsTrace(intervention_cycle=intervention_cycle)
    n_cycles = min(len(t.cycles) for t in traces)
    merged.cycles = traces[0].cycles[:n_cycles]
    for attr in ("reference_similarity", "joining_similarity", "changing_similarity"):
        stacked = np.array([getattr(t, attr)[:n_cycles] for t in traces])
        setattr(merged, attr, stacked.mean(axis=0).tolist())
    for attr in ("joiner_liked_per_cycle", "reference_liked_per_cycle"):
        bucket: dict[int, float] = {}
        for t in traces:
            for cyc, count in getattr(t, attr).items():
                bucket[cyc] = bucket.get(cyc, 0.0) + count / len(traces)
        setattr(merged, attr, bucket)
    return merged
