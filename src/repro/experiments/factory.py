"""System factory: build any evaluated system by name.

Names follow the paper's vocabulary:

========== ==============================================================
Name       System
========== ==============================================================
whatsup        WHATSUP (WUP metric)
whatsup-cos    WHATSUP with cosine similarity (Section V-A variant)
cf-wup         decentralized CF with the WUP metric
cf-cos         decentralized CF with cosine similarity
gossip         homogeneous gossip
cascade        explicit social cascading (needs a social graph)
c-whatsup      centralized WHATSUP (global knowledge)
c-pubsub       ideal centralized topic pub/sub (closed form)
========== ==============================================================

The ``fanout`` argument is the sweep parameter of Figures 3/4/9: ``fLIKE``
for the WHATSUP family, the neighbourhood size ``k`` for CF, the gossip
fanout for homogeneous gossip.  Cascade and C-Pub/Sub have no fanout.
"""

from __future__ import annotations


from repro.baselines import (
    CascadeSystem,
    CfSystem,
    CPubSubSystem,
    CWhatsUpSystem,
    GossipSystem,
)
from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.datasets.base import Dataset
from repro.network.transport import Transport
from repro.utils.exceptions import ConfigurationError

__all__ = ["SYSTEM_NAMES", "build_system"]

SYSTEM_NAMES = (
    "whatsup",
    "whatsup-cos",
    "cf-wup",
    "cf-cos",
    "gossip",
    "cascade",
    "c-whatsup",
    "c-pubsub",
)


def build_system(
    name: str,
    dataset: Dataset,
    *,
    fanout: int | None = None,
    seed: int = 0,
    transport: Transport | None = None,
    config: WhatsUpConfig | None = None,
    churn: object | None = None,
):
    """Instantiate a ready-to-run system.

    Parameters
    ----------
    name:
        One of :data:`SYSTEM_NAMES`.
    dataset:
        The workload.
    fanout:
        The sweep parameter (see module docstring); ``None`` keeps each
        system's paper default.
    seed / transport / churn:
        Run seed, optional loss model, optional churn model.
    config:
        Base :class:`WhatsUpConfig` for the WHATSUP family (``fanout``
        overrides its ``f_like``); ignored by the other systems except
        ``c-whatsup``.
    """
    key = name.lower()
    base = config if config is not None else WhatsUpConfig()

    if key in ("whatsup", "whatsup-cos", "c-whatsup"):
        cfg = base
        if fanout is not None:
            cfg = cfg.with_fanout(fanout)
        if key == "whatsup-cos":
            cfg = cfg.with_metric("cosine")
        if key == "c-whatsup":
            return CWhatsUpSystem(dataset, cfg, seed=seed, transport=transport)
        return WhatsUpSystem(
            dataset, cfg, seed=seed, transport=transport, churn=churn
        )
    if key in ("cf-wup", "cf-cos"):
        metric = "wup" if key == "cf-wup" else "cosine"
        k = fanout if fanout is not None else (19 if metric == "wup" else 29)
        return CfSystem(
            dataset,
            k=k,
            metric=metric,
            rps_view_size=base.rps_view_size,
            profile_window=base.profile_window,
            seed=seed,
            transport=transport,
        )
    if key == "gossip":
        return GossipSystem(
            dataset,
            fanout=fanout if fanout is not None else 4,
            rps_view_size=base.rps_view_size,
            seed=seed,
            transport=transport,
        )
    if key == "cascade":
        return CascadeSystem(dataset, seed=seed, transport=transport)
    if key == "c-pubsub":
        return CPubSubSystem(dataset)
    raise ConfigurationError(
        f"unknown system {name!r}; available: {SYSTEM_NAMES}"
    )
