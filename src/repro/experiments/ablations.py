"""Ablation experiments for the design choices Section IV-D discusses.

These go beyond the paper's printed tables: they regenerate the parameter
studies the authors describe in prose —

* the **profile window** ("a size between 1/5 and 2/5 of the whole period
  gives the best F1-Score, while smaller or larger values make WHATSUP
  either too dynamic or not enough");
* the **RPS view size** ("good performance with values between 20 and 40");
* the **WUPvs / fLIKE ratio** ("we set the value of WUPvs to the double of
  fLIKE as experiments provide the best trade-off");
* the **similarity metric** (WUP vs cosine vs Jaccard vs overlap — the
  paper only contrasts WUP and cosine).
"""

from __future__ import annotations

from repro.core import WhatsUpConfig
from repro.experiments.factory import build_system
from repro.experiments.reporting import ExperimentReport
from repro.experiments.runner import run_one, score_system
from repro.experiments.scale import ScaleProfile
from repro.metrics.graph import (
    average_clustering,
    in_degree_concentration,
    lscc_fraction,
    overlay_graph,
    weak_component_count,
)
from repro.utils.tables import format_table

__all__ = [
    "exp_ablation_window",
    "exp_ablation_rps_view",
    "exp_ablation_wup_ratio",
    "exp_ablation_metrics",
]


def exp_ablation_window(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """F1 vs profile window, as a fraction of the run length."""
    ds = scale.survey(seed)
    run_length = ds.publish_cycles
    fractions = (0.1, 0.2, 0.33, 0.5, 0.8)
    windows = [max(2, int(round(f * run_length))) for f in fractions]
    rows = []
    for frac, window in zip(fractions, windows, strict=True):
        cfg = WhatsUpConfig(f_like=10, profile_window=window)
        r = run_one("whatsup", ds, seed=seed, config=cfg)
        rows.append((f"{frac:.2f} ({window} cycles)", r.precision, r.recall, r.f1))
    text = format_table(
        ["Window (fraction of run)", "Precision", "Recall", "F1-Score"],
        rows,
        title=f"Ablation: profile window (scale={scale.name})",
    )
    return ExperimentReport(
        "ablate-window", "Profile window ablation (§IV-D)", text, {"rows": rows}
    )


def exp_ablation_rps_view(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """F1 vs RPS view size (paper: robust between 20 and 40)."""
    ds = scale.survey(seed)
    sizes = (10, 20, 30, 40, 60)
    rows = []
    for size in sizes:
        cfg = WhatsUpConfig(f_like=10, rps_view_size=size)
        r = run_one("whatsup", ds, seed=seed, config=cfg)
        rows.append((size, r.precision, r.recall, r.f1))
    text = format_table(
        ["RPS view size", "Precision", "Recall", "F1-Score"],
        rows,
        title=f"Ablation: RPS view size (scale={scale.name})",
    )
    return ExperimentReport(
        "ablate-rpsvs", "RPS view size ablation (§IV-D)", text, {"rows": rows}
    )


def exp_ablation_wup_ratio(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """F1 vs WUPvs/fLIKE ratio (paper default: 2)."""
    ds = scale.survey(seed)
    f_like = 8
    ratios = (1.0, 1.5, 2.0, 3.0, 4.0)
    rows = []
    for ratio in ratios:
        cfg = WhatsUpConfig(
            f_like=f_like, wup_view_size=max(f_like, int(round(ratio * f_like)))
        )
        r = run_one("whatsup", ds, seed=seed, config=cfg)
        rows.append((ratio, r.precision, r.recall, r.f1))
    text = format_table(
        ["WUPvs / fLIKE", "Precision", "Recall", "F1-Score"],
        rows,
        title=f"Ablation: WUP view / fanout ratio (scale={scale.name}, fLIKE={f_like})",
    )
    return ExperimentReport(
        "ablate-wupvs", "WUP view size ratio ablation (§IV-D)", text, {"rows": rows}
    )


def exp_ablation_metrics(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Similarity-metric ablation incl. the §V-A topology numbers."""
    ds = scale.survey(seed)
    metrics = ("wup", "cosine", "jaccard", "overlap")
    rows = []
    for metric in metrics:
        cfg = WhatsUpConfig(f_like=10, similarity=metric)
        system = build_system("whatsup", ds, seed=seed, config=cfg)
        system.run()
        result = score_system(system, ds, {"metric": metric})
        graph = overlay_graph(system.nodes)
        rows.append(
            (
                metric,
                result.precision,
                result.recall,
                result.f1,
                average_clustering(graph),
                lscc_fraction(graph),
                weak_component_count(graph),
                in_degree_concentration(graph),
            )
        )
    text = format_table(
        [
            "Metric",
            "Precision",
            "Recall",
            "F1-Score",
            "Clust.coeff",
            "LSCC",
            "Components",
            "Hub share",
        ],
        rows,
        title=f"Ablation: similarity metric (fLIKE=10, scale={scale.name})",
    )
    return ExperimentReport(
        "ablate-metric", "Similarity metric ablation (§V-A)", text, {"rows": rows}
    )
