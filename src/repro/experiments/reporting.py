"""Report container and formatting helpers for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.results import RunResult
from repro.utils.tables import format_table

__all__ = ["ExperimentReport", "results_table", "series_table"]


@dataclass
class ExperimentReport:
    """One reproduced table or figure.

    Attributes
    ----------
    exp_id:
        Registry key (``table3``, ``fig4``, ...).
    title:
        Human-readable caption echoing the paper's.
    text:
        The rendered plain-text table(s)/series — what the benchmark
        prints.
    data:
        Structured values for programmatic consumers (tests, EXPERIMENTS.md
        generation).
    """

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"


def results_table(results: list[RunResult], *, title: str | None = None) -> str:
    """Render runs as a Table III-style block."""
    return format_table(
        ["Algorithm", "Precision", "Recall", "F1-Score", "Mess./User"],
        [
            (r.label(), r.precision, r.recall, r.f1, round(r.messages_per_user, 1))
            for r in results
        ],
        title=title,
    )


def series_table(
    x_name: str,
    x_values,
    columns: dict[str, list[float]],
    *,
    title: str | None = None,
    float_fmt: str = ".3f",
) -> str:
    """Render figure series as columns against a shared x axis."""
    headers = [x_name, *columns.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for series in columns.values():
            value = series[i]
            row.append(
                "-"
                if value is None
                or (isinstance(value, float) and np.isnan(value))
                else value
            )
        rows.append(row)
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
