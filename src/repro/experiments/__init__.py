"""Experiment harness: every paper table/figure as a runnable experiment.

Key entry points:

* :func:`run_experiment` / :data:`EXPERIMENTS` — the registry keyed by
  table/figure id (``table3``, ``fig4``, ...), see DESIGN.md §4;
* :func:`build_system` — system factory by paper name;
* :func:`run_one` / :func:`fanout_sweep` — building blocks for custom
  studies;
* :func:`get_scale` — the ``small`` / ``medium`` / ``paper`` scale
  profiles (``REPRO_SCALE`` environment variable).
"""

from repro.experiments.ablations import (
    exp_ablation_metrics,
    exp_ablation_rps_view,
    exp_ablation_window,
    exp_ablation_wup_ratio,
)
from repro.experiments.dynamics import DynamicsTrace, run_dynamics_experiment
from repro.experiments.extensions import (
    exp_ext_churn,
    exp_ext_drift,
    exp_shard_outage,
    exp_ext_latency,
    exp_ext_privacy,
)
from repro.experiments.factory import SYSTEM_NAMES, build_system
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.reporting import ExperimentReport, results_table, series_table
from repro.experiments.results import RunResult
from repro.experiments.runner import run_one, score_system
from repro.experiments.scale import SCALES, ScaleProfile, get_scale
from repro.experiments.sweeps import (
    best_result,
    fanout_sweep,
    topology_sweep,
    ttl_sweep,
)

# ablations and extensions join the registry under their own ids
EXPERIMENTS.setdefault("ablate-window", exp_ablation_window)
EXPERIMENTS.setdefault("ablate-rpsvs", exp_ablation_rps_view)
EXPERIMENTS.setdefault("ablate-wupvs", exp_ablation_wup_ratio)
EXPERIMENTS.setdefault("ablate-metric", exp_ablation_metrics)
EXPERIMENTS.setdefault("ext-churn", exp_ext_churn)
EXPERIMENTS.setdefault("ext-privacy", exp_ext_privacy)
EXPERIMENTS.setdefault("ext-latency", exp_ext_latency)
EXPERIMENTS.setdefault("ext-drift", exp_ext_drift)
EXPERIMENTS.setdefault("shard-outage", exp_shard_outage)

__all__ = [
    "DynamicsTrace",
    "run_dynamics_experiment",
    "SYSTEM_NAMES",
    "build_system",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "ExperimentReport",
    "results_table",
    "series_table",
    "RunResult",
    "run_one",
    "score_system",
    "SCALES",
    "ScaleProfile",
    "get_scale",
    "best_result",
    "fanout_sweep",
    "topology_sweep",
    "ttl_sweep",
    "exp_ext_churn",
    "exp_ext_privacy",
    "exp_ext_latency",
    "exp_ext_drift",
    "exp_shard_outage",
    "exp_ablation_metrics",
    "exp_ablation_rps_view",
    "exp_ablation_window",
    "exp_ablation_wup_ratio",
]
