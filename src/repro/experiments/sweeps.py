"""Parameter sweeps (the x-axes of Figures 3, 4, 5, 8a, 9)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core import WhatsUpConfig
from repro.datasets.base import Dataset
from repro.experiments.factory import build_system
from repro.experiments.results import RunResult
from repro.experiments.runner import run_one, score_system
from repro.metrics.graph import (
    average_clustering,
    lscc_fraction,
    overlay_graph,
    weak_component_count,
)
from repro.network.transport import Transport

__all__ = ["fanout_sweep", "topology_sweep", "ttl_sweep", "best_result"]


def fanout_sweep(
    dataset: Dataset,
    systems: Sequence[str],
    fanouts: Iterable[int],
    *,
    seed: int = 0,
    transport: Transport | None = None,
    config: WhatsUpConfig | None = None,
) -> list[RunResult]:
    """Run every (system, fanout) pair (Figures 3a-3f's data).

    Each run gets the same seed so the only varying factor is the system
    and its fanout.
    """
    results: list[RunResult] = []
    for name in systems:
        for fanout in fanouts:
            results.append(
                run_one(
                    name,
                    dataset,
                    fanout=fanout,
                    seed=seed,
                    transport=transport,
                    config=config,
                )
            )
    return results


def topology_sweep(
    dataset: Dataset,
    systems: Sequence[str],
    fanouts: Iterable[int],
    *,
    seed: int = 0,
) -> list[dict]:
    """Figure 4's data: overlay topology properties per (system, fanout).

    Runs each system, then inspects the clustering overlay its nodes
    converged to: LSCC fraction, weakly-connected component count and the
    average clustering coefficient (the §V-A numbers: ~0.15 for the WUP
    metric vs ~0.40 for cosine).
    """
    rows: list[dict] = []
    for name in systems:
        for fanout in fanouts:
            system = build_system(name, dataset, fanout=fanout, seed=seed)
            system.run()
            graph = overlay_graph(system.nodes)
            result = score_system(system, dataset, {"fanout": fanout})
            rows.append(
                {
                    "system": name,
                    "fanout": fanout,
                    "lscc": lscc_fraction(graph),
                    "components": weak_component_count(graph),
                    "clustering": average_clustering(graph),
                    "f1": result.f1,
                }
            )
    return rows


def ttl_sweep(
    dataset: Dataset,
    ttls: Iterable[int],
    *,
    f_like: int = 10,
    seed: int = 0,
) -> list[RunResult]:
    """Figure 5's data: WHATSUP quality as the dislike TTL varies."""
    results: list[RunResult] = []
    for ttl in ttls:
        cfg = WhatsUpConfig(f_like=f_like, beep_ttl=ttl)
        result = run_one("whatsup", dataset, seed=seed, config=cfg)
        result.params["beep_ttl"] = ttl
        results.append(result)
    return results


def best_result(results: Iterable[RunResult], system: str) -> RunResult:
    """The highest-F1 run of *system* (Table III's "best of each approach")."""
    candidates = [r for r in results if r.system == system]
    if not candidates:
        raise ValueError(f"no results for system {system!r}")
    return max(candidates, key=lambda r: r.f1)
