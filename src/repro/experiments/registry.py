"""The experiment registry: every paper table and figure, reproducible by id.

Each entry is a callable ``(scale, seed) -> ExperimentReport``.  The
benchmark suite (``benchmarks/``) wraps these one-to-one; the CLI
(``python -m repro run <id>``) invokes them directly.

See DESIGN.md §4 for the experiment ↔ module index.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core import WhatsUpConfig
from repro.experiments.dynamics import run_dynamics_experiment
from repro.experiments.factory import build_system
from repro.experiments.reporting import ExperimentReport, results_table, series_table
from repro.experiments.runner import run_one
from repro.experiments.scale import ScaleProfile
from repro.experiments.sweeps import (
    best_result,
    fanout_sweep,
    topology_sweep,
    ttl_sweep,
)
from repro.metrics.bandwidth import bandwidth_breakdown
from repro.metrics.dissemination import (
    dislike_counter_distribution,
    f1_vs_sociability,
    hops_breakdown,
    recall_vs_popularity,
)
from repro.network.transport import PlanetLabTransport, UniformLossTransport
from repro.utils.exceptions import ConfigurationError
from repro.utils.tables import format_distribution, format_table

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

ExperimentFn = Callable[[ScaleProfile, int], ExperimentReport]

_FIG3_SYSTEMS = ("cf-wup", "cf-cos", "whatsup", "whatsup-cos")


# --------------------------------------------------------------------- #
# Tables                                                                 #
# --------------------------------------------------------------------- #


def exp_table1(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Table I: summary of the workloads."""
    rows = []
    for name in ("synthetic", "digg", "survey"):
        ds = scale.dataset(name, seed)
        rows.append(ds.summary_row())
    text = format_table(
        ["Name", "Number of users", "Number of news"],
        rows,
        title=f"Table I (scale={scale.name})",
    )
    return ExperimentReport("table1", "Summary of the workloads", text, {"rows": rows})


def exp_table2(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Table II: WHATSUP parameters."""
    rows = WhatsUpConfig().table2_rows()
    text = format_table(
        ["Parameter", "Description", "value"], rows, title="Table II"
    )
    return ExperimentReport("table2", "WHATSUP parameters", text, {"rows": rows})


def exp_table3(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Table III: best operating point of each approach on the survey."""
    ds = scale.survey(seed)
    grid = scale.fanouts("survey")
    results = []
    results += fanout_sweep(ds, ("gossip",), [2, 3, 4, 6], seed=seed)
    results += fanout_sweep(ds, ("cf-wup", "cf-cos"), grid, seed=seed)
    results += fanout_sweep(ds, ("whatsup", "whatsup-cos"), grid, seed=seed)
    best = [
        best_result(results, name)
        for name in ("gossip", "cf-cos", "cf-wup", "whatsup-cos", "whatsup")
    ]
    text = results_table(
        best, title=f"Table III: best performance of each approach (scale={scale.name})"
    )
    return ExperimentReport(
        "table3",
        "Survey: best performance of each approach",
        text,
        {
            "best": {r.system: r.table_row() for r in best},
            "all": [r.table_row() for r in results],
        },
    )


def exp_table4(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Table IV: news received and liked via dislike forwards.

    The dislike path's contribution depends on the fanout *relative to the
    population*: the reduced scales use a proportionally reduced fanout so
    the like-path coverage ratio matches the paper's 480-user deployment.
    """
    ds = scale.survey(seed)
    fanout = 10 if scale.name == "paper" else 5
    system = build_system("whatsup", ds, fanout=fanout, seed=seed)
    system.run()
    dist = dislike_counter_distribution(system.log, max_ttl=4)
    text = format_distribution(
        dist,
        title=f"Table IV: dislike counter at liked receptions (scale={scale.name})",
    )
    return ExperimentReport(
        "table4", "News received and liked via dislike", text, {"distribution": dist}
    )


def exp_table5(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Table V: WHATSUP vs Cascading (Digg) and vs C-Pub/Sub (survey)."""
    rows = []
    data = {}
    digg = scale.digg(seed)
    for name in ("cascade", "whatsup"):
        r = run_one(name, digg, fanout=None if name == "cascade" else 10, seed=seed)
        rows.append(("Digg", r.system, r.precision, r.recall, r.f1, r.item_messages))
        data[f"digg/{r.system}"] = (r.precision, r.recall, r.f1, r.item_messages)
    survey = scale.survey(seed)
    for name in ("c-pubsub", "whatsup"):
        r = run_one(name, survey, fanout=None if name == "c-pubsub" else 10, seed=seed)
        rows.append(("Survey", r.system, r.precision, r.recall, r.f1, r.item_messages))
        data[f"survey/{r.system}"] = (r.precision, r.recall, r.f1, r.item_messages)
    text = format_table(
        ["Dataset", "Approach", "Precision", "Recall", "F1-Score", "Messages"],
        rows,
        title=f"Table V (scale={scale.name})",
    )
    return ExperimentReport(
        "table5", "WHATSUP vs C-Pub/Sub and Cascading", text, data
    )


def exp_table6(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Table VI: performance versus message-loss rate (ModelNet)."""
    ds = scale.survey(seed)
    loss_rates = (0.0, 0.05, 0.20, 0.50)
    fanouts = (3, 6)
    recall_rows = []
    precision_rows = []
    data = {}
    for fanout in fanouts:
        rr: list = [f"f={fanout}"]
        pr: list = [f"f={fanout}"]
        for loss in loss_rates:
            r = run_one(
                "whatsup",
                ds,
                fanout=fanout,
                seed=seed,
                transport=UniformLossTransport(loss),
            )
            rr.append(r.recall)
            pr.append(r.precision)
            data[(fanout, loss)] = (r.precision, r.recall, r.f1)
        recall_rows.append(rr)
        precision_rows.append(pr)
    headers = ["Fanout", *[f"loss={int(100 * l)}%" for l in loss_rates]]
    text = (
        format_table(
            headers, recall_rows, title=f"Table VI — Recall (scale={scale.name})"
        )
        + "\n\n"
        + format_table(headers, precision_rows, title="Table VI — Precision")
    )
    return ExperimentReport(
        "table6", "Performance versus message-loss rate", text, {"cells": data}
    )


# --------------------------------------------------------------------- #
# Figures                                                                #
# --------------------------------------------------------------------- #


def _fig3(dataset_name: str, scale: ScaleProfile, seed: int) -> ExperimentReport:
    ds = scale.dataset(dataset_name, seed)
    fanouts = scale.fanouts(dataset_name)
    results = fanout_sweep(ds, _FIG3_SYSTEMS, fanouts, seed=seed)
    f1_cols = {
        name: [r.f1 for r in results if r.system == name]
        for name in _FIG3_SYSTEMS
    }
    msg_cols = {}
    for name in _FIG3_SYSTEMS:
        sysrows = [r for r in results if r.system == name]
        msg_cols[name] = [
            (r.messages_per_user_per_cycle, r.f1) for r in sysrows
        ]
    text = series_table(
        "fanout",
        list(fanouts),
        f1_cols,
        title=f"Figure 3 ({dataset_name}): F1-Score vs fanout (scale={scale.name})",
    )
    msg_lines = ["", f"Figure 3 ({dataset_name}): F1-Score vs messages/cycle/node"]
    for name, pairs in msg_cols.items():
        series = "  ".join(f"({m:.2f}, {f:.3f})" for m, f in pairs)
        msg_lines.append(f"  {name:12s} {series}")
    return ExperimentReport(
        f"fig3-{dataset_name}",
        f"F1-Score vs fanout and message cost ({dataset_name})",
        text + "\n" + "\n".join(msg_lines),
        {"f1_vs_fanout": f1_cols, "f1_vs_messages": msg_cols, "fanouts": list(fanouts)},
    )


def exp_fig3_synthetic(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figures 3a/3d."""
    return _fig3("synthetic", scale, seed)


def exp_fig3_digg(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figures 3b/3e."""
    return _fig3("digg", scale, seed)


def exp_fig3_survey(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figures 3c/3f."""
    return _fig3("survey", scale, seed)


def exp_fig4(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 4: LSCC fraction vs fanout (plus §V-A topology numbers)."""
    ds = scale.survey(seed)
    fanouts = tuple(f for f in scale.fanouts("survey") if f <= 14)
    rows = topology_sweep(ds, _FIG3_SYSTEMS, fanouts, seed=seed)
    cols: dict[str, list[float]] = {}
    comp_cols: dict[str, list[float]] = {}
    clus_cols: dict[str, list[float]] = {}
    for name in _FIG3_SYSTEMS:
        sysrows = [r for r in rows if r["system"] == name]
        cols[name] = [r["lscc"] for r in sysrows]
        comp_cols[name] = [float(r["components"]) for r in sysrows]
        clus_cols[name] = [r["clustering"] for r in sysrows]
    text = (
        series_table(
            "fanout",
            list(fanouts),
            cols,
            title=f"Figure 4: LSCC fraction (scale={scale.name})",
        )
        + "\n\n"
        + series_table(
            "fanout",
            list(fanouts),
            comp_cols,
            title="Weakly connected components",
            float_fmt=".1f",
        )
        + "\n\n"
        + series_table(
            "fanout",
            list(fanouts),
            clus_cols,
            title="Average clustering coefficient (§V-A)",
        )
    )
    return ExperimentReport(
        "fig4", "Size of the LSCC depending on the approach", text, {"rows": rows}
    )


def exp_fig5(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 5: impact of the dislike TTL."""
    ds = scale.survey(seed)
    ttls = (0, 1, 2, 4, 6, 8)
    results = ttl_sweep(ds, ttls, f_like=10, seed=seed)
    text = series_table(
        "TTL",
        list(ttls),
        {
            "Precision": [r.precision for r in results],
            "Recall": [r.recall for r in results],
            "F1-Score": [r.f1 for r in results],
        },
        title=f"Figure 5: impact of the BEEP TTL (scale={scale.name})",
    )
    return ExperimentReport(
        "fig5",
        "Impact of the dislike feature of BEEP",
        text,
        {
            "ttls": ttls,
            "f1": [r.f1 for r in results],
            "recall": [r.recall for r in results],
        },
    )


def exp_fig6(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 6: dissemination actions by hop distance (fLIKE = 5)."""
    ds = scale.survey(seed)
    system = build_system("whatsup", ds, fanout=5, seed=seed)
    system.run()
    hb = hops_breakdown(system.log)
    hops = list(range(min(hb.max_hops, 30) + 1))
    text = series_table(
        "hops",
        hops,
        {
            "Forward by like": [int(hb.forwards_by_like[h]) for h in hops],
            "Infection by like": [int(hb.infections_by_like[h]) for h in hops],
            "Forward by dislike": [int(hb.forwards_by_dislike[h]) for h in hops],
            "Infection by dislike": [int(hb.infections_by_dislike[h]) for h in hops],
        },
        title=f"Figure 6: impact of amplification (fLIKE=5, scale={scale.name})",
        float_fmt=".0f",
    )
    text += f"\nmean infection hop distance: {hb.mean_infection_hops():.2f}"
    return ExperimentReport(
        "fig6",
        "Impact of amplification of BEEP",
        text,
        {
            "mean_hops": hb.mean_infection_hops(),
            "forwards_by_like": hb.forwards_by_like.tolist(),
            "forwards_by_dislike": hb.forwards_by_dislike.tolist(),
            "infections_by_like": hb.infections_by_like.tolist(),
            "infections_by_dislike": hb.infections_by_dislike.tolist(),
        },
    )


def exp_fig7(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 7: cold start and interest dynamics, WUP metric vs cosine."""
    traces = {}
    for metric in ("wup", "cosine"):
        traces[metric] = run_dynamics_experiment(metric_name=metric, seed=seed)
    lines = []
    data = {}
    for metric, tr in traces.items():
        join_c = tr.convergence_cycle()
        change_c = tr.change_convergence_cycle()
        data[metric] = {
            "join_convergence": join_c,
            "change_convergence": change_c,
        }
        lines.append(
            f"  {metric:7s} joining-node convergence: "
            f"{join_c if join_c is not None else '>not reached'} cycles; "
            f"interest-change convergence: "
            f"{change_c if change_c is not None else '>not reached'} cycles"
        )
    # Figure 7c: joiner reception right after joining (wup metric)
    tr = traces["wup"]
    t0 = tr.intervention_cycle
    window = range(t0, t0 + 40, 5)
    recv = [
        sum(tr.joiner_liked_per_cycle.get(c + d, 0) for d in range(5))
        for c in window
    ]
    ref_recv = [
        sum(tr.reference_liked_per_cycle.get(c + d, 0) for d in range(5))
        for c in window
    ]
    text = "Figure 7: view convergence after join / interest change\n" + "\n".join(
        lines
    )
    text += "\n\nFigure 7c (wup): liked news received per 5-cycle bucket after join\n"
    text += series_table(
        "cycle",
        list(window),
        {
            "joining node": [float(x) for x in recv],
            "reference node": [float(x) for x in ref_recv],
        },
        float_fmt=".0f",
    )
    data["joiner_reception"] = recv
    return ExperimentReport("fig7", "Cold start and dynamics", text, data)


def exp_fig8(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 8: simulation vs ModelNet vs PlanetLab + bandwidth."""
    ds = scale.survey(seed)
    fanouts = tuple(f for f in scale.fanouts("survey") if f <= 12)
    transports = {
        "Simulation": None,
        "ModelNet": UniformLossTransport(0.05),
        "PlanetLab": PlanetLabTransport(),
    }
    f1_cols: dict[str, list[float]] = {}
    recall_small_fanout = {}
    for label, transport in transports.items():
        series = []
        for fanout in fanouts:
            r = run_one("whatsup", ds, fanout=fanout, seed=seed, transport=transport)
            series.append(r.f1)
            if fanout == min(fanouts):
                recall_small_fanout[label] = r.recall
        f1_cols[label] = series
    text = series_table(
        "fanout",
        list(fanouts),
        f1_cols,
        title=f"Figure 8a: F1-Score by deployment setting (scale={scale.name})",
    )

    # Figure 8b: bandwidth split on the lossless setting
    bw_rows = []
    cfg = WhatsUpConfig()
    for fanout in fanouts:
        system = build_system("whatsup", ds, fanout=fanout, seed=seed)
        system.run()
        bw = bandwidth_breakdown(
            system.stats,
            ds.n_users,
            system.engine.cycles_run,
            cfg.cycle_seconds,
        )
        bw_rows.append((fanout, bw.total_kbps, bw.wup_kbps, bw.beep_kbps))
    text += "\n\n" + format_table(
        ["Fanout", "Total Kbps", "WUP Kbps", "BEEP Kbps"],
        bw_rows,
        title="Figure 8b: bandwidth per node (30 s cycles)",
    )
    return ExperimentReport(
        "fig8",
        "Implementation: bandwidth and performance",
        text,
        {
            "f1": f1_cols,
            "fanouts": list(fanouts),
            "bandwidth": bw_rows,
            "recall_at_min_fanout": recall_small_fanout,
        },
    )


def exp_fig9(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 9: centralized vs decentralized."""
    ds = scale.survey(seed)
    fanouts = scale.fanouts("survey")
    cols: dict[str, list[float]] = {}
    prec: dict[str, list[float]] = {}
    rec: dict[str, list[float]] = {}
    for name in ("c-whatsup", "whatsup", "whatsup-cos"):
        rows = [run_one(name, ds, fanout=f, seed=seed) for f in fanouts]
        key = {
            "c-whatsup": "Centralized",
            "whatsup": "WhatsUp",
            "whatsup-cos": "WhatsUp-Cos",
        }[name]
        cols[key] = [r.f1 for r in rows]
        prec[key] = [r.precision for r in rows]
        rec[key] = [r.recall for r in rows]
    text = series_table(
        "fanout", list(fanouts), cols,
        title=f"Figure 9: centralized vs decentralized, F1 (scale={scale.name})",
    )
    text += "\n\n" + series_table("fanout", list(fanouts), prec, title="Precision")
    text += "\n\n" + series_table("fanout", list(fanouts), rec, title="Recall")
    return ExperimentReport(
        "fig9",
        "Centralized vs decentralized",
        text,
        {"f1": cols, "precision": prec, "recall": rec, "fanouts": list(fanouts)},
    )


def exp_fig10(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 10: recall vs item popularity."""
    ds = scale.survey(seed)
    cols = {}
    for name in ("whatsup", "cf-wup"):
        system = build_system(name, ds, fanout=10, seed=seed)
        system.run()
        centres, mean_recall, fraction = recall_vs_popularity(
            system.reached_matrix(), ds.likes
        )
        cols[name] = mean_recall.tolist()
    text = series_table(
        "popularity",
        [round(c, 2) for c in centres],
        {
            "WhatsUp recall": cols["whatsup"],
            "CF-WUP recall": cols["cf-wup"],
            "item fraction": fraction.tolist(),
        },
        title=f"Figure 10: recall vs popularity (scale={scale.name})",
    )
    return ExperimentReport(
        "fig10",
        "Recall vs popularity",
        text,
        {"centres": centres.tolist(), "recall": cols, "fraction": fraction.tolist()},
    )


def exp_fig11(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Figure 11: F1-Score vs user sociability."""
    ds = scale.survey(seed)
    system = build_system("whatsup", ds, fanout=10, seed=seed)
    system.run()
    centres, mean_f1, fraction = f1_vs_sociability(
        system.reached_matrix(), ds.likes, k=15
    )
    text = series_table(
        "sociability",
        [round(c, 2) for c in centres],
        {"F1-Score": mean_f1.tolist(), "node fraction": fraction.tolist()},
        title=f"Figure 11: F1 vs sociability (scale={scale.name})",
    )
    # correlation between sociability and F1 across populated bins
    mask = ~np.isnan(mean_f1) & (fraction > 0)
    corr = (
        float(np.corrcoef(centres[mask], mean_f1[mask])[0, 1])
        if mask.sum() > 2
        else float("nan")
    )
    text += f"\nsociability/F1 correlation over bins: {corr:.3f}"
    return ExperimentReport(
        "fig11",
        "F1-Score vs sociability",
        text,
        {
            "centres": centres.tolist(),
            "f1": mean_f1.tolist(),
            "fraction": fraction.tolist(),
            "correlation": corr,
        },
    )


# --------------------------------------------------------------------- #
# Registry                                                               #
# --------------------------------------------------------------------- #

EXPERIMENTS: dict[str, ExperimentFn] = {
    "table1": exp_table1,
    "table2": exp_table2,
    "table3": exp_table3,
    "table4": exp_table4,
    "table5": exp_table5,
    "table6": exp_table6,
    "fig3-synthetic": exp_fig3_synthetic,
    "fig3-digg": exp_fig3_digg,
    "fig3-survey": exp_fig3_survey,
    "fig4": exp_fig4,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10": exp_fig10,
    "fig11": exp_fig11,
}


def get_experiment(exp_id: str) -> ExperimentFn:
    """Look up an experiment by id."""
    try:
        return EXPERIMENTS[exp_id.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(
    exp_id: str,
    scale: ScaleProfile,
    seed: int = 1,
    run_config=None,
) -> ExperimentReport:
    """Run one registered experiment.

    *run_config* (a :class:`repro.api.RunConfig`) pins the pipeline gate
    matrix for the whole run — the experiment body builds and runs its
    systems under ``run_config.apply()``.
    """
    fn = get_experiment(exp_id)
    if run_config is None:
        return fn(scale, seed)
    with run_config.apply():
        return fn(scale, seed)
