"""Extension experiments beyond the paper's printed evaluation.

* ``ext-churn`` — the robustness-to-churn claim (§I: gossip's "simplicity
  of deployment and robustness") quantified: F1 under increasing
  crash/rejoin churn;
* ``ext-privacy`` — the §VII future-work mechanisms: randomized-response
  profile obfuscation (accuracy vs disclosure) and onion-routed exchanges
  (unchanged accuracy, multiplied bandwidth).
"""

from __future__ import annotations

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scale import ScaleProfile
from repro.metrics.retrieval import evaluate_dissemination
from repro.privacy import OnionRoutedTransport, obfuscated_whatsup_system
from repro.simulation.churn import ChurnModel
from repro.utils.tables import format_table

__all__ = [
    "exp_ext_churn",
    "exp_ext_privacy",
    "exp_ext_latency",
    "exp_ext_drift",
    "exp_shard_outage",
]


def exp_ext_churn(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """F1 under node churn (crash + rejoin)."""
    ds = scale.survey(seed)
    config = WhatsUpConfig(f_like=8)
    rows = []
    for kill_rate, rejoin in (
        (0.0, None),
        (0.01, 5),
        (0.03, 5),
        (0.05, 5),
        (0.03, None),
    ):
        churn = (
            ChurnModel(kill_rate=kill_rate, rejoin_after=rejoin, start_cycle=5)
            if kill_rate > 0
            else None
        )
        system = WhatsUpSystem(ds, config, seed=seed, churn=churn)
        system.run()
        scores = evaluate_dissemination(system.reached_matrix(), ds.likes)
        label = (
            "no churn"
            if churn is None
            else (
                f"{kill_rate:.0%}/cycle, "
                f"rejoin={'never' if rejoin is None else rejoin}"
            )
        )
        kills = churn.total_kills if churn else 0
        rows.append((label, kills, scores.precision, scores.recall, scores.f1))
    text = format_table(
        ["Churn", "Kills", "Precision", "Recall", "F1-Score"],
        rows,
        title=f"Extension: churn robustness (fLIKE=8, scale={scale.name})",
    )
    return ExperimentReport(
        "ext-churn", "Robustness under churn", text, {"rows": rows}
    )


def exp_ext_privacy(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Privacy mechanisms: obfuscation and onion routing (§VII)."""
    ds = scale.survey(seed)
    config = WhatsUpConfig(f_like=8)
    rows = []

    baseline = WhatsUpSystem(ds, config, seed=seed)
    baseline.run()
    base = evaluate_dissemination(baseline.reached_matrix(), ds.likes)
    rows.append(("no privacy", base.precision, base.recall, base.f1, 1.0))

    for flip, suppress in ((0.05, 0.1), (0.15, 0.3), (0.3, 0.5)):
        system = obfuscated_whatsup_system(
            ds, config, flip=flip, suppress=suppress, seed=seed
        )
        system.run()
        s = evaluate_dissemination(system.reached_matrix(), ds.likes)
        rows.append(
            (
                f"obfuscation flip={flip} suppress={suppress}",
                s.precision,
                s.recall,
                s.f1,
                1.0,
            )
        )

    onion = OnionRoutedTransport(extra_hops=2)
    system = WhatsUpSystem(ds, config, seed=seed, transport=onion)
    system.run()
    s = evaluate_dissemination(system.reached_matrix(), ds.likes)
    rows.append(
        (
            "onion routing, 2 relays",
            s.precision,
            s.recall,
            s.f1,
            onion.bandwidth_multiplier(1024),
        )
    )

    text = format_table(
        ["Mechanism", "Precision", "Recall", "F1-Score", "BW multiplier"],
        rows,
        title=f"Extension: privacy mechanisms (fLIKE=8, scale={scale.name})",
    )
    return ExperimentReport(
        "ext-privacy", "Privacy mechanisms (§VII)", text, {"rows": rows}
    )


def exp_ext_latency(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Dissemination latency (the paper's footnote-1 future work).

    Compares how fast liked news reaches its audience under WHATSUP,
    plain CF and homogeneous gossip at equal fanout, on the one-hop-per-
    cycle model and under a heterogeneous-delay network
    (:class:`~repro.network.transport.LatencyTransport` with a slow-node
    tail).
    """
    import numpy as np

    from repro.experiments.factory import build_system
    from repro.metrics.retrieval import evaluate_dissemination
    from repro.metrics.temporal import latency_summary, time_to_audience
    from repro.network.transport import LatencyTransport

    ds = scale.survey(seed)
    pub = np.array([it.created_at for it in ds.items])
    rows = []
    for label, name, transport in (
        ("whatsup", "whatsup", None),
        ("cf-wup", "cf-wup", None),
        ("gossip", "gossip", None),
        (
            "whatsup (slow links)",
            "whatsup",
            LatencyTransport(tail=0.5, slow_fraction=0.2),
        ),
    ):
        system = build_system(name, ds, fanout=8, seed=seed, transport=transport)
        system.run()
        summary = latency_summary(system.log, pub, liked_only=True)
        tta = time_to_audience(system.log, pub, ds.n_items, fraction=0.9)
        scores = evaluate_dissemination(system.reached_matrix(), ds.likes)
        rows.append(
            (
                label,
                summary.mean,
                summary.median,
                summary.p90,
                float(tta.mean()),
                scores.f1,
            )
        )
    text = format_table(
        [
            "System",
            "Mean lat.",
            "Median",
            "p90",
            "Mean t-to-90% audience",
            "F1-Score",
        ],
        rows,
        title=(
            f"Extension: dissemination latency in cycles "
            f"(fanout=8, scale={scale.name})"
        ),
        float_fmt=".2f",
    )
    return ExperimentReport(
        "ext-latency", "Dissemination latency (footnote 1)", text, {"rows": rows}
    )


def exp_ext_drift(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Profile-window trade-off under interest drift (§II-E / §IV-D).

    On a static workload, longer windows only help; under drift the paper's
    claimed trade-off appears: short windows lose CF signal, long windows
    keep stale opinions.  This experiment sweeps the window on the drifting
    survey workload.
    """
    from repro.datasets.drift import drifting_survey_dataset
    from repro.experiments.factory import build_system
    from repro.metrics.retrieval import evaluate_dissemination

    ds = drifting_survey_dataset(
        n_base_users=max(60, scale.survey_base_users // 2),
        n_base_items=240,
        n_phases=3,
        drift=0.6,
        publish_cycles=90,
        seed=seed,
    )
    rows = []
    for window in (4, 9, 18, 36, 72):
        cfg = WhatsUpConfig(f_like=8, profile_window=window)
        system = build_system("whatsup", ds, seed=seed, config=cfg)
        system.run()
        scores = evaluate_dissemination(system.reached_matrix(), ds.likes)
        rows.append(
            (
                f"{window} cycles ({window / 90:.2f} of run)",
                scores.precision,
                scores.recall,
                scores.f1,
            )
        )
    text = format_table(
        ["Profile window", "Precision", "Recall", "F1-Score"],
        rows,
        title=f"Extension: window sweep under interest drift (scale={scale.name})",
    )
    return ExperimentReport(
        "ext-drift",
        "Profile window under interest drift",
        text,
        {"rows": rows, "windows": [4, 9, 18, 36, 72]},
    )


def exp_shard_outage(scale: ScaleProfile, seed: int) -> ExperimentReport:
    """Dissemination under a correlated, shard-aligned outage.

    The sharded runtime partitions the population ``node_id % N``; a
    failure domain (one host, one container) therefore takes out exactly
    one residue class.  Unlike the independent crashes of ``ext-churn``,
    such an outage is *correlated*: a quarter of every neighbourhood
    disappears at once, and every view in the system is hit
    simultaneously.  This experiment quantifies what the paper's
    robustness claim (§I) buys under that adversarial pattern — delivery
    volume and recall with and without the outage, for two outage widths
    and two failure points.
    """
    from repro.simulation.churn import CorrelatedOutageChurn

    ds = scale.survey(seed)
    config = WhatsUpConfig(f_like=8)
    publish = ds.publish_cycles
    start = max(2, publish // 3)
    down = max(4, publish // 3)
    rows = []
    for label, churn in (
        ("no outage", None),
        (
            f"1/4 of nodes down {down} cycles",
            CorrelatedOutageChurn(
                4, target_class=1, start_cycle=start, down_for=down
            ),
        ),
        (
            f"1/2 of nodes down {down} cycles",
            CorrelatedOutageChurn(
                2, target_class=1, start_cycle=start, down_for=down
            ),
        ),
        (
            "1/4 of nodes down, never rejoin",
            CorrelatedOutageChurn(
                4, target_class=1, start_cycle=start, down_for=10 * publish
            ),
        ),
    ):
        system = WhatsUpSystem(ds, config, seed=seed, churn=churn)
        system.run()
        scores = evaluate_dissemination(system.reached_matrix(), ds.likes)
        rows.append(
            (
                label,
                churn.total_kills if churn else 0,
                round(system.stats.messages_per_user(ds.n_users), 2),
                scores.precision,
                scores.recall,
                scores.f1,
            )
        )
    text = format_table(
        ["Outage", "Killed", "Mess./User", "Precision", "Recall", "F1-Score"],
        rows,
        title=(
            "Extension: correlated shard-aligned outage "
            f"(fLIKE=8, scale={scale.name})"
        ),
    )
    return ExperimentReport(
        "shard-outage",
        "Correlated shard-aligned outage",
        text,
        {"rows": rows, "start_cycle": start, "down_for": down},
    )
