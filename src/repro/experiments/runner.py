"""Run systems and collect :class:`~repro.experiments.results.RunResult`."""

from __future__ import annotations

import time

from repro.datasets.base import Dataset
from repro.experiments.factory import build_system
from repro.experiments.results import RunResult
from repro.metrics.retrieval import evaluate_dissemination
from repro.network.transport import Transport

__all__ = ["score_system", "run_one"]


def score_system(system, dataset: Dataset, params: dict | None = None) -> RunResult:
    """Evaluate an already-run system into a :class:`RunResult`."""
    reached = system.reached_matrix()
    scores = evaluate_dissemination(reached, dataset.likes)
    result = RunResult(
        system=system.system_name,
        dataset=dataset.name,
        params=dict(params or {}),
        scores=scores,
    )
    stats = getattr(system, "stats", None)
    engine = getattr(system, "engine", None)
    if stats is not None and engine is not None:
        n = dataset.n_users
        cycles = engine.cycles_run
        result.item_messages = stats.item_messages()
        result.messages_per_user = stats.messages_per_user(n)
        result.messages_per_user_per_cycle = stats.messages_per_user_per_cycle(
            n, cycles
        )
        result.gossip_messages = stats.gossip_messages()
        result.duplicates = system.log.duplicates
        result.cycles = cycles
    else:
        # closed-form systems (C-Pub/Sub)
        total = getattr(system, "total_messages", 0)
        result.item_messages = int(total)
        result.messages_per_user = total / dataset.n_users
    return result


def run_one(
    name: str,
    dataset: Dataset,
    *,
    fanout: int | None = None,
    seed: int = 0,
    transport: Transport | None = None,
    config=None,
    cycles: int | None = None,
) -> RunResult:
    """Build, run and score one system; wall time included."""
    system = build_system(
        name, dataset, fanout=fanout, seed=seed, transport=transport, config=config
    )
    start = time.perf_counter()
    system.run(cycles)
    elapsed = time.perf_counter() - start
    params: dict = {}
    if fanout is not None:
        params["fanout"] = fanout
    result = score_system(system, dataset, params)
    result.wall_seconds = elapsed
    return result
