"""Structured results of experiment runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.retrieval import RetrievalScores

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one (system × dataset × parameters) run.

    Carries exactly the quantities the paper reports in its tables and
    figure series; heavyweight objects (logs, matrices) stay with the
    caller.
    """

    system: str
    dataset: str
    params: dict = field(default_factory=dict)
    scores: RetrievalScores = field(
        default_factory=lambda: RetrievalScores(0.0, 0.0, 0.0)
    )
    item_messages: int = 0
    messages_per_user: float = 0.0
    messages_per_user_per_cycle: float = 0.0
    gossip_messages: int = 0
    duplicates: int = 0
    cycles: int = 0
    wall_seconds: float = 0.0

    @property
    def precision(self) -> float:
        return self.scores.precision

    @property
    def recall(self) -> float:
        return self.scores.recall

    @property
    def f1(self) -> float:
        return self.scores.f1

    def label(self) -> str:
        """Short human-readable run label, e.g. ``whatsup(f_like=10)``."""
        if not self.params:
            return self.system
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.system}({inner})"

    def table_row(self) -> tuple:
        """The Table III-style row: label, P, R, F1, messages/user."""
        return (
            self.label(),
            self.precision,
            self.recall,
            self.f1,
            self.messages_per_user,
        )
