"""Experiment scale profiles.

Paper-scale runs (3180 users × 2520 items) are supported but take long in
pure Python, so every experiment accepts a scale profile:

* ``small`` (default) — ~4-6× reduced populations; minutes for the full
  benchmark suite; the reproduction target is the *shape* of each result;
* ``medium`` — ~2× reduced;
* ``paper`` — the paper's Table I dimensions.

Select via the ``REPRO_SCALE`` environment variable or explicitly in code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gates import env_raw
from repro.datasets import digg_dataset, survey_dataset, synthetic_dataset
from repro.datasets.base import Dataset
from repro.utils.exceptions import ConfigurationError

__all__ = ["ScaleProfile", "get_scale", "SCALES"]


@dataclass(frozen=True)
class ScaleProfile:
    """Dataset dimensions for one scale level."""

    name: str
    # survey
    survey_base_users: int
    survey_base_items: int
    survey_replication: int
    # synthetic
    synthetic_users: int
    synthetic_items_per_community: int
    # digg
    digg_users: int
    digg_items: int
    # shared
    publish_cycles: int
    # sweep grids (reduced scale → reduced sweep density)
    fanouts_survey: tuple[int, ...]
    fanouts_synthetic: tuple[int, ...]
    fanouts_digg: tuple[int, ...]
    #: largest/smallest community ratio — the paper's Arxiv spread is ~33,
    #: but at reduced populations that would leave the smallest communities
    #: below the fanout, so reduced scales flatten the spectrum
    synthetic_size_ratio: float = 33.0

    def survey(self, seed: int = 1) -> Dataset:
        """The survey workload at this scale."""
        return survey_dataset(
            n_base_users=self.survey_base_users,
            n_base_items=self.survey_base_items,
            replication=self.survey_replication,
            publish_cycles=self.publish_cycles,
            seed=seed,
        )

    def synthetic(self, seed: int = 1) -> Dataset:
        """The synthetic community workload at this scale."""
        return synthetic_dataset(
            n_users=self.synthetic_users,
            items_per_community=self.synthetic_items_per_community,
            size_ratio=self.synthetic_size_ratio,
            publish_cycles=self.publish_cycles,
            seed=seed,
        )

    def digg(self, seed: int = 1) -> Dataset:
        """The Digg-like workload at this scale."""
        return digg_dataset(
            n_users=self.digg_users,
            n_items=self.digg_items,
            publish_cycles=self.publish_cycles,
            seed=seed,
        )

    def dataset(self, name: str, seed: int = 1) -> Dataset:
        """Workload by name: ``survey`` / ``synthetic`` / ``digg``."""
        try:
            return {
                "survey": self.survey,
                "synthetic": self.synthetic,
                "digg": self.digg,
            }[name.lower()](seed)
        except KeyError:
            raise ConfigurationError(
                f"unknown dataset {name!r}; available: survey, synthetic, digg"
            ) from None

    def fanouts(self, dataset_name: str) -> tuple[int, ...]:
        """The Figure 3 fanout grid for a workload at this scale."""
        return {
            "survey": self.fanouts_survey,
            "synthetic": self.fanouts_synthetic,
            "digg": self.fanouts_digg,
        }[dataset_name.lower()]


SCALES: dict[str, ScaleProfile] = {
    "small": ScaleProfile(
        name="small",
        survey_base_users=120,
        survey_base_items=150,
        survey_replication=1,
        synthetic_users=420,
        synthetic_items_per_community=8,
        digg_users=150,
        digg_items=300,
        publish_cycles=40,
        fanouts_survey=(2, 3, 5, 7, 10, 14),
        fanouts_synthetic=(2, 3, 5, 7, 10, 14),
        fanouts_digg=(2, 3, 5, 7, 10),
        synthetic_size_ratio=8.0,
    ),
    "medium": ScaleProfile(
        name="medium",
        survey_base_users=120,
        survey_base_items=250,
        survey_replication=2,
        synthetic_users=1000,
        synthetic_items_per_community=30,
        digg_users=375,
        digg_items=1000,
        publish_cycles=50,
        fanouts_survey=(2, 3, 5, 8, 12, 16, 20),
        fanouts_synthetic=(2, 5, 8, 12, 16, 24),
        fanouts_digg=(2, 4, 6, 10, 14),
        synthetic_size_ratio=16.0,
    ),
    "paper": ScaleProfile(
        name="paper",
        survey_base_users=120,
        survey_base_items=250,
        survey_replication=4,
        synthetic_users=3180,
        synthetic_items_per_community=120,
        digg_users=750,
        digg_items=2500,
        publish_cycles=65,
        fanouts_survey=(2, 5, 10, 15, 20, 25, 30),
        fanouts_synthetic=(5, 10, 15, 20, 30, 45),
        fanouts_digg=(2, 5, 10, 15, 20, 25),
    ),
}


def get_scale(name: str | None = None) -> ScaleProfile:
    """Resolve a scale profile.

    Order of precedence: explicit *name* argument, the ``REPRO_SCALE``
    environment variable, then ``small``.
    """
    if name is None:
        name = env_raw("REPRO_SCALE", "small")
    try:
        return SCALES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None
