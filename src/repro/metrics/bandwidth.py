"""Bandwidth accounting (paper Figure 8b, Section V-F).

The paper's prototype measures consumed bandwidth per node; Figure 8b splits
it into BEEP (news dissemination) and WUP (view management, i.e. RPS +
clustering gossip) and shows BEEP dominating and growing linearly with the
fanout while WUP stays nearly flat.

Our simulation models every message's serialized size (see
``repro.core.news`` and ``repro.gossip.views``), so the same split falls out
of the traffic statistics given a cycle duration (30 s in the paper's
deployment experiments, ~5 min in the long-running prototype).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.message import MessageKind
from repro.network.stats import TrafficStats

__all__ = ["BandwidthBreakdown", "bandwidth_breakdown"]


@dataclass(frozen=True)
class BandwidthBreakdown:
    """Average per-node consumed bandwidth, in Kbps."""

    total_kbps: float
    beep_kbps: float
    wup_kbps: float  # view management: RPS + clustering gossip

    def as_row(self) -> tuple[float, float, float]:
        return (self.total_kbps, self.wup_kbps, self.beep_kbps)


def bandwidth_breakdown(
    stats: TrafficStats,
    n_nodes: int,
    n_cycles: int,
    cycle_seconds: float,
) -> BandwidthBreakdown:
    """Split delivered bytes into the paper's Total / WUP / BEEP series."""
    beep = stats.bandwidth_kbps(n_nodes, n_cycles, cycle_seconds, MessageKind.ITEM)
    rps = stats.bandwidth_kbps(n_nodes, n_cycles, cycle_seconds, MessageKind.RPS)
    wup = stats.bandwidth_kbps(n_nodes, n_cycles, cycle_seconds, MessageKind.WUP)
    return BandwidthBreakdown(
        total_kbps=beep + rps + wup,
        beep_kbps=beep,
        wup_kbps=rps + wup,
    )
