"""Evaluation metrics (paper Section IV-C and the Section V analyses).

* :mod:`repro.metrics.retrieval` — precision / recall / F1 (micro,
  per-item, per-user);
* :mod:`repro.metrics.graph` — overlay topology: LSCC fraction (Fig. 4),
  clustering coefficient, fragmentation, hub concentration (§V-A);
* :mod:`repro.metrics.dissemination` — dislike-counter distribution
  (Table IV), hop breakdowns (Fig. 6), popularity (Fig. 10) and
  sociability (Fig. 11) analyses;
* :mod:`repro.metrics.bandwidth` — per-protocol Kbps split (Fig. 8b).
"""

from repro.metrics.bandwidth import BandwidthBreakdown, bandwidth_breakdown
from repro.metrics.dissemination import (
    HopsBreakdown,
    dislike_counter_distribution,
    f1_vs_sociability,
    hops_breakdown,
    recall_vs_popularity,
    sociability,
)
from repro.metrics.graph import (
    average_clustering,
    in_degree_concentration,
    lscc_fraction,
    overlay_graph,
    weak_component_count,
)
from repro.metrics.temporal import (
    LatencySummary,
    delivery_latencies,
    latency_summary,
    time_to_audience,
)
from repro.metrics.retrieval import (
    RetrievalScores,
    evaluate_dissemination,
    per_item_scores,
    per_user_scores,
)

__all__ = [
    "BandwidthBreakdown",
    "bandwidth_breakdown",
    "HopsBreakdown",
    "dislike_counter_distribution",
    "f1_vs_sociability",
    "hops_breakdown",
    "recall_vs_popularity",
    "sociability",
    "average_clustering",
    "in_degree_concentration",
    "lscc_fraction",
    "overlay_graph",
    "weak_component_count",
    "LatencySummary",
    "delivery_latencies",
    "latency_summary",
    "time_to_audience",
    "RetrievalScores",
    "evaluate_dissemination",
    "per_item_scores",
    "per_user_scores",
]
