"""Dissemination-path analyses (paper Tables IV, Figures 6, 10, 11).

All functions consume the engine's :class:`~repro.simulation.events.DisseminationLog`
(plus the workload's ground truth) after a run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.similarity import similarity_matrix
from repro.metrics.retrieval import per_user_scores
from repro.simulation.events import DisseminationLog

__all__ = [
    "dislike_counter_distribution",
    "HopsBreakdown",
    "hops_breakdown",
    "recall_vs_popularity",
    "sociability",
    "f1_vs_sociability",
]


def dislike_counter_distribution(
    log: DisseminationLog, max_ttl: int = 4
) -> dict[int, float]:
    """Table IV: dislike-counter distribution over *liked* deliveries.

    For each news item received by a node that likes it, the number of
    times it was forwarded by nodes that did not like it (the copy's
    dislike counter at receipt).  Returns ``{0: fraction, 1: ..., ...}``
    covering ``0..max_ttl`` (missing counts have fraction 0).
    """
    arr = log.arrays()
    liked = arr["d_liked"]
    if not liked.any():
        return {k: 0.0 for k in range(max_ttl + 1)}
    counters = arr["d_dislikes"][liked]
    total = len(counters)
    # one bincount pass instead of one comparison scan per counter value
    # (the log is a bulk-appended column store; runs are long at scale)
    counts = np.bincount(counters, minlength=max_ttl + 1)
    return {k: float(counts[k]) / total for k in range(max_ttl + 1)}


@dataclass(frozen=True)
class HopsBreakdown:
    """Figure 6's four series, indexed by hop distance from the source.

    Attributes are arrays of length ``max_hops + 1``; index *h* counts
    events performed by/arriving at nodes *h* hops from the source.
    """

    forwards_by_like: np.ndarray
    forwards_by_dislike: np.ndarray
    infections_by_like: np.ndarray
    infections_by_dislike: np.ndarray

    @property
    def max_hops(self) -> int:
        return len(self.forwards_by_like) - 1

    def mean_infection_hops(self) -> float:
        """Average hop distance of deliveries (the paper observes ≈5)."""
        infections = self.infections_by_like + self.infections_by_dislike
        total = infections.sum()
        if total == 0:
            return 0.0
        hops = np.arange(len(infections))
        return float((hops * infections).sum() / total)


def hops_breakdown(log: DisseminationLog) -> HopsBreakdown:
    """Compute Figure 6's series from the event log.

    *Forwards* count forwarding actions at each hop distance, split by the
    forwarder's opinion; *infections* count first receipts at each hop
    distance, split by the opinion of the node that forwarded the copy
    (``via_like``).
    """
    arr = log.arrays()
    max_hops = 0
    if len(arr["f_hops"]):
        max_hops = max(max_hops, int(arr["f_hops"].max()))
    if len(arr["d_hops"]):
        max_hops = max(max_hops, int(arr["d_hops"].max()))
    size = max_hops + 1

    def _series(hops: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return np.bincount(hops[mask], minlength=size).astype(np.int64)

    f_liked = arr["f_liked"]
    d_via = arr["d_via_like"]
    return HopsBreakdown(
        forwards_by_like=_series(arr["f_hops"], f_liked),
        forwards_by_dislike=_series(arr["f_hops"], ~f_liked),
        infections_by_like=_series(arr["d_hops"], d_via),
        infections_by_dislike=_series(arr["d_hops"], ~d_via),
    )


def recall_vs_popularity(
    reached: np.ndarray,
    likes: np.ndarray,
    n_bins: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 10: per-item recall binned by item popularity.

    Returns ``(bin_centres, mean_recall_per_bin, item_fraction_per_bin)``;
    bins with no items carry NaN recall.
    """
    reached = np.asarray(reached, dtype=bool)
    likes = np.asarray(likes, dtype=bool)
    n_users = likes.shape[0]
    popularity = likes.sum(axis=0) / n_users
    tp = (reached & likes).sum(axis=0).astype(np.float64)
    interested = likes.sum(axis=0).astype(np.float64)
    recall = np.divide(tp, interested, out=np.zeros_like(tp), where=interested > 0)

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    centres = (edges[:-1] + edges[1:]) / 2.0
    mean_recall = np.full(n_bins, np.nan)
    fraction = np.zeros(n_bins)
    idx = np.clip(np.digitize(popularity, edges) - 1, 0, n_bins - 1)
    for b in range(n_bins):
        mask = idx == b
        if mask.any():
            mean_recall[b] = float(recall[mask].mean())
            fraction[b] = float(mask.mean())
    return centres, mean_recall, fraction


def sociability(likes: np.ndarray, k: int = 15, metric: str = "cosine") -> np.ndarray:
    """Per-user sociability (Figure 11).

    "We define sociability as the ability of a node to exhibit a profile
    that is close to others, and compute it as the node's average
    similarity with respect to the 15 nodes that are most similar to it."
    Computed over the ground-truth like matrix.
    """
    likes = np.asarray(likes, dtype=bool)
    sims = similarity_matrix(likes, np.ones_like(likes), metric)
    np.fill_diagonal(sims, -np.inf)
    n_users = likes.shape[0]
    k = min(k, n_users - 1)
    if k <= 0:
        return np.zeros(n_users)
    top = np.sort(sims, axis=1)[:, -k:]
    return top.mean(axis=1)


def f1_vs_sociability(
    reached: np.ndarray,
    likes: np.ndarray,
    *,
    k: int = 15,
    n_bins: int = 10,
    metric: str = "cosine",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 11: per-user F1 binned by sociability.

    Returns ``(bin_centres, mean_f1_per_bin, node_fraction_per_bin)``.
    """
    soc = sociability(likes, k=k, metric=metric)
    _, _, f1 = per_user_scores(reached, likes)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    centres = (edges[:-1] + edges[1:]) / 2.0
    mean_f1 = np.full(n_bins, np.nan)
    fraction = np.zeros(n_bins)
    idx = np.clip(np.digitize(soc, edges) - 1, 0, n_bins - 1)
    for b in range(n_bins):
        mask = idx == b
        if mask.any():
            mean_f1[b] = float(f1[mask].mean())
            fraction[b] = float(mask.mean())
    return centres, mean_f1, fraction
