"""Topology metrics over the implicit social network (paper Section V-A).

The paper characterises the overlay the WUP/clustering views induce:

* the fraction of nodes in the **largest strongly connected component**
  (Figure 4) — once it reaches 1, "news items can be spread through any
  user and are not restricted to a subpart of the network", which is where
  the F1 plateaus of Figure 3 begin;
* the **average clustering coefficient** — the WUP metric yields ~0.15
  against ~0.40 for cosine on the survey workload, explaining cosine's
  hub-and-cluster pathology;
* the **number of (weakly) connected components** at small fanouts —
  fragmentation (WHATSUP ~1.6 components at fanout 3 versus ~12.4 for the
  cosine variant).
"""

from __future__ import annotations

from typing import Callable, Iterable

import networkx as nx

from repro.gossip.views import View

__all__ = [
    "overlay_graph",
    "lscc_fraction",
    "weak_component_count",
    "average_clustering",
    "in_degree_concentration",
]


def _default_view(node) -> View:
    """Locate a node's clustering view (WHATSUP or CF node)."""
    for attr in ("wup", "clustering"):
        proto = getattr(node, attr, None)
        if proto is not None and hasattr(proto, "view"):
            return proto.view
    raise AttributeError(
        f"node {node!r} has no clustering view; pass an explicit view_of"
    )


def overlay_graph(
    nodes: Iterable,
    view_of: Callable[[object], View] | None = None,
) -> nx.DiGraph:
    """Build the directed overlay induced by the nodes' clustering views.

    An edge ``u → v`` means *v* is in *u*'s view (u can forward items to
    v).  Dead nodes (churn) are excluded along with their edges.
    """
    view_of = view_of if view_of is not None else _default_view
    graph = nx.DiGraph()
    alive: dict[int, object] = {
        node.node_id: node for node in nodes if getattr(node, "alive", True)
    }
    graph.add_nodes_from(alive)
    for nid, node in alive.items():
        for entry in view_of(node).entries():
            if entry.node_id in alive:
                graph.add_edge(nid, entry.node_id)
    return graph


def lscc_fraction(graph: nx.DiGraph) -> float:
    """Fraction of nodes in the largest strongly connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    largest = max(nx.strongly_connected_components(graph), key=len)
    return len(largest) / n


def weak_component_count(graph: nx.DiGraph) -> int:
    """Number of weakly connected components (fragmentation measure)."""
    if graph.number_of_nodes() == 0:
        return 0
    return nx.number_weakly_connected_components(graph)


def average_clustering(graph: nx.DiGraph) -> float:
    """Average clustering coefficient of the undirected projection."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return float(nx.average_clustering(graph.to_undirected()))


def in_degree_concentration(graph: nx.DiGraph, top_fraction: float = 0.05) -> float:
    """Share of in-links pointing at the top ``top_fraction`` of nodes.

    A hub-formation measure: cosine similarity concentrates in-links on
    popular large-profile nodes, the WUP metric spreads them (Section V-A's
    "avoiding node concentration around hubs").
    """
    n = graph.number_of_nodes()
    total = graph.number_of_edges()
    if n == 0 or total == 0:
        return 0.0
    k = max(1, int(round(top_fraction * n)))
    degrees = sorted((d for _, d in graph.in_degree()), reverse=True)
    return sum(degrees[:k]) / total
