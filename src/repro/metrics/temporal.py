"""Dissemination-latency metrics.

The paper's footnote 1 defers "a precise analysis of dissemination latency"
to future work, noting only that the small hop counts of Figure 6 imply
fast dissemination.  These metrics complete that analysis over the event
log: every delivery's *latency* is the number of cycles between its item's
publication and its receipt (equal to its hop count under the default
one-hop-per-cycle model; larger under
:class:`~repro.network.transport.LatencyTransport`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.events import DisseminationLog

__all__ = [
    "LatencySummary",
    "delivery_latencies",
    "latency_summary",
    "time_to_audience",
]


def delivery_latencies(
    log: DisseminationLog,
    publication_cycles: np.ndarray,
    *,
    liked_only: bool = False,
) -> np.ndarray:
    """Per-delivery latency in cycles.

    Parameters
    ----------
    log:
        The run's event log.
    publication_cycles:
        ``publication_cycles[i]`` is the cycle item *i* was published.
    liked_only:
        Restrict to deliveries the receiver liked (the latency users care
        about).
    """
    arr = log.arrays()
    mask = arr["d_liked"] if liked_only else np.ones(len(arr["d_item"]), dtype=bool)
    pub = np.asarray(publication_cycles)
    return arr["d_cycle"][mask] - pub[arr["d_item"][mask]]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of delivery latencies (cycles)."""

    mean: float
    median: float
    p90: float
    p99: float
    max: float

    def as_row(self) -> tuple[float, float, float, float, float]:
        return (self.mean, self.median, self.p90, self.p99, self.max)


def latency_summary(
    log: DisseminationLog,
    publication_cycles: np.ndarray,
    *,
    liked_only: bool = True,
) -> LatencySummary:
    """Summarise delivery latency (liked deliveries by default)."""
    lat = delivery_latencies(log, publication_cycles, liked_only=liked_only)
    if len(lat) == 0:
        return LatencySummary(0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencySummary(
        mean=float(lat.mean()),
        median=float(np.median(lat)),
        p90=float(np.percentile(lat, 90)),
        p99=float(np.percentile(lat, 99)),
        max=float(lat.max()),
    )


def time_to_audience(
    log: DisseminationLog,
    publication_cycles: np.ndarray,
    n_items: int,
    fraction: float = 0.9,
) -> np.ndarray:
    """Per-item cycles until *fraction* of its final audience was reached.

    Items that never reached anyone beyond their source report 0.  This is
    the "how quickly does an item saturate" view of dissemination speed.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    arr = log.arrays()
    pub = np.asarray(publication_cycles)
    out = np.zeros(n_items, dtype=np.int64)
    order = np.argsort(arr["d_cycle"], kind="stable")
    items = arr["d_item"][order]
    cycles = arr["d_cycle"][order]
    for i in range(n_items):
        mask = items == i
        if not mask.any():
            continue
        item_cycles = cycles[mask]
        k = max(1, int(np.ceil(fraction * len(item_cycles))))
        out[i] = int(item_cycles[k - 1] - pub[i])
    return out
