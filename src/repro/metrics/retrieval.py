"""Information-retrieval metrics (paper Section IV-C).

The paper evaluates dissemination quality with the classic retrieval
triple:

.. math::

    \\mathrm{Precision} = \\frac{|interested \\cap reached|}{|reached|},\\quad
    \\mathrm{Recall} = \\frac{|interested \\cap reached|}{|interested|},\\quad
    F_1 = \\frac{2 P R}{P + R}

computed from the ground-truth interest matrix (``likes``) and the delivery
matrix (``reached``).  Two aggregations are provided:

* **micro** (default): pools every (user, item) pair — what a single global
  confusion matrix would give;
* **per-item**: computes the triple per item and averages — item-balanced,
  used by the popularity analysis (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RetrievalScores",
    "evaluate_dissemination",
    "per_item_scores",
    "per_user_scores",
]


@dataclass(frozen=True)
class RetrievalScores:
    """A precision/recall/F1 triple."""

    precision: float
    recall: float
    f1: float

    @staticmethod
    def from_counts(
        tp: float, n_reached: float, n_interested: float
    ) -> "RetrievalScores":
        """Build scores from raw counts (zero-safe)."""
        precision = tp / n_reached if n_reached > 0 else 0.0
        recall = tp / n_interested if n_interested > 0 else 0.0
        denom = precision + recall
        f1 = 2.0 * precision * recall / denom if denom > 0 else 0.0
        return RetrievalScores(precision, recall, f1)

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)


def _check_shapes(reached: np.ndarray, likes: np.ndarray) -> None:
    if reached.shape != likes.shape:
        raise ValueError(
            f"reached shape {reached.shape} != likes shape {likes.shape}"
        )


def evaluate_dissemination(
    reached: np.ndarray, likes: np.ndarray
) -> RetrievalScores:
    """Micro-averaged precision/recall/F1 over all (user, item) pairs."""
    reached = np.asarray(reached, dtype=bool)
    likes = np.asarray(likes, dtype=bool)
    _check_shapes(reached, likes)
    tp = float((reached & likes).sum())
    return RetrievalScores.from_counts(tp, float(reached.sum()), float(likes.sum()))


def per_item_scores(
    reached: np.ndarray, likes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-item precision, recall and F1 arrays (columns = items)."""
    reached = np.asarray(reached, dtype=bool)
    likes = np.asarray(likes, dtype=bool)
    _check_shapes(reached, likes)
    tp = (reached & likes).sum(axis=0).astype(np.float64)
    n_reached = reached.sum(axis=0).astype(np.float64)
    n_interested = likes.sum(axis=0).astype(np.float64)
    precision = np.divide(
        tp, n_reached, out=np.zeros_like(tp), where=n_reached > 0
    )
    recall = np.divide(
        tp, n_interested, out=np.zeros_like(tp), where=n_interested > 0
    )
    denom = precision + recall
    f1 = np.divide(
        2.0 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0
    )
    return precision, recall, f1


def per_user_scores(
    reached: np.ndarray, likes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-user precision, recall and F1 arrays (rows = users).

    Used by the sociability analysis (Figure 11): how well does the system
    serve each individual user?
    """
    reached = np.asarray(reached, dtype=bool)
    likes = np.asarray(likes, dtype=bool)
    _check_shapes(reached, likes)
    tp = (reached & likes).sum(axis=1).astype(np.float64)
    n_reached = reached.sum(axis=1).astype(np.float64)
    n_interested = likes.sum(axis=1).astype(np.float64)
    precision = np.divide(
        tp, n_reached, out=np.zeros_like(tp), where=n_reached > 0
    )
    recall = np.divide(
        tp, n_interested, out=np.zeros_like(tp), where=n_interested > 0
    )
    denom = precision + recall
    f1 = np.divide(
        2.0 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0
    )
    return precision, recall, f1
