"""Command-line interface.

Usage (installed as ``whatsup-repro``, also ``python -m repro``)::

    whatsup-repro list                     # available experiments
    whatsup-repro run table3               # reproduce one table/figure
    whatsup-repro run all --scale small    # everything, in registry order
    whatsup-repro run fig4 --seed 7 --scale medium
    whatsup-repro run table3 --shards 4    # process-sharded cycle engine
    whatsup-repro run table3 --shards 4 --faults crash@5:1:q
                                           # fault-injected, self-healing run
    whatsup-repro run table3 --shards 4 --wire-tier pickle --pin-cpus
                                           # old wire, workers pinned

Flags, env vars and programmatic use share one resolution path: the CLI
builds a :class:`repro.api.RunConfig` from the environment
(``RunConfig.from_env()``), overrides it with the explicit flags, and
runs the experiments under ``config.apply()`` — exactly what a script
passing ``run_config=`` would get.

Every experiment prints the paper-shaped table/series for its id; the same
code paths back the pytest-benchmark suite under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, get_scale, run_experiment
from repro.utils.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="whatsup-repro",
        description=(
            "Reproduction of 'WHATSUP: A Decentralized Instant News "
            "Recommender' (IPDPS 2013) — run any of the paper's tables "
            "and figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_p = sub.add_parser("run", help="run experiments by id")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all'",
    )
    run_p.add_argument(
        "--scale",
        default=None,
        help="scale profile: small (default), medium, paper; "
        "also settable via REPRO_SCALE",
    )
    run_p.add_argument("--seed", type=int, default=1, help="root seed (default 1)")
    run_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="process-shard the cycle engine across N workers "
        "(default 1 = single-process; also settable via REPRO_SHARDS)",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="SCHEDULE",
        help="deterministic fault schedule for the sharded engine: "
        "JSON, a JSON file path, or the DSL "
        "'kind@cycle:shard[:phase[:param]]' (e.g. 'crash@5:1:q'); "
        "also settable via REPRO_FAULTS",
    )
    run_p.add_argument(
        "--wire-tier",
        default=None,
        choices=("pickle", "columns", "delta"),
        help="cross-shard mailbox encoding (default delta; "
        "also settable via REPRO_SHARD_WIRE)",
    )
    run_p.add_argument(
        "--pin-cpus",
        action="store_true",
        default=None,
        help="pin each shard worker to one CPU on multi-core hosts "
        "(also settable via REPRO_SHARD_PIN_CPUS)",
    )
    return parser


def _cmd_list() -> int:
    print("Available experiments:")
    for exp_id in sorted(EXPERIMENTS):
        fn = EXPERIMENTS[exp_id]
        doc = (fn.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {exp_id:16s} {summary}")
    return 0


def _cmd_run(
    exp_ids: list[str],
    scale_name: str | None,
    seed: int,
    shards: int | None = None,
    faults: str | None = None,
    wire_tier: str | None = None,
    pin_cpus: bool | None = None,
) -> int:
    from repro.api import RunConfig

    overrides = {
        key: value
        for key, value in (
            ("shards", shards),
            ("faults", faults),
            ("wire_tier", wire_tier),
            ("pin_cpus", pin_cpus),
        )
        if value is not None
    }
    config = RunConfig.from_env().replace(**overrides)
    scale = get_scale(scale_name)
    if len(exp_ids) == 1 and exp_ids[0].lower() == "all":
        exp_ids = sorted(EXPERIMENTS)
    status = 0
    with config.apply():
        for exp_id in exp_ids:
            start = time.perf_counter()
            try:
                report = run_experiment(exp_id, scale, seed)
            except ReproError as exc:
                print(f"[{exp_id}] error: {exc}", file=sys.stderr)
                status = 1
                continue
            elapsed = time.perf_counter() - start
            print(f"\n== {report.exp_id}: {report.title} ({elapsed:.1f}s) ==")
            print(report.text)
    return status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiments,
            args.scale,
            args.seed,
            args.shards,
            args.faults,
            args.wire_tier,
            args.pin_cpus,
        )
    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
