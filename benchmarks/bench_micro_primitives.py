"""Micro-benchmarks of the hot primitives.

Unlike the macro table/figure benchmarks (one full simulation per round),
these measure the inner-loop costs that dominate a run — useful for
tracking performance regressions in the similarity metrics, gossip
merges and the engine cycle loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.arraystate import array_state
from repro.core.profiles import FrozenProfile, ItemProfile, UserProfile
from repro.core.similarity import (
    ScoreCache,
    cosine_similarity,
    native_kernel,
    pairwise_wup,
    score_candidates,
    wup_similarity,
)
from repro.datasets import survey_dataset
from repro.gossip.rps import RpsProtocol
from repro.gossip.vicinity import ClusteringProtocol
from repro.gossip.views import ArrayView, View, ViewEntry

#: the two state-plane backends every bookkeeping primitive is measured on
PLANES = ["legacy", "array"]


def _profile_pair(n_items=120, overlap=0.4, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.choice(10_000, size=n_items, replace=False)
    a, b = UserProfile(), UserProfile()
    for iid in base:
        r = rng.random()
        if r < overlap:
            a.record_opinion(int(iid), 0, True)
            b.record_opinion(int(iid), 0, rng.random() < 0.7)
        elif r < 0.7:
            a.record_opinion(int(iid), 0, rng.random() < 0.5)
        else:
            b.record_opinion(int(iid), 0, rng.random() < 0.5)
    return a.snapshot(), b.snapshot()


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_wup_similarity(benchmark):
    a, b = _profile_pair()
    result = benchmark(wup_similarity, a, b)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_cosine_similarity(benchmark):
    a, b = _profile_pair()
    result = benchmark(cosine_similarity, a, b)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_wup_vs_item_profile(benchmark):
    # the BEEP orientation path: binary candidate vs real-valued item profile
    a, _ = _profile_pair()
    rng = np.random.default_rng(3)
    item = ItemProfile()
    for iid in rng.choice(10_000, size=150, replace=False):
        item.set(int(iid), 0, float(rng.random()))
    result = benchmark(wup_similarity, a, item)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_pairwise_wup_matrix(benchmark):
    rng = np.random.default_rng(1)
    rated = rng.random((240, 500)) < 0.4
    likes = rated & (rng.random((240, 500)) < 0.6)
    out = benchmark(pairwise_wup, likes, rated)
    assert out.shape == (240, 240)


@pytest.mark.benchmark(group="micro-gossip")
def test_micro_clustering_merge(benchmark):
    rng = np.random.default_rng(5)
    own, _ = _profile_pair(seed=9)
    proto = ClusteringProtocol(0, 20, wup_similarity, np.random.default_rng(0))
    candidates = []
    for nid in range(1, 61):
        scores = {
            int(i): 1.0 for i in rng.choice(10_000, size=40, replace=False)
        }
        candidates.append(
            ViewEntry(nid, "10.0.0.1", FrozenProfile(scores, is_binary=True), 0)
        )

    def merge_once():
        proto.merge(own, candidates)

    benchmark(merge_once)
    assert len(proto.view) == 20


def _candidate_pool(k, n_items=60, universe=20_000, seed=7):
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(k):
        ids = rng.choice(universe, size=n_items, replace=False)
        pool.append(
            FrozenProfile(
                {int(i): float(rng.random() < 0.7) for i in ids},
                is_binary=True,
            )
        )
    return pool


@pytest.mark.benchmark(group="micro-batch")
@pytest.mark.parametrize("pool_size", [16, 64, 256])
def test_micro_score_candidates_pool(benchmark, pool_size):
    # the batch kernel across its adaptive dispatch range: 16/64 run the
    # set-algebra pool loop, 256 crosses into the vectorised numpy pass
    owner, _ = _profile_pair(seed=11)
    pool = _candidate_pool(pool_size)
    result = benchmark(score_candidates, owner, pool, "wup")
    assert len(result) == pool_size
    assert all(0.0 <= s <= 1.0 for s in result)


@pytest.mark.benchmark(group="micro-batch")
def test_micro_score_candidates_cache_hot(benchmark):
    # steady-state merges: every (owner version, candidate version) pair
    # unchanged since the last cycle -> pure cache service.  This measures
    # the *Python-tier* cache path, so the native tier (which rescores
    # instead of consulting the cache) is pinned off for the run.
    owner, _ = _profile_pair(seed=12)
    pool = _candidate_pool(64)
    cache = ScoreCache()
    with native_kernel(False):
        score_candidates(owner, pool, "wup", cache=cache)  # warm

        def cached_pool_scores():
            return score_candidates(owner, pool, "wup", cache=cache)

        result = benchmark(cached_pool_scores)
    assert len(result) == 64
    assert cache.hits > 0


@pytest.mark.benchmark(group="micro-gossip")
def test_micro_clustering_merge_paper_view(benchmark):
    # paper-swept operating point: fLIKE=25 -> WUPvs=50, merge pool of a
    # full received view + RPS view on top of the node's own entries
    own, _ = _profile_pair(seed=13)
    proto = ClusteringProtocol(0, 50, "wup", np.random.default_rng(1))
    candidates = [
        ViewEntry(nid, "10.0.0.1", profile, 0)
        for nid, profile in enumerate(_candidate_pool(120, seed=22), start=1)
    ]

    def merge_once():
        proto.merge(own, candidates)

    benchmark(merge_once)
    assert len(proto.view) == 50


@pytest.mark.benchmark(group="micro-engine")
def test_micro_engine_cycle_throughput(benchmark):
    dataset = survey_dataset(n_base_users=100, n_base_items=120, seed=2)
    system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=8), seed=2)
    system.run(10, drain=False)  # warm the overlay and the stream

    def one_cycle():
        system.engine.run(1)

    benchmark.pedantic(one_cycle, rounds=10, iterations=1)
    # >= 11: under --benchmark-disable (CI smoke) pedantic runs one round
    assert system.engine.cycles_run >= 11


# --------------------------------------------------------------------------
# gossip bookkeeping primitives (PR 4 array state plane vs legacy)
# --------------------------------------------------------------------------
#
# These measure the order-pinned state machinery the similarity kernels
# left as the wall: view merge-dedup, ranked trims, random trims,
# shipment/wire accounting, per-receipt profile mutation.  Each primitive
# runs on both state-plane backends; paired medians go to PERFORMANCE.md.


def _descriptor_batch(k=17, seed=31, universe=4000, n_items=40):
    rng = np.random.default_rng(seed)
    batch = []
    for nid in rng.choice(400, size=k, replace=False):
        scores = {
            int(i): 1.0
            for i in rng.choice(universe, size=n_items, replace=False)
        }
        batch.append(
            ViewEntry(
                int(nid),
                "10.0.0.1",
                FrozenProfile(scores, is_binary=True),
                int(rng.integers(0, 30)),
            )
        )
    return batch


def _view(plane, capacity=30, owner=999, prefill=30, seed=7):
    cls = View if plane == "legacy" else ArrayView
    v = cls(capacity, owner_id=owner)
    v.upsert_all(_descriptor_batch(prefill, seed=seed))
    return v


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_view_upsert_all(benchmark, plane):
    # the merge-dedup inner loop: steady-state replacement of a shipped
    # batch (equal timestamps -> freshest-wins replaces every row)
    view = _view(plane)
    batch = _descriptor_batch(17, seed=5)
    benchmark(view.upsert_all, batch)
    assert len(view) <= 30 + 17


@pytest.mark.benchmark(group="micro-bookkeeping")
def test_micro_view_upsert_columns_kernel(benchmark):
    # the columnar shipment path: one state_upsert kernel call (array
    # plane only; falls back to upsert_all without the extension)
    with array_state(True):
        sender = RpsProtocol(1, 30, np.random.default_rng(0))
        sender.view.upsert_all(_descriptor_batch(30, seed=9))
        profile = UserProfile()
        profile.record_opinion(3, 0, True)
        payload, _wire, cols = sender._shipment(
            profile.snapshot(), 5, exclude=2
        )
        view = _view("array", seed=11)
        benchmark(view.upsert_columns, payload, cols)


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_view_ranked_trim(benchmark, plane):
    # the clustering merge's trim: 60 candidates -> keep top 20
    rng = np.random.default_rng(3)
    base = _descriptor_batch(60, seed=13)
    scores = [float(s) for s in rng.random(60)]

    def setup():
        cls = View if plane == "legacy" else ArrayView
        v = cls(20, owner_id=999)
        v.upsert_all(base)
        return (v, v.entries(), list(scores)), {}

    def trim(v, entries, aligned):
        v.trim_ranked_aligned(entries, aligned)
        return v

    result = benchmark.pedantic(trim, setup=setup, rounds=40)
    assert len(result) == 20


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_view_trim_random(benchmark, plane):
    # the RPS merge rule: shrink 47 -> 30 by uniform sample
    base = _descriptor_batch(47, seed=17)
    rng = np.random.default_rng(23)

    def setup():
        cls = View if plane == "legacy" else ArrayView
        v = cls(30, owner_id=999)
        v.upsert_all(base)
        return (v,), {}

    result = benchmark.pedantic(
        lambda v: (v.trim_random(rng), v)[1], setup=setup, rounds=40
    )
    assert len(result) == 30


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_shipment_wire_accounting(benchmark, plane):
    # pricing a full gossip shipment: wire-column sum vs descriptor walk
    view = _view(plane)
    result = benchmark(view.wire_size)
    assert result > 0


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_view_oldest(benchmark, plane):
    # tail peer selection, twice per node per cycle
    view = _view(plane)
    result = benchmark(view.oldest)
    assert result is not None


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_profile_integrate(benchmark, plane):
    # Algorithm 1's addToNewsProfile: fold a liker into the item profile
    # (steady state: every id present -> the averaging path)
    with array_state(plane == "array"):
        rng = np.random.default_rng(29)
        item = ItemProfile()
        liker = UserProfile()
        for iid in rng.choice(20_000, size=150, replace=False):
            item.set(int(iid), 0, float(rng.random()))
            liker.set(int(iid), 0, float(rng.integers(0, 2)))
        item.packed()  # array plane: the journal chain rides along
        benchmark(item.integrate, liker)
        assert len(item) == 150


@pytest.mark.benchmark(group="micro-bookkeeping")
@pytest.mark.parametrize("plane", PLANES)
def test_micro_profile_snapshot_pack(benchmark, plane):
    # per-opinion profile mutation + scored snapshot: the per-receipt
    # path (set bumps the version; the snapshot repacks or adopts)
    with array_state(plane == "array"):
        rng = np.random.default_rng(37)
        profile = UserProfile()
        for iid in rng.choice(20_000, size=200, replace=False):
            profile.set(int(iid), 0, float(rng.integers(0, 2)))
        _ = profile.snapshot().rated_ids  # mark the profile as scored
        target = int(next(iter(profile.scores)))

        def mutate_and_pack():
            profile.set(target, 1, 1.0)
            return profile.snapshot().rated_ids

        ids = benchmark(mutate_and_pack)
        assert ids.size == 200
