"""Micro-benchmarks of the hot primitives.

Unlike the macro table/figure benchmarks (one full simulation per round),
these measure the inner-loop costs that dominate a run — useful for
tracking performance regressions in the similarity metrics, gossip
merges and the engine cycle loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.profiles import FrozenProfile, ItemProfile, UserProfile
from repro.core.similarity import (
    cosine_similarity,
    pairwise_wup,
    wup_similarity,
)
from repro.datasets import survey_dataset
from repro.gossip.vicinity import ClusteringProtocol
from repro.gossip.views import ViewEntry


def _profile_pair(n_items=120, overlap=0.4, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.choice(10_000, size=n_items, replace=False)
    a, b = UserProfile(), UserProfile()
    for iid in base:
        r = rng.random()
        if r < overlap:
            a.record_opinion(int(iid), 0, True)
            b.record_opinion(int(iid), 0, rng.random() < 0.7)
        elif r < 0.7:
            a.record_opinion(int(iid), 0, rng.random() < 0.5)
        else:
            b.record_opinion(int(iid), 0, rng.random() < 0.5)
    return a.snapshot(), b.snapshot()


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_wup_similarity(benchmark):
    a, b = _profile_pair()
    result = benchmark(wup_similarity, a, b)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_cosine_similarity(benchmark):
    a, b = _profile_pair()
    result = benchmark(cosine_similarity, a, b)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_wup_vs_item_profile(benchmark):
    # the BEEP orientation path: binary candidate vs real-valued item profile
    a, _ = _profile_pair()
    rng = np.random.default_rng(3)
    item = ItemProfile()
    for iid in rng.choice(10_000, size=150, replace=False):
        item.set(int(iid), 0, float(rng.random()))
    result = benchmark(wup_similarity, a, item)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="micro-similarity")
def test_micro_pairwise_wup_matrix(benchmark):
    rng = np.random.default_rng(1)
    rated = rng.random((240, 500)) < 0.4
    likes = rated & (rng.random((240, 500)) < 0.6)
    out = benchmark(pairwise_wup, likes, rated)
    assert out.shape == (240, 240)


@pytest.mark.benchmark(group="micro-gossip")
def test_micro_clustering_merge(benchmark):
    rng = np.random.default_rng(5)
    own, _ = _profile_pair(seed=9)
    proto = ClusteringProtocol(0, 20, wup_similarity, np.random.default_rng(0))
    candidates = []
    for nid in range(1, 61):
        scores = {
            int(i): 1.0 for i in rng.choice(10_000, size=40, replace=False)
        }
        candidates.append(
            ViewEntry(nid, "10.0.0.1", FrozenProfile(scores, is_binary=True), 0)
        )

    def merge_once():
        proto.merge(own, candidates)

    benchmark(merge_once)
    assert len(proto.view) == 20


@pytest.mark.benchmark(group="micro-engine")
def test_micro_engine_cycle_throughput(benchmark):
    dataset = survey_dataset(n_base_users=100, n_base_items=120, seed=2)
    system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=8), seed=2)
    system.run(10, drain=False)  # warm the overlay and the stream

    def one_cycle():
        system.engine.run(1)

    benchmark.pedantic(one_cycle, rounds=10, iterations=1)
    assert system.engine.cycles_run >= 20
