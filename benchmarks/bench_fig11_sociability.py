"""Figure 11: F1-Score vs user sociability.

Paper claims: "The more sociable a node the more it is exposed only to
relevant content (improving both recall and precision).  This acts as an
incentive."

Reproduction target: a strong positive relationship between a user's
sociability (mean similarity to her 15 nearest alter egos) and her
personal F1.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig11")
def test_fig11_sociability(benchmark, scale):
    report = run_and_emit(benchmark, "fig11", scale)
    f1 = np.asarray(report.data["f1"], dtype=float)
    frac = np.asarray(report.data["fraction"])

    populated = frac > 0
    assert populated.sum() >= 3
    # strong positive sociability/F1 relationship
    assert report.data["correlation"] > 0.5
    # the most sociable bin clearly beats the least sociable one
    values = f1[populated]
    assert values[-1] > values[0]
