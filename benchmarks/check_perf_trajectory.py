"""CI perf-trajectory gate: compare a fresh throughput run to the baseline.

Reads a freshly produced ``bench_scale_throughput.py`` report and the
committed ``BENCH_scale_throughput.json`` baseline, then compares
``batch_cps`` — and, when both reports carry them, ``native_cps``, the
array-state-plane ``array_cps`` and the process-sharded ``sharded_cps`` —
per scenario:

* a regression beyond ``--threshold`` (default 25%) **fails** the check for
  scenarios large enough to measure reliably;
* small scenarios (``small-*`` — the only ones ``--quick`` CI runs) are too
  noisy on shared runners, so regressions there only **warn**;
* a fresh report without ``native_cps`` (no compiler on the runner) only
  warns — the no-compiler fallback leg is a supported configuration;
* ``sharded_cps`` regressions only **warn** when the fresh host has fewer
  cores than shards (the workers time-slice; the number measures overhead,
  not scale-out) — on an adequately sized runner they gate like any tier;
* shard-boundary mailbox traffic (``mailbox.bytes_per_cycle``) growing
  beyond the threshold **fails** — on every scenario, including the
  ``small-*`` ones: the quantity is deterministic per configuration
  (hosts don't affect it), so growth means the wire format or the
  shipment selection genuinely got heavier.  Intentional protocol
  changes update the committed baseline in the same PR;
* a failed equivalence flag in the fresh report always fails — a perf win
  that changes outcomes is not a win.  The sharded determinism flag
  (``sharding.sharded_runs_identical``) is part of that rule: a sharded
  run that is not reproducible at a fixed seed fails the gate.

Usage (the CI ``perf-trajectory`` job)::

    python benchmarks/bench_scale_throughput.py --quick --out fresh.json
    python benchmarks/check_perf_trajectory.py fresh.json \
        --baseline BENCH_scale_throughput.json

Exit status: 0 when no hard failure, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: scenario-name prefixes treated as warn-only (too noisy for a hard gate)
WARN_ONLY_PREFIXES = ("small-",)


def compare(
    fresh: dict, baseline: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Return ``(failures, warnings)`` message lists for the two reports."""
    failures: list[str] = []
    warnings: list[str] = []

    for section in ("equivalence", "sharding"):
        block = fresh.get(section, {})
        flags = [v for k, v in block.items() if k.endswith("identical")]
        if flags and not all(flags):
            failures.append(f"{section} check FAILED in the fresh report: {block}")

    cores = fresh.get("host", {}).get("cpu_count") or 1
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in fresh.get("scenarios", {}).items():
        base = base_scenarios.get(name)
        if base is None:
            warnings.append(f"{name}: no baseline entry, skipping")
            continue
        for key in ("batch_cps", "native_cps", "array_cps", "sharded_cps"):
            base_cps = base.get(key)
            new_cps = entry.get(key)
            if not base_cps:
                if key == "batch_cps":
                    # batch_cps is mandatory in every baseline; a silent
                    # skip here would gate zero comparisons while green
                    warnings.append(f"{name}: baseline missing {key}")
                continue  # native/sharded: not tracked in this baseline yet
            if not new_cps:
                # a fresh report without the native path (no compiler on
                # the runner) is the supported fallback configuration
                warnings.append(f"{name}: no fresh {key} (fallback leg?)")
                continue
            ratio = new_cps / base_cps
            line = (
                f"{name} {key}: {new_cps:.3f} vs baseline {base_cps:.3f} "
                f"cycles/sec ({ratio:.2f}x)"
            )
            if ratio < 1.0 - threshold:
                if name.startswith(WARN_ONLY_PREFIXES):
                    warnings.append(f"{line} - regression (warn-only scale)")
                elif key == "sharded_cps" and cores < entry.get("shards", 2):
                    warnings.append(
                        f"{line} - regression (host has {cores} cores for "
                        f"{entry.get('shards')} shards; warn-only)"
                    )
                else:
                    failures.append(f"{line} - regression beyond threshold")
            else:
                warnings.append(f"{line} - ok")
        # mailbox traffic gate (hard): the shard-boundary bytes per
        # cycle are deterministic for a given configuration — hosts
        # don't affect them, so growth beyond the threshold means the
        # wire format or the shipment selection genuinely got heavier.
        # That gates on every scenario, small ones included; intentional
        # protocol changes update the committed baseline in the same PR.
        base_mail = (base.get("mailbox") or {}).get("bytes_per_cycle")
        new_mail = (entry.get("mailbox") or {}).get("bytes_per_cycle")
        if base_mail and new_mail:
            ratio = new_mail / base_mail
            line = (
                f"{name} mailbox bytes/cycle: {new_mail:.0f} vs baseline "
                f"{base_mail:.0f} ({ratio:.2f}x)"
            )
            if ratio > 1.0 + threshold:
                failures.append(f"{line} - traffic growth beyond threshold")
            else:
                warnings.append(f"{line} - ok")
        # per-tier wire bytes (warn lines): tracked so a tier that stops
        # earning its keep is visible in the CI log
        base_tiers = base.get("wire_tiers") or {}
        new_tiers = entry.get("wire_tiers") or {}
        for tier in sorted(set(base_tiers) & set(new_tiers)):
            b = base_tiers[tier].get("bytes_per_cycle")
            n = new_tiers[tier].get("bytes_per_cycle")
            if b and n:
                warnings.append(
                    f"{name} wire[{tier}] bytes/cycle: {n:.0f} vs "
                    f"baseline {b:.0f} ({n / b:.2f}x)"
                )
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path, help="fresh benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_scale_throughput.json",
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional cycles/sec regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures, notes = compare(fresh, baseline, args.threshold)

    for note in notes:
        print(f"[perf-trajectory] {note}")
    for failure in failures:
        print(f"[perf-trajectory] FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("[perf-trajectory] no hard regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
