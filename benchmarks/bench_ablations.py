"""Ablations of the design choices the paper fixes in §IV-D.

* profile window: best around 1/5-2/5 of the run, worse when too short
  (profiles too dynamic) or too long (stale interests);
* RPS view size: robust between 20 and 40;
* WUPvs = 2·fLIKE: the paper's precision/recall trade-off;
* similarity metric: the asymmetric WUP metric vs cosine/Jaccard/overlap,
  including the §V-A topology statistics.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_profile_window(benchmark, scale):
    report = run_and_emit(benchmark, "ablate-window", scale)
    rows = report.data["rows"]  # (label, P, R, F1)
    f1s = [r[3] for r in rows]
    # the mid-range windows beat the extremes (paper's 1/5-2/5 sweet spot)
    best_mid = max(f1s[1:4])
    assert best_mid >= f1s[0] - 0.02
    assert best_mid >= f1s[-1] - 0.02


@pytest.mark.benchmark(group="ablations")
def test_ablation_rps_view_size(benchmark, scale):
    report = run_and_emit(benchmark, "ablate-rpsvs", scale)
    rows = report.data["rows"]  # (size, P, R, F1)
    f1 = {r[0]: r[3] for r in rows}
    # robust plateau between 20 and 40 (paper's claim)
    assert abs(f1[20] - f1[40]) < 0.08
    assert abs(f1[30] - f1[20]) < 0.08


@pytest.mark.benchmark(group="ablations")
def test_ablation_wup_view_ratio(benchmark, scale):
    report = run_and_emit(benchmark, "ablate-wupvs", scale)
    rows = report.data["rows"]  # (ratio, P, R, F1)
    by_ratio = {r[0]: r for r in rows}
    # recall grows with the view/fanout ratio (more candidates to sample)...
    assert by_ratio[4.0][2] >= by_ratio[1.0][2] - 0.03
    # ...while precision peaks at small ratios — the paper's trade-off
    assert by_ratio[1.0][1] >= by_ratio[4.0][1] - 0.03


@pytest.mark.benchmark(group="ablations")
def test_ablation_similarity_metric(benchmark, scale):
    report = run_and_emit(benchmark, "ablate-metric", scale)
    rows = {r[0]: r for r in report.data["rows"]}
    # (metric, P, R, F1, clustering, lscc, components, hub share)
    assert rows["wup"][3] >= rows["cosine"][3] - 0.02  # F1 (paper: +10%)
    assert rows["wup"][2] > rows["cosine"][2]  # recall drives the gain
    assert rows["wup"][5] >= rows["cosine"][5] - 0.05  # LSCC connectivity
    # The paper's absolute clustering-coefficient contrast (0.15 vs 0.40)
    # needs paper-scale sparsity (views of 20-48 over 480+ nodes); at
    # reduced scale the coefficients converge, so we only require that the
    # WUP metric does not *worsen* clustering materially.
    assert rows["wup"][4] <= rows["cosine"][4] + 0.10
