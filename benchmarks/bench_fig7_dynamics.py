"""Figure 7: cold start and interest dynamics.

Paper claims (survey, profile window ≈ 40 cycles):

* a node joining with interests identical to a reference converges to an
  equally good WUP view in ~20 cycles under the WUP metric, >100 under
  cosine (Figures 7a/7b);
* a node swapping interests re-converges in ~40 cycles (WUP metric) vs
  >100 (cosine);
* the joiner starts receiving liked news essentially immediately
  (Figure 7c) thanks to the cold-start procedure and the metric's bias
  towards small profiles.

This is the suite's slowest benchmark (two metrics × repeats × 200-cycle
runs).
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig7")
def test_fig7_dynamics(benchmark, scale):
    report = run_and_emit(benchmark, "fig7", scale)
    wup = report.data["wup"]
    cos = report.data["cosine"]

    # the WUP metric converges within a profile window's worth of cycles
    assert wup["join_convergence"] is not None
    assert wup["join_convergence"] <= 40
    assert wup["change_convergence"] is not None
    assert wup["change_convergence"] <= 80

    # cosine is dramatically slower (the paper: >100 cycles)
    def slow(value, floor):
        return value is None or value > floor

    assert slow(cos["join_convergence"], 2 * wup["join_convergence"])
    # the joiner receives liked news right away under the WUP metric
    assert sum(report.data["joiner_reception"]) > 0
