"""Figure 3: F1-Score vs fanout and vs message cost, on all three workloads.

Paper panels (a-f): CF-WUP, CF-Cos, WHATSUP, WHATSUP-Cos swept over the
like fanout on synthetic / Digg / survey, plotted against fanout and
against messages/cycle/node.

Reproduction targets per workload:

* every curve rises with fanout and then flattens (the LSCC plateau);
* the WUP-metric systems dominate or match their cosine twins, most
  clearly at small fanouts (cosine needs a larger fanout for the same F1);
* WHATSUP reaches its plateau at a lower fanout than CF (amplification).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_and_emit


def _check_common_shape(report):
    f1 = report.data["f1_vs_fanout"]
    fanouts = report.data["fanouts"]
    for system, series in f1.items():
        assert len(series) == len(fanouts)
        # rising-then-flat: the max is not at the smallest fanout, and the
        # first half of the sweep gains more than the second half loses
        assert max(series) > series[0]
    # the WUP metric at least matches cosine at the smallest fanouts
    small = slice(0, max(2, len(fanouts) // 2))
    assert np.mean(f1["whatsup"][small]) >= np.mean(f1["whatsup-cos"][small]) - 0.02
    assert np.mean(f1["cf-wup"][small]) >= np.mean(f1["cf-cos"][small]) - 0.02


@pytest.mark.benchmark(group="fig3")
def test_fig3_survey(benchmark, scale):
    report = run_and_emit(benchmark, "fig3-survey", scale)
    _check_common_shape(report)


@pytest.mark.benchmark(group="fig3")
def test_fig3_synthetic(benchmark, scale):
    report = run_and_emit(benchmark, "fig3-synthetic", scale)
    _check_common_shape(report)


@pytest.mark.benchmark(group="fig3")
def test_fig3_digg(benchmark, scale):
    report = run_and_emit(benchmark, "fig3-digg", scale)
    _check_common_shape(report)
