"""End-to-end cycles/sec throughput benchmark (``BENCH_scale_throughput.json``).

Unlike the table/figure benchmarks (which reproduce paper artifacts), this
benchmark tracks the *simulator's* throughput — how many full WHATSUP cycles
per second a :class:`~repro.core.system.WhatsUpSystem` sustains — so the
performance trajectory of the hot paths (similarity scoring, gossip merges,
BEEP forwarding, the engine loop) is measured end to end, from this PR
onward.

Three fixed-seed scenarios:

* ``small-survey`` — the default CI-friendly scale;
* ``medium-survey`` — the acceptance scenario: the survey workload at
  ``medium`` scale with the paper-swept fanout 16 (heaviest per-user
  traffic, scoring-dominated merges);
* ``medium-synthetic`` — the Arxiv-like community workload at ``medium``
  scale (gossip-machinery-dominated).

Each scenario runs once per pipeline tier:

* **scalar** — per-pair scoring, one-envelope-at-a-time delivery
  (``batch_scoring(False)`` + ``delivery_batching(False)``): the pre-PR-1
  reference semantics;
* **batch** — vectorised similarity scoring (PR 1) plus the batched
  per-cycle delivery pipeline (PR 2), native kernels off;
* **native** — the batch stack with the compiled kernels of
  :mod:`repro._native` on top (PR 3's merge scoring+trim and BEEP
  fan-out in C), on the *legacy* dict/NamedTuple state structures.
  Skipped with a note when the extension is not built;
* **array** — the full stack on the array-backed state plane (PR 4:
  columnar views + journaled packed profiles + the state bookkeeping
  kernels, ``REPRO_ARRAY_STATE``);
* **sharded** — the array stack with the cycle loop process-sharded
  across ``--shards`` workers (PR 5's ``repro.simulation.sharding``:
  shared-memory state arenas + columnar shard-boundary mailboxes,
  ``REPRO_SHARDS``).  The report records the host core count alongside
  ``sharded_cps`` — on boxes with fewer cores than shards the workers
  time-slice and the number measures overhead, not scale-out.  The
  sharded section additionally sweeps the cross-shard mailbox encoding
  (PR 7's ``repro.simulation.wire``: ``pickle`` / ``columns`` /
  ``delta``), recording bytes/cycle and cps per tier plus the delta
  wire's reduction against the committed PR 6 pickle-wire baseline —
  byte counts are deterministic per configuration, so that acceptance
  is host-independent.

The array and native runs also report the resident footprint of the node
state (views + profiles, bytes/node via the ``storage_nbytes()`` facade)
so the columnar layout's memory story is tracked alongside throughput.

The run also verifies that all tiers leave *identical* outcomes after a
fixed-seed run: WUP and RPS view contents, user profiles, the full
delivery/forward event log, duplicate counts and traffic counters —
dissemination is provably unchanged by any of the acceleration machinery.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_throughput.py
    PYTHONPATH=src python benchmarks/bench_scale_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_scale_throughput.py \
        --baseline-json seed_baseline.json   # merge pre-PR cycles/sec

``--baseline-json`` points at ``{"scenario-name": cycles_per_sec}``
measurements taken on the pre-PR tree, enabling ``speedup_vs_pre_pr``
(without it, the PR 2 tree's committed ``batch_cps`` values below serve
as the standing baseline for the native acceptance ratios).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.arraystate import array_state
from repro.core.similarity import (
    batch_scoring,
    default_score_cache,
    native_available,
    native_kernel,
)
from repro.experiments.scale import SCALES
from repro.simulation.delivery import delivery_batching
from repro.simulation.sharding import shard_wire, sharding

#: benchmark seed (deterministic suite)
BENCH_SEED = 2

#: pipeline tier -> (batch gate, native gate, array-state gate)
MODES: dict[str, tuple[bool, bool, bool]] = {
    "scalar": (False, False, False),
    "batch": (True, False, False),
    "native": (True, True, False),
    "array": (True, True, True),
}

#: scenario name -> (scale, dataset, f_like, total cycles)
SCENARIOS: dict[str, dict] = {
    "small-survey": {
        "scale": "small",
        "dataset": "survey",
        "f_like": 8,
        "cycles": 60,
    },
    "medium-survey": {
        "scale": "medium",
        "dataset": "survey",
        "f_like": 16,
        "cycles": 80,
    },
    "medium-synthetic": {
        "scale": "medium",
        "dataset": "synthetic",
        "f_like": 10,
        "cycles": 40,
    },
    # the ISSUE's motivating case: the paper's Table I dimensions
    # (3180 users); few cycles keep the benchmark tractable — the ratio is
    # what is tracked
    "paper-synthetic": {
        "scale": "paper",
        "dataset": "synthetic",
        "f_like": 10,
        "cycles": 15,
    },
}

#: the committed PR 2 ``batch_cps`` values — the baseline PR 3's
#: acceptance ratio was measured against; kept inline so a rewritten JSON
#: cannot move its own goalposts
PR2_BASELINE_CPS = {
    "small-survey": 27.9672,
    "medium-survey": 5.2897,
    "medium-synthetic": 3.0984,
    "paper-synthetic": 0.6632,
}

#: the committed PR 3 ``native_cps`` values — the standing baseline the
#: PR 4 array-state acceptance ratio ("paired-median ≥1.3× cycles/sec
#: over the committed PR 3 baseline at medium/paper synthetic scale") is
#: measured against
PR3_BASELINE_CPS = {
    "small-survey": 38.274,
    "medium-survey": 7.1259,
    "medium-synthetic": 3.433,
    "paper-synthetic": 0.7265,
}

#: scenario -> target array-plane speedup over the committed PR 3 baseline
ACCEPTANCE_TARGETS = {
    "medium-synthetic": 1.3,
    "paper-synthetic": 1.3,
}

#: the committed PR 4 ``array_cps`` values — the standing baseline the
#: PR 5 sharding acceptance ratio ("≥1.8× paired-median cycles/sec at
#: paper-synthetic scale with 4 shards on a ≥4-core box") is measured
#: against; kept inline so a rewritten JSON cannot move its own goalposts
PR4_BASELINE_CPS = {
    "small-survey": 34.6757,
    "medium-survey": 6.7163,
    "medium-synthetic": 2.9581,
    "paper-synthetic": 0.63,
}

#: scenario -> target sharded speedup over the committed PR 4 baseline
#: (only meaningful on hosts with at least as many cores as shards)
SHARDED_ACCEPTANCE_TARGETS = {
    "paper-synthetic": 1.8,
}

#: the committed PR 6 ``mailbox.bytes_per_cycle`` values (the interned-
#: pickle wire at 4 shards) — the baseline the PR 7 columnar-delta-wire
#: acceptance ("≥4x fewer mailbox bytes/cycle at medium-synthetic")
#: is measured against; inline so a rewritten JSON cannot move the bar
PR6_BASELINE_MAILBOX = {
    "small-survey": 793832.7,
    "medium-survey": 6379859.7,
    "medium-synthetic": 7088024.7,
    "paper-synthetic": 32584839.9,
}

#: scenario -> target bytes/cycle reduction of the delta wire vs the
#: committed PR 6 pickle-wire baseline (byte counts are deterministic
#: per configuration, so this acceptance is host-independent)
WIRE_ACCEPTANCE_TARGETS = {
    "medium-synthetic": 4.0,
}

#: wire tiers swept in the sharded section, heaviest first (the default
#: engine tier, ``delta``, is the main sharded run itself)
WIRE_SWEEP_TIERS = ("pickle", "columns")

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_scale_throughput.json"


def build_system(spec: dict, seed: int = BENCH_SEED) -> WhatsUpSystem:
    scale = SCALES[spec["scale"]]
    dataset = scale.dataset(spec["dataset"], seed=seed)
    return WhatsUpSystem(dataset, WhatsUpConfig(f_like=spec["f_like"]), seed=seed)


def memory_report(system: WhatsUpSystem) -> dict:
    """Bytes/node of the resident node state (views + profiles).

    Read through the ``storage_nbytes()`` facade, so both state-plane
    backends are measured identically: the containers each backend owns,
    excluding the shared entry/snapshot objects.
    """
    n = max(1, len(system.nodes))
    views = 0
    profiles = 0
    for node in system.nodes:
        views += node.rps.view.storage_nbytes()
        views += node.wup.view.storage_nbytes()
        profiles += node.profile.storage_nbytes()
    return {
        "views_bytes_per_node": round(views / n, 1),
        "profiles_bytes_per_node": round(profiles / n, 1),
    }


def run_mode(
    spec: dict,
    mode: str,
    seed: int = BENCH_SEED,
    shards: int = 1,
    wire: str = "delta",
) -> dict:
    """One fresh fixed-seed run of a pipeline tier (see :data:`MODES`).

    The restore-guarded context managers pin the batch/native/array
    gates for the run and put the previous settings back even if it
    raises.  ``mode="sharded"`` runs the array tier under
    ``REPRO_SHARDS=shards`` with the *wire* mailbox encoding — the timed
    region covers the cycles only; collecting worker state back into the
    parent happens after the clock stops (it is an end-of-run cost, not
    a per-cycle one).
    """
    batch, native, arrays = MODES["array" if mode == "sharded" else mode]
    n_shards = shards if mode == "sharded" else 1
    with (
        batch_scoring(batch),
        delivery_batching(batch),
        native_kernel(native),
        array_state(arrays),
        sharding(n_shards),
        shard_wire(wire),
    ):
        default_score_cache().clear()
        system = build_system(spec, seed)
        cycles = spec["cycles"]
        t0 = time.perf_counter()
        system.engine.run(cycles)
        elapsed = time.perf_counter() - t0
        mailbox = None
        if mode == "sharded":
            system.run(cycles=0, drain=False)  # adopt worker state, untimed
            per_shard = system.engine.mailbox_stats()
            total = sum(
                s["shm_bytes"] + s["inline_bytes"] for s in per_shard
            )
            wire_stats: dict = {"tier": wire}
            for s in per_shard:
                for key, value in s["wire"].items():
                    if key != "tier":
                        wire_stats[key] = wire_stats.get(key, 0) + value
            mailbox = {
                "shm_bytes": sum(s["shm_bytes"] for s in per_shard),
                "inline_bytes": sum(s["inline_bytes"] for s in per_shard),
                "bytes_per_cycle": round(total / max(1, cycles), 1),
                "chunk_retries": sum(s["chunk_retries"] for s in per_shard),
                "crc_failures": sum(s["crc_failures"] for s in per_shard),
                "dup_chunks": sum(s["dup_chunks"] for s in per_shard),
                "wire": wire_stats,
            }
        memory = memory_report(system)
        close = getattr(system.engine, "close", None)
        if close is not None:
            close()
    result = {
        "n_users": len(system.nodes),
        "n_items": system.dataset.n_items,
        "cycles": cycles,
        "elapsed_sec": round(elapsed, 3),
        "cycles_per_sec": round(cycles / elapsed, 4),
        "memory": memory,
    }
    if mailbox is not None:
        result["mailbox"] = mailbox
    return result


def _system_state(system: WhatsUpSystem) -> dict:
    """Every outcome dissemination can influence, per node and globally."""
    state = {}
    for node in system.nodes:
        state[node.node_id] = (
            tuple(sorted(node.wup.view.node_ids())),
            tuple(sorted(node.rps.view.node_ids())),
            tuple(sorted(node.profile.scores.items())),
            tuple(sorted(node.seen)),
        )
    log = system.engine.log
    arrays = log.arrays()
    state["_log"] = tuple(
        (key, tuple(arrays[key].tolist())) for key in sorted(arrays)
    )
    state["_duplicates"] = log.duplicates
    stats = system.engine.stats
    state["_traffic"] = tuple(
        (str(kind), stats.sent[kind], stats.delivered[kind],
         stats.bytes_delivered[kind])
        for kind in sorted(stats.sent, key=str)
    )
    return state


def check_equivalence(spec: dict, seed: int = BENCH_SEED) -> dict:
    """Run every pipeline tier at a fixed seed; compare final states.

    The array mode runs regardless of the extension: without it the
    array plane falls back to its pure-Python column paths, which must
    still be bitwise-identical to every other tier.
    """
    modes = [
        "scalar",
        "batch",
        *(["native"] if native_available() else []),
        "array",
    ]
    states = {}
    for mode in modes:
        batch, native, arrays = MODES[mode]
        with (
            batch_scoring(batch),
            delivery_batching(batch),
            native_kernel(native),
            array_state(arrays),
        ):
            default_score_cache().clear()
            system = build_system(spec, seed)
            system.engine.run(spec["cycles"])
            states[mode] = _system_state(system)
    identical = all(states[m] == states["scalar"] for m in modes[1:])
    return {
        "cycles": spec["cycles"],
        "seed": seed,
        "modes": modes,
        "views_profiles_logs_identical": identical,
    }


def check_shard_determinism(
    spec: dict, seed: int = BENCH_SEED, shards: int = 2
) -> dict:
    """Two fresh sharded runs at a fixed seed must be identical.

    Shard counts above 1 are not bitwise-comparable to the single-process
    engine (sub-cycle interleaving differs; see
    :mod:`repro.simulation.sharding`), so the gate here is *run-to-run
    stability*: same seed, same shard count, same bits.  ``REPRO_SHARDS=1``
    needs no check of its own — it constructs the very same
    ``CycleEngine`` the other tiers run, which the tier equivalence
    above already pins.
    """
    batch, native, arrays = MODES["array"]
    states = []
    for _ in range(2):
        with (
            batch_scoring(batch),
            delivery_batching(batch),
            native_kernel(native),
            array_state(arrays),
            sharding(shards),
        ):
            default_score_cache().clear()
            system = build_system(spec, seed)
            system.engine.run(spec["cycles"])
            system.run(cycles=0, drain=False)
            states.append(_system_state(system))
            close = getattr(system.engine, "close", None)
            if close is not None:
                close()
    return {
        "cycles": spec["cycles"],
        "seed": seed,
        "shards": shards,
        "sharded_runs_identical": states[0] == states[1],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-survey scenario only (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument(
        "--baseline-json",
        type=Path,
        default=None,
        help="JSON of {scenario: pre-PR cycles/sec} to merge",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker count for the sharded tier (0 disables it)",
    )
    args = parser.parse_args(argv)

    baselines: dict[str, float] = {}
    if args.baseline_json is not None:
        baselines = json.loads(args.baseline_json.read_text())

    names = ["small-survey"] if args.quick else list(SCENARIOS)
    report: dict = {
        "benchmark": "scale_throughput",
        "schema": 1,
        "seed": BENCH_SEED,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scenarios": {},
    }

    have_native = native_available()
    if not have_native:
        print(
            "[native] extension not built "
            "(PYTHONPATH=src python -m repro._native.build_native) "
            "- recording scalar/batch only"
        )

    for name in names:
        spec = SCENARIOS[name]
        print(f"[{name}] scalar (pre-PR-equivalent scoring path) ...")
        scalar = run_mode(spec, "scalar")
        print(f"[{name}]   {scalar['cycles_per_sec']} cycles/sec")
        print(f"[{name}] batch (packed kernel + score cache) ...")
        batch = run_mode(spec, "batch")
        print(f"[{name}]   {batch['cycles_per_sec']} cycles/sec")
        entry = {
            **{k: batch[k] for k in ("n_users", "n_items", "cycles")},
            "f_like": spec["f_like"],
            "scalar_cps": scalar["cycles_per_sec"],
            "batch_cps": batch["cycles_per_sec"],
            "speedup_batch_vs_scalar": round(
                batch["cycles_per_sec"] / scalar["cycles_per_sec"], 3
            ),
        }
        if have_native:
            print(f"[{name}] native (compiled kernels, legacy state) ...")
            native = run_mode(spec, "native")
            print(f"[{name}]   {native['cycles_per_sec']} cycles/sec")
            entry["native_cps"] = native["cycles_per_sec"]
            entry["speedup_native_vs_scalar"] = round(
                native["cycles_per_sec"] / scalar["cycles_per_sec"], 3
            )
            entry["speedup_native_vs_batch"] = round(
                native["cycles_per_sec"] / batch["cycles_per_sec"], 3
            )
            entry["memory_legacy"] = native["memory"]
        else:
            entry["memory_legacy"] = batch["memory"]
        print(f"[{name}] array (columnar state plane) ...")
        array = run_mode(spec, "array")
        print(f"[{name}]   {array['cycles_per_sec']} cycles/sec")
        entry["array_cps"] = array["cycles_per_sec"]
        entry["memory_array"] = array["memory"]
        entry["speedup_array_vs_batch"] = round(
            array["cycles_per_sec"] / batch["cycles_per_sec"], 3
        )
        if have_native:
            entry["speedup_array_vs_native"] = round(
                array["cycles_per_sec"] / native["cycles_per_sec"], 3
            )
        pre_pr = baselines.get(name, PR2_BASELINE_CPS.get(name))
        if pre_pr:
            entry["pre_pr_baseline_cps"] = pre_pr
            best = entry.get("native_cps", entry["batch_cps"])
            entry["speedup_vs_pre_pr"] = round(best / pre_pr, 3)
        pr3 = PR3_BASELINE_CPS.get(name)
        if pr3:
            entry["pr3_baseline_cps"] = pr3
            entry["speedup_array_vs_pr3"] = round(
                array["cycles_per_sec"] / pr3, 3
            )
        if args.shards >= 2 and entry["n_users"] >= 2 * args.shards:
            print(
                f"[{name}] sharded ({args.shards} workers, "
                f"{os.cpu_count()} cores) ..."
            )
            shard = run_mode(spec, "sharded", shards=args.shards)
            print(f"[{name}]   {shard['cycles_per_sec']} cycles/sec")
            entry["shards"] = args.shards
            entry["sharded_cps"] = shard["cycles_per_sec"]
            if "mailbox" in shard:
                entry["mailbox"] = shard["mailbox"]
            entry["speedup_sharded_vs_array"] = round(
                shard["cycles_per_sec"] / array["cycles_per_sec"], 3
            )
            pr4 = PR4_BASELINE_CPS.get(name)
            if pr4:
                entry["pr4_baseline_cps"] = pr4
                entry["speedup_sharded_vs_pr4"] = round(
                    shard["cycles_per_sec"] / pr4, 3
                )
            # wire sweep: the same sharded run per encoding tier, so
            # the bytes/cycle story (and its cps cost) is tracked per
            # tier; the default delta run above doubles as its own entry
            sweep = {
                "delta": {
                    "bytes_per_cycle": shard["mailbox"]["bytes_per_cycle"],
                    "wire_frame_bytes": shard["mailbox"]["wire"][
                        "frame_bytes"
                    ],
                    "cps": shard["cycles_per_sec"],
                }
            }
            for tier in WIRE_SWEEP_TIERS:
                print(f"[{name}] sharded wire={tier} ...")
                alt = run_mode(spec, "sharded", shards=args.shards, wire=tier)
                print(f"[{name}]   {alt['cycles_per_sec']} cycles/sec")
                sweep[tier] = {
                    "bytes_per_cycle": alt["mailbox"]["bytes_per_cycle"],
                    "wire_frame_bytes": alt["mailbox"]["wire"]["frame_bytes"],
                    "cps": alt["cycles_per_sec"],
                }
            entry["wire_tiers"] = sweep
            entry["wire_reduction_vs_pickle"] = round(
                sweep["pickle"]["bytes_per_cycle"]
                / sweep["delta"]["bytes_per_cycle"],
                2,
            )
            pr6 = PR6_BASELINE_MAILBOX.get(name)
            if pr6:
                entry["pr6_baseline_mailbox_bytes_per_cycle"] = pr6
                entry["wire_reduction_vs_pr6"] = round(
                    pr6 / sweep["delta"]["bytes_per_cycle"], 2
                )
        report["scenarios"][name] = entry

    modes_label = (
        "scalar/batch" + ("/native" if have_native else "") + "/array"
    )
    print(f"[equivalence] {modes_label} on small-survey ...")
    report["equivalence"] = check_equivalence(SCENARIOS["small-survey"])
    print(f"[equivalence]   {report['equivalence']}")

    if args.shards >= 2:
        print("[equivalence] sharded determinism on small-survey ...")
        report["sharding"] = check_shard_determinism(
            SCENARIOS["small-survey"], shards=min(2, args.shards)
        )
        print(f"[equivalence]   {report['sharding']}")

    cache = default_score_cache()
    report["cache"] = {"hits": cache.hits, "misses": cache.misses}

    acceptance = {}
    for scenario, target in ACCEPTANCE_TARGETS.items():
        entry = report["scenarios"].get(scenario)
        if entry is None:
            continue
        achieved = entry.get("speedup_array_vs_pr3")
        if achieved is None:
            continue
        acceptance[scenario] = {
            "target_speedup": target,
            "achieved_speedup": achieved,
            "met": achieved >= target,
        }
    for scenario, target in SHARDED_ACCEPTANCE_TARGETS.items():
        entry = report["scenarios"].get(scenario)
        if entry is None or "speedup_sharded_vs_pr4" not in entry:
            continue
        achieved = entry["speedup_sharded_vs_pr4"]
        cores = os.cpu_count() or 1
        acceptance[f"sharded:{scenario}"] = {
            "target_speedup": target,
            "achieved_speedup": achieved,
            "met": achieved >= target,
            "shards": entry["shards"],
            "cores": cores,
            # the ISSUE's bar presumes one core per worker; below that the
            # workers time-slice and the ratio measures overhead only
            "valid_host": cores >= entry["shards"],
        }
    for scenario, target in WIRE_ACCEPTANCE_TARGETS.items():
        entry = report["scenarios"].get(scenario)
        if entry is None or "wire_reduction_vs_pr6" not in entry:
            continue
        achieved = entry["wire_reduction_vs_pr6"]
        acceptance[f"wire:{scenario}"] = {
            "target_reduction": target,
            "achieved_reduction": achieved,
            "met": achieved >= target,
        }
    if acceptance:
        report["acceptance"] = acceptance

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
