"""Table VI: performance versus message-loss rate (the ModelNet runs).

Paper cells (survey):

    Recall     loss:   0%    5%    20%   50%
      f=3            0.63  0.61  0.46  0.07
      f=6            0.82  0.82  0.80  0.45
    Precision  loss:   0%    5%    20%   50%
      f=3            0.47  0.47  0.47  0.55
      f=6            0.48  0.47  0.46  0.44

Reproduction targets: f=6 loses little recall up to 20% loss; f=3 degrades
much faster; at 50% loss the f=3 recall collapses while its *precision
rises* (the few surviving deliveries are the best-targeted ones).
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="table6")
def test_table6_loss_tolerance(benchmark, scale):
    report = run_and_emit(benchmark, "table6", scale)
    cells = report.data["cells"]  # (fanout, loss) -> (P, R, F1)

    def recall(f, loss):
        return cells[(f, loss)][1]

    def precision(f, loss):
        return cells[(f, loss)][0]

    # fanout-6 redundancy absorbs moderate loss
    assert recall(6, 0.20) > 0.85 * recall(6, 0.0)
    # fanout-3 suffers visibly at 20% ...
    assert recall(3, 0.20) < recall(3, 0.0)
    # ... and collapses at 50%, much harder than fanout 6
    assert recall(3, 0.50) < 0.5 * recall(3, 0.0)
    assert recall(3, 0.50) < recall(6, 0.50)
    # precision is not the casualty: the drops are recall-driven (the
    # paper even sees precision *rise* at heavy loss from survivor bias)
    assert precision(3, 0.50) >= precision(3, 0.0) - 0.05
