"""Figure 9: centralized vs decentralized WHATSUP.

Paper claims: the decentralized system is "a very good approximation" of
the global-knowledge variant (≈5% F1 gap at the operating point); global
knowledge buys precision (+17%) at slightly lower recall (−14%); the
cosine-metric decentralized variant trails both at low fanouts.

Reproduction targets: the precision ordering (centralized > decentralized)
and the recall ordering (decentralized > centralized), with the F1 gap
closing as the fanout grows.  At our reduced scale the centralized
variant's recall penalty is larger than the paper's (documented in
EXPERIMENTS.md), so the F1 crossover lands at larger fanouts.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig9")
def test_fig9_centralized(benchmark, scale):
    report = run_and_emit(benchmark, "fig9", scale)
    prec = report.data["precision"]
    rec = report.data["recall"]
    f1 = report.data["f1"]

    cen_p = np.asarray(prec["Centralized"])
    dec_p = np.asarray(prec["WhatsUp"])
    # global knowledge buys precision across the sweep (on average)
    assert cen_p.mean() > dec_p.mean()

    # the decentralized push keeps the recall advantage
    assert np.asarray(rec["WhatsUp"]).mean() > np.asarray(rec["Centralized"]).mean()

    # the F1 gap narrows with fanout: last-point gap below first-point gap
    gap = np.asarray(f1["WhatsUp"]) - np.asarray(f1["Centralized"])
    assert gap[-1] < gap[0] + 0.02

    # the cosine decentralized variant trails plain WhatsUp at small fanouts
    assert f1["WhatsUp"][0] >= f1["WhatsUp-Cos"][0] - 0.02
