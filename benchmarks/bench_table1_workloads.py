"""Table I: summary of the workloads.

Regenerates the three datasets and prints their dimensions; at
``REPRO_SCALE=paper`` the rows match the paper's 3180/750/480 users.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="table1")
def test_table1_workloads(benchmark, scale):
    report = run_and_emit(benchmark, "table1", scale)
    rows = {name: (users, items) for name, users, items in report.data["rows"]}
    assert set(rows) == {"Synthetic", "Digg", "WHATSUP Survey"}
    # the three workloads keep the paper's size ordering
    assert rows["Synthetic"][0] > rows["Digg"][0] > rows["WHATSUP Survey"][0]
    if scale.name == "paper":
        assert rows["Synthetic"][0] == 3180
        assert rows["Digg"] == (750, 2500)
        assert rows["WHATSUP Survey"] == (480, 1000)
