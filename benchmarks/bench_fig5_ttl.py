"""Figure 5: impact of the BEEP dislike TTL.

Paper claims: "Too low a TTL mostly impacts recall; yet values of TTL over
4 do not improve the quality of dissemination."

Reproduction targets: recall (and F1) gain from enabling the dislike path
(TTL 0 → small TTL); the curve saturates — large TTLs buy nothing.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig5")
def test_fig5_ttl_saturation(benchmark, scale):
    report = run_and_emit(benchmark, "fig5", scale)
    ttls = list(report.data["ttls"])
    recall = report.data["recall"]
    f1 = report.data["f1"]

    # enabling the dislike path buys recall
    assert recall[ttls.index(4)] > recall[ttls.index(0)]
    # saturation: going 4 -> 8 changes F1 by less than the 0 -> 4 gain
    gain_enable = abs(f1[ttls.index(4)] - f1[ttls.index(0)])
    gain_beyond = abs(f1[ttls.index(8)] - f1[ttls.index(4)])
    assert gain_beyond <= gain_enable + 0.02
