"""Extension benchmarks: churn robustness and the §VII privacy mechanisms."""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="extensions")
def test_ext_churn(benchmark, scale):
    report = run_and_emit(benchmark, "ext-churn", scale)
    rows = report.data["rows"]  # (label, kills, P, R, F1)
    by_label = {r[0]: r for r in rows}
    base_f1 = by_label["no churn"][4]
    mild = by_label["1%/cycle, rejoin=5"][4]
    # gossip absorbs mild churn with little quality loss
    assert mild > 0.8 * base_f1
    # permanent crashes hurt more than crash+rejoin at the same rate
    rejoining = by_label["3%/cycle, rejoin=5"][4]
    permanent = by_label["3%/cycle, rejoin=never"][4]
    assert permanent <= rejoining + 0.03


@pytest.mark.benchmark(group="extensions")
def test_ext_privacy(benchmark, scale):
    report = run_and_emit(benchmark, "ext-privacy", scale)
    rows = report.data["rows"]  # (label, P, R, F1, bw multiplier)
    by_label = {r[0]: r for r in rows}
    base = by_label["no privacy"]

    # obfuscation: graceful, monotone-ish degradation with the noise level
    light = by_label["obfuscation flip=0.05 suppress=0.1"][3]
    heavy = by_label["obfuscation flip=0.3 suppress=0.5"][3]
    assert light > 0.85 * base[3]
    assert heavy <= light + 0.02

    # onion routing: recommendation quality unchanged, bandwidth multiplied
    onion = by_label["onion routing, 2 relays"]
    assert abs(onion[3] - base[3]) < 0.03
    assert onion[4] > 2.5


@pytest.mark.benchmark(group="extensions")
def test_ext_latency(benchmark, scale):
    report = run_and_emit(benchmark, "ext-latency", scale)
    rows = {r[0]: r for r in report.data["rows"]}
    # (label, mean, median, p90, t-to-90%, F1)
    # liked news reaches its readers within a handful of cycles
    assert rows["whatsup"][1] < 8
    # heterogeneous slow links stretch latency but barely dent quality
    assert rows["whatsup (slow links)"][1] > rows["whatsup"][1]
    assert rows["whatsup (slow links)"][5] > 0.85 * rows["whatsup"][5]


@pytest.mark.benchmark(group="extensions")
def test_ext_drift_window_tradeoff(benchmark, scale):
    report = run_and_emit(benchmark, "ext-drift", scale)
    rows = report.data["rows"]  # (label, P, R, F1)
    f1s = [r[3] for r in rows]
    # §IV-D's claim materialises under drift: an interior window optimum —
    # the best mid window beats both the shortest and the longest
    best_mid = max(f1s[1:4])
    assert best_mid > f1s[0]
    assert best_mid >= f1s[-1]
