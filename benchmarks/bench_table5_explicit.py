"""Table V: WHATSUP vs explicit filtering (Cascading, C-Pub/Sub).

Paper rows:

    Digg    Cascade     P=0.57 R=0.09 F1=0.16   228k msgs
    Digg    WHATSUP     P=0.56 R=0.57 F1=0.57   705k
    Survey  C-Pub/Sub   P=0.40 R=1.0  F1=0.58   470k
    Survey  WHATSUP     P=0.47 R=0.83 F1=0.60   1.1M

Reproduction targets: cascade's recall collapse on comparable precision
(the explicit graph misses most interested users); C-Pub/Sub's perfect
recall with topic-granularity precision; WHATSUP's F1 ≥ both with more
messages.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="table5")
def test_table5_explicit_filtering(benchmark, scale):
    report = run_and_emit(benchmark, "table5", scale)
    data = report.data  # key -> (P, R, F1, messages)

    cas_p, cas_r, cas_f1, cas_msgs = data["digg/cascade"]
    wud_p, wud_r, wud_f1, wud_msgs = data["digg/whatsup"]
    # the explicit graph reaches a small fraction of the interested users
    assert cas_r < 0.5 * wud_r
    assert wud_f1 > cas_f1
    # cascade's few messages are the flip side of its tiny recall
    assert cas_msgs < wud_msgs

    ps_p, ps_r, ps_f1, ps_msgs = data["survey/c-pubsub"]
    wus_p, wus_r, wus_f1, wus_msgs = data["survey/whatsup"]
    # ideal pub/sub: complete dissemination at minimal message cost
    assert ps_r == pytest.approx(1.0, abs=0.02)
    assert ps_msgs < wus_msgs
    # implicit filtering trades a little recall for better-than-topic
    # precision; at paper scale the F1s are within a few points
    assert wus_r > 0.5
    assert wus_p > 0.25
