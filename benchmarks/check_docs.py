"""CI docs gate: the documentation front door must not rot.

Checks, over the repo's top-level markdown set (README.md,
ARCHITECTURE.md, PERFORMANCE.md, ROADMAP.md):

* every **relative link** resolves to an existing file or directory;
* every **intra-repo anchor** (``FILE.md#heading`` or ``#heading``)
  matches a real heading of the target document (GitHub slug rules:
  lowercase, spaces to hyphens, punctuation dropped);
* every fenced ``python`` code block in README.md actually **runs** —
  executed as a standalone script with the repo's ``src`` on the path,
  so the quickstart a new user pastes is permanently load-bearing.

Usage (the CI ``docs`` job)::

    PYTHONPATH=src python benchmarks/check_docs.py
    python benchmarks/check_docs.py --no-snippets   # links only

Exit status: 0 when everything resolves and runs, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOCS = ("README.md", "ARCHITECTURE.md", "PERFORMANCE.md", "ROADMAP.md")

#: markdown inline links: [text](target) — images and nested brackets are
#: out of scope for the front-door docs
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close-enough subset)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    return {
        github_slug(match.group(2))
        for match in _HEADING_RE.finditer(path.read_text())
    }


def check_links(doc: Path) -> list[str]:
    """All broken relative links / anchors of one document."""
    problems = []
    for target in _LINK_RE.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part)
        if not dest.exists():
            problems.append(f"{doc.name}: broken link -> {target}")
            continue
        if (
            anchor
            and dest.suffix == ".md"
            and github_slug(anchor) not in heading_slugs(dest)
        ):
            problems.append(
                    f"{doc.name}: dead anchor -> {target} "
                    f"(no such heading in {dest.name})"
                )
    return problems


def check_snippets(doc: Path) -> list[str]:
    """Execute every fenced python block of *doc* as a script."""
    problems = []
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    for i, match in enumerate(_FENCE_RE.finditer(doc.read_text()), 1):
        snippet = match.group(1)
        result = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
            timeout=600,
        )
        if result.returncode != 0:
            problems.append(
                f"{doc.name}: python snippet #{i} failed "
                f"(exit {result.returncode}):\n{result.stderr.strip()}"
            )
        else:
            print(f"[docs] {doc.name} snippet #{i}: ran ok")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-snippets",
        action="store_true",
        help="check links/anchors only (skip executing README snippets)",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    for name in DOCS:
        doc = REPO / name
        if not doc.exists():
            problems.append(f"{name}: missing (required front-door doc)")
            continue
        problems.extend(check_links(doc))
    if not args.no_snippets:
        problems.extend(check_snippets(REPO / "README.md"))

    for problem in problems:
        print(f"[docs] FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    if args.no_snippets:
        print("[docs] all links resolve (snippets skipped)")
    else:
        print("[docs] all links resolve, all snippets run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
