"""Table III: best operating point of each approach on the survey workload.

Paper rows (480 users):

    Gossip (f=4)              P=0.35 R=0.99 F1=0.51  4.6k msgs/user
    CF-Cos (k=29)             P=0.50 R=0.65 F1=0.57  5.9k
    CF-Wup (k=19)             P=0.45 R=0.85 F1=0.59  4.7k
    WHATSUP-Cos (fLIKE=24)    P=0.51 R=0.72 F1=0.60  4.3k
    WHATSUP (fLIKE=10)        P=0.47 R=0.83 F1=0.60  2.4k

Reproduction targets: the *ordering* (WHATSUP ≥ WHATSUP-Cos ≥ CF-Wup ≥
CF-Cos > Gossip on F1), gossip's saturated recall at the worst precision,
and WHATSUP needing fewer messages than gossip at its best point.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="table3")
def test_table3_survey_best(benchmark, scale):
    report = run_and_emit(benchmark, "table3", scale)
    best = report.data["best"]  # system -> (label, P, R, F1, msgs/user)

    def f1(system):
        return best[system][3]

    def precision(system):
        return best[system][1]

    def recall(system):
        return best[system][2]

    def msgs(system):
        return best[system][4]

    # gossip: near-total recall, precision at the like rate, F1 at the bottom
    assert recall("gossip") > 0.9
    assert f1("gossip") == min(f1(s) for s in best)
    # the WUP metric beats cosine inside the CF family
    assert f1("cf-wup") >= f1("cf-cos") - 0.02
    assert recall("cf-wup") > recall("cf-cos")
    # WHATSUP at its best point beats gossip on F1 with far fewer messages
    assert f1("whatsup") > f1("gossip")
    assert msgs("whatsup") < msgs("gossip")
    # and filtering works: precision well above gossip's like-rate baseline
    assert precision("whatsup") > precision("gossip") + 0.1
