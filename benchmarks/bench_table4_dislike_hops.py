"""Table IV: news received and liked via dislike forwards.

Paper distribution of the dislike counter at liked receptions:

    0: 54%   1: 31%   2: 10%   3: 3%   4: 2%

Reproduction targets: monotonically decreasing mass, a *substantial*
(>10%) share of liked deliveries owing at least one hop to the dislike
path — the paper's evidence that negative feedback carries items across
uninterested regions.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="table4")
def test_table4_dislike_distribution(benchmark, scale):
    report = run_and_emit(benchmark, "table4", scale)
    dist = report.data["distribution"]
    assert sum(dist.values()) == pytest.approx(1.0, abs=0.01)
    # decreasing mass over counter values
    values = [dist[k] for k in sorted(dist)]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:], strict=False))
    # the dislike path contributes a real share of useful deliveries
    via_dislike = 1.0 - dist[0]
    assert via_dislike > 0.10
