"""Figure 10: recall vs item popularity.

Paper claims: "WHATSUP performs better across most of the spectrum.
Nonetheless, its improvement is particularly marked for unpopular items
(0 to 0.5)" — niche content is where amplification + the dislike path beat
plain CF; recalls converge for very popular items.

Reproduction targets: WHATSUP ≥ CF-WUP on average, with the largest gaps
in the low-popularity bins; recall increases with popularity for both.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig10")
def test_fig10_recall_vs_popularity(benchmark, scale):
    report = run_and_emit(benchmark, "fig10", scale)
    centres = np.asarray(report.data["centres"])
    wu = np.asarray(report.data["recall"]["whatsup"], dtype=float)
    cf = np.asarray(report.data["recall"]["cf-wup"], dtype=float)
    frac = np.asarray(report.data["fraction"])

    populated = frac > 0
    assert populated.sum() >= 3

    # WHATSUP at least matches CF overall ...
    assert np.nanmean(wu[populated]) >= np.nanmean(cf[populated]) - 0.02
    # ... and wins hardest on unpopular items (the populated low half)
    low = populated & (centres < np.median(centres[populated]) + 1e-9)
    assert np.nanmean(wu[low]) > np.nanmean(cf[low])

    # recall grows with popularity for both systems
    assert np.nanmean(wu[populated][-2:]) > np.nanmean(wu[populated][:2])
