"""Shared fixtures and helpers for the benchmark suite.

Every benchmark reproduces one paper table/figure through the experiment
registry, prints the paper-shaped report, saves it under
``benchmarks/results/<exp_id>.txt`` and asserts the qualitative claims the
paper makes about that artifact.

Scale defaults to ``small`` (see ``repro.experiments.scale``); export
``REPRO_SCALE=medium`` or ``=paper`` before running for larger runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import get_scale, run_experiment
from repro.experiments.reporting import ExperimentReport

RESULTS_DIR = Path(__file__).parent / "results"

#: default seed for all benchmark runs (deterministic suite)
BENCH_SEED = 1


@pytest.fixture(scope="session")
def scale():
    """The scale profile for this benchmark session."""
    return get_scale()


def emit(report: ExperimentReport) -> None:
    """Print a report and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{report.exp_id}.txt").write_text(str(report) + "\n")
    print()
    print(report)


def run_and_emit(benchmark, exp_id: str, scale) -> ExperimentReport:
    """Run one registry experiment under pytest-benchmark and persist it.

    ``rounds=1``: these are macro-benchmarks (full simulations); the
    benchmark fixture records the wall time of a single complete
    reproduction of the artifact.
    """
    report = benchmark.pedantic(
        run_experiment, args=(exp_id, scale, BENCH_SEED), rounds=1, iterations=1
    )
    emit(report)
    return report
