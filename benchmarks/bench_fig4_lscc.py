"""Figure 4 + §V-A topology numbers: LSCC, fragmentation, clustering.

Paper claims:

* the WUP metric's overlay reaches a fully strongly-connected state at
  fanout ≈ 10; cosine needs ≥ 15;
* at fanout 3 the WUP-metric topologies have ~1.6-2.6 weak components vs
  ~12-14 for cosine;
* average clustering coefficient ~0.15 (WUP metric) vs ~0.40 (cosine).

Reproduction targets: LSCC grows with fanout for every system; at equal
fanout the WUP-metric overlay is better connected (higher LSCC, fewer
components) and less clustered than the cosine one.
"""

import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig4")
def test_fig4_topology(benchmark, scale):
    report = run_and_emit(benchmark, "fig4", scale)
    rows = report.data["rows"]

    def series(system, key):
        return [r[key] for r in rows if r["system"] == system]

    for system in ("whatsup", "whatsup-cos", "cf-wup", "cf-cos"):
        lscc = series(system, "lscc")
        assert lscc[-1] > lscc[0]  # connectivity grows with fanout

    # at the largest swept fanout the WUP overlay is (near) fully connected
    assert series("whatsup", "lscc")[-1] > 0.9
    # metric contrast: over the upper half of the sweep (the paper's
    # separation region — single smallest-fanout points are noisy at
    # reduced scale) the WUP metric yields the better-connected overlay
    def mean(xs):
        return sum(xs) / len(xs)

    half = len(series("whatsup", "lscc")) // 2
    assert mean(series("whatsup", "lscc")[half:]) >= mean(
        series("whatsup-cos", "lscc")[half:]
    ) - 0.03
    assert mean(series("cf-wup", "lscc")[half:]) > mean(
        series("cf-cos", "lscc")[half:]
    )
    # cosine's hub/clustering pathology needs paper-scale sparsity to show
    # in the absolute coefficients (see EXPERIMENTS.md); require only that
    # the WUP metric is not materially worse at reduced scale
    assert mean(series("whatsup", "clustering")) <= mean(
        series("whatsup-cos", "clustering")
    ) + 0.10
