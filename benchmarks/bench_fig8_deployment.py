"""Figure 8: simulation vs ModelNet vs PlanetLab, and the bandwidth split.

Paper claims:

* (8a) ModelNet tracks simulation closely; PlanetLab collapses at small
  fanouts (overloaded nodes drop up to 30% of deliveries) and recovers
  with redundancy at fanout ≥ 6;
* (8b) bandwidth grows linearly with fanout and is dominated by BEEP
  (news) rather than WUP (view management); at 30-second cycles the totals
  are in the tens of Kbps.

Reproduction targets: the three-way ordering at small fanout
(simulation ≈ ModelNet > PlanetLab), convergence at large fanout, and the
BEEP-dominant, fanout-increasing bandwidth split.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig8")
def test_fig8_deployment_and_bandwidth(benchmark, scale):
    report = run_and_emit(benchmark, "fig8", scale)
    f1 = report.data["f1"]
    fanouts = report.data["fanouts"]

    sim = np.asarray(f1["Simulation"])
    modelnet = np.asarray(f1["ModelNet"])
    planetlab = np.asarray(f1["PlanetLab"])

    # ModelNet stays close to simulation everywhere
    assert np.abs(sim - modelnet).mean() < 0.08
    # PlanetLab hurts at the smallest fanouts ...
    assert planetlab[0] < sim[0]
    # ... and redundancy closes most of the gap at the largest fanout
    assert sim[-1] - planetlab[-1] < 0.12

    # Figure 8b: bandwidth rows are (fanout, total, wup, beep)
    bw = report.data["bandwidth"]
    totals = [row[1] for row in bw]
    beeps = [row[3] for row in bw]
    wups = [row[2] for row in bw]
    assert totals[-1] > totals[0]  # grows with fanout
    # news dissemination dominates view management at the larger fanouts
    assert beeps[-1] > wups[-1]
