"""Figure 6: dissemination actions by hop distance (fLIKE = 5).

Paper claims: a bell-shaped histogram — "most dissemination actions are
carried out within a few hops of the source, with an average around 5" —
plus "a non-negligible number of infections being due to dislike
operations".

Reproduction targets: the bell shape (rise then decay), a single-digit
mean hop distance, and a visible dislike-infection series.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_and_emit


@pytest.mark.benchmark(group="fig6")
def test_fig6_hop_histogram(benchmark, scale):
    report = run_and_emit(benchmark, "fig6", scale)
    inf_like = np.asarray(report.data["infections_by_like"])
    inf_dislike = np.asarray(report.data["infections_by_dislike"])
    mean_hops = report.data["mean_hops"]

    total = inf_like + inf_dislike
    peak = int(total.argmax())
    # bell: the peak is past hop 0 and the tail decays
    assert 1 <= peak <= 8
    assert total[-1] < total[peak]
    # news travels only a few hops on average
    assert 1.5 <= mean_hops <= 9.0
    # the dislike path causes a non-negligible share of infections
    assert inf_dislike.sum() > 0.03 * total.sum()
