"""Unit tests for WhatsUpNode (Algorithm 1) and the cold-start procedure."""

from __future__ import annotations

import pytest

from repro.core import WhatsUpConfig, WhatsUpNode, WhatsUpSystem
from repro.core.coldstart import bootstrap_from_contact, popular_items_in_views
from repro.core.news import ItemCopy, NewsItem
from repro.core.profiles import FrozenProfile
from repro.datasets import synthetic_dataset
from repro.gossip.views import ViewEntry
from repro.network.message import MessageKind
from repro.simulation.engine import CycleEngine
from repro.simulation.schedule import PublicationSchedule
from repro.utils.rng import RngStreams
from tests.conftest import make_item_profile


class _Always:
    """Constant opinion oracle; a class instance so it pickles into the
    shard workers when the suite runs under a forced ``REPRO_SHARDS``."""

    def __init__(self, liked: bool) -> None:
        self.liked = liked

    def __call__(self, node_id, item) -> bool:
        return self.liked


def always(liked: bool):
    return _Always(liked)


def make_node(node_id=0, opinion=None, seed=0, **cfg) -> WhatsUpNode:
    config = WhatsUpConfig(**({"f_like": 3} | cfg))
    return WhatsUpNode(
        node_id, config, opinion or always(True), RngStreams(seed)
    )


def engine_for(nodes, items=()):
    sched = PublicationSchedule(list(items))
    return CycleEngine(nodes, sched, streams=RngStreams(5))


def item(n=0, cycle=0):
    return NewsItem.publish(source=0, created_at=cycle, title=f"t{n}")


class TestAlgorithm1Receive:
    def test_like_updates_profile_and_item_profile(self):
        node = make_node(opinion=always(True))
        node.profile.record_opinion(50, 0, True)  # pre-existing opinion
        it = item()
        copy = ItemCopy(item=it, profile=make_item_profile({}))
        eng = engine_for([node], [(0, it)])
        node.receive_item(copy, True, eng, now=0)
        # like recorded
        assert node.profile.score_of(it.item_id) == 1.0
        # pre-update profile folded into the item profile...
        assert copy.profile.score_of(50) == 1.0
        # ...which therefore does NOT contain the item itself (Algorithm 1
        # integrates before line 5 records the like)
        assert it.item_id not in copy.profile

    def test_dislike_updates_profile_not_item_profile(self):
        node = make_node(opinion=always(False))
        node.profile.record_opinion(50, 0, True)
        it = item()
        copy = ItemCopy(item=it, profile=make_item_profile({}))
        eng = engine_for([node], [(0, it)])
        node.receive_item(copy, True, eng, now=0)
        assert node.profile.score_of(it.item_id) == 0.0
        assert 50 not in copy.profile  # dislikers do not aggregate

    def test_duplicate_receipt_dropped(self):
        node = make_node()
        it = item()
        eng = engine_for([node], [(0, it)])
        node.receive_item(
            ItemCopy(item=it, profile=make_item_profile({})), True, eng, 0
        )
        node.receive_item(
            ItemCopy(item=it, profile=make_item_profile({})), True, eng, 1
        )
        assert eng.log.duplicates == 1
        assert eng.log.n_deliveries == 1

    def test_item_profile_window_purged_before_forward(self):
        node = make_node(opinion=always(True), profile_window=5)
        it = item(cycle=20)
        copy = ItemCopy(
            item=it, profile=make_item_profile({1: 1.0}, timestamp=2)
        )
        eng = engine_for([node], [(20, it)])
        node.receive_item(copy, True, eng, now=20)
        assert 1 not in copy.profile  # ts 2 < 20 - 5

    def test_delivery_logged_with_copy_metadata(self):
        node = make_node(opinion=always(True))
        it = item()
        copy = ItemCopy(item=it, profile=make_item_profile({}), dislikes=2, hops=7)
        eng = engine_for([node], [(0, it)])
        node.receive_item(copy, False, eng, now=3)
        arr = eng.log.arrays()
        assert arr["d_hops"].tolist() == [7]
        assert arr["d_dislikes"].tolist() == [2]
        assert arr["d_liked"].tolist() == [True]
        assert arr["d_via_like"].tolist() == [False]


class TestAlgorithm1Publish:
    def test_publish_records_like_and_seeds_item_profile(self):
        node = make_node()
        node.profile.record_opinion(50, 0, True)
        it = item()
        eng = engine_for([node], [(0, it)])
        node.publish(it, eng, now=0)
        assert node.profile.score_of(it.item_id) == 1.0
        assert it.item_id in node.seen
        # source's fresh item profile includes the item itself (line 14
        # precedes the integration loop)
        arr = eng.log.arrays()
        assert arr["d_hops"].tolist() == [0]

    def test_publish_forwards_to_wup_targets(self):
        node = make_node(f_like=2)
        for nid in (5, 6, 7):
            node.wup.view.upsert(
                ViewEntry(nid, "a", FrozenProfile({}, is_binary=True), 0)
            )
        peers = [make_node(node_id=i) for i in (5, 6, 7)]
        it = item()
        eng = engine_for([node, *peers], [(0, it)])
        node.publish(it, eng, now=0)
        assert eng.stats.sent[MessageKind.ITEM] == 2


class TestGossipIntegration:
    def test_begin_cycle_initiates_both_layers(self):
        a = make_node(node_id=0)
        b = make_node(node_id=1, seed=1)
        # wire views so both protocols have partners
        for view in (a.rps.view, a.wup.view):
            view.upsert(ViewEntry(1, "x", FrozenProfile({}, is_binary=True), 0))
        eng = engine_for([a, b], [(0, item())])
        a.begin_cycle(eng, now=0)
        assert eng.stats.sent[MessageKind.RPS] >= 1
        assert eng.stats.sent[MessageKind.WUP] >= 1

    def test_profile_window_purge_on_cycle(self):
        node = make_node(profile_window=5)
        node.profile.record_opinion(1, 0, True)
        node.profile.record_opinion(2, 18, True)
        eng = engine_for([node], [(0, item())])
        node.begin_cycle(eng, now=20)
        assert 1 not in node.profile  # 0 < 20-5
        assert 2 in node.profile

    def test_gossip_periods_respected(self):
        node = make_node(rps_every=2, wup_every=3)
        node.rps.view.upsert(ViewEntry(1, "x", FrozenProfile({}, is_binary=True), 0))
        node.wup.view.upsert(ViewEntry(1, "x", FrozenProfile({}, is_binary=True), 0))
        peer = make_node(node_id=1, seed=2)
        eng = engine_for([node, peer], [(0, item())])
        node.begin_cycle(eng, now=1)  # 1 % 2 != 0 and 1 % 3 != 0
        assert eng.stats.sent[MessageKind.RPS] == 0
        assert eng.stats.sent[MessageKind.WUP] == 0
        node.begin_cycle(eng, now=2)
        assert eng.stats.sent[MessageKind.RPS] >= 1

    def test_on_gossip_replies(self):
        a = make_node(node_id=0)
        from repro.gossip.rps import RpsMessage

        msg = RpsMessage(
            sender=9,
            entries=(ViewEntry(9, "x", FrozenProfile({}, is_binary=True), 1),),
            is_request=True,
        )
        eng = engine_for([a], [(0, item())])
        reply = a.on_gossip(msg, MessageKind.RPS, eng, now=1)
        assert reply is not None and not reply.is_request
        assert 9 in a.rps.view


class TestColdStart:
    def _system(self):
        ds = synthetic_dataset(
            n_users=40, n_communities=4, items_per_community=5, seed=2
        )
        return WhatsUpSystem(ds, WhatsUpConfig(f_like=3), seed=7), ds

    def test_popular_items_ranked_by_view_likes(self):
        node = make_node()
        node.rps.view.upsert(
            ViewEntry(1, "a", FrozenProfile({10: 1.0, 11: 1.0}, is_binary=True), 0)
        )
        node.rps.view.upsert(
            ViewEntry(2, "b", FrozenProfile({10: 1.0}, is_binary=True), 0)
        )
        assert popular_items_in_views(node, k=2) == [10, 11]

    def test_bootstrap_inherits_views_and_rates_popular(self):
        system, ds = self._system()
        system.run(10, drain=False)
        joiner = system.join_node(ds.n_users + 1, opinion=always(True))
        assert len(joiner.rps.view) > 0
        assert len(joiner.profile) <= 3
        assert len(joiner.profile) > 0  # peers have rated items by cycle 10

    def test_bootstrap_respects_n_popular(self):
        a = make_node(node_id=0)
        b = make_node(node_id=1, seed=3)
        b.rps.view.upsert(
            ViewEntry(
                5,
                "x",
                FrozenProfile({i: 1.0 for i in range(10)}, is_binary=True),
                0,
            )
        )
        rated = bootstrap_from_contact(a, b, now=4, n_popular=2)
        assert len(rated) == 2

    def test_join_node_unknown_id_requires_oracle(self):
        system, ds = self._system()
        with pytest.raises(Exception, match="opinion"):
            system.join_node(ds.n_users + 1)

    def test_joiner_participates_in_dissemination(self):
        system, ds = self._system()
        system.run(5, drain=False)
        joiner = system.join_node(999, opinion=always(True))
        system.run(20, drain=True)
        assert len(joiner.seen) > 0  # items reached the newcomer


class TestWhatsUpSystem:
    def test_all_nodes_seeded_with_views(self):
        system, _ = TestColdStart()._system()
        for node in system.nodes:
            assert len(node.rps.view) > 0
            assert len(node.wup.view) > 0

    def test_run_drains_in_flight_items(self):
        system, _ = TestColdStart()._system()
        system.run()
        assert system.engine.pending_item_messages() == 0

    def test_deterministic_runs(self):
        def run_once():
            ds = synthetic_dataset(
                n_users=30, n_communities=3, items_per_community=4, seed=2
            )
            system = WhatsUpSystem(ds, WhatsUpConfig(f_like=3), seed=11)
            system.run()
            return (
                system.log.n_deliveries,
                system.log.duplicates,
                system.stats.item_messages(),
            )

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        ds = synthetic_dataset(
            n_users=30, n_communities=3, items_per_community=4, seed=2
        )
        runs = set()
        for seed in (1, 2, 3):
            system = WhatsUpSystem(ds, WhatsUpConfig(f_like=3), seed=seed)
            system.run()
            runs.add(system.log.n_deliveries)
        assert len(runs) > 1

    def test_every_item_delivered_at_least_to_source(self):
        system, ds = TestColdStart()._system()
        system.run()
        reached = system.log.reached_matrix(ds.n_users, ds.n_items)
        assert (reached.sum(axis=0) >= 1).all()

    def test_seen_consistent_with_log(self):
        system, ds = TestColdStart()._system()
        system.run()
        total_seen = sum(len(n.seen) for n in system.nodes)
        assert total_seen == system.log.n_deliveries
