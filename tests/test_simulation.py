"""Unit tests for schedules and dissemination logs."""

from __future__ import annotations

import pytest

from repro.core.news import NewsItem
from repro.simulation.events import DisseminationLog
from repro.simulation.schedule import PublicationSchedule
from repro.utils.exceptions import ConfigurationError


def items(n: int, publish_cycles: int = 5) -> list[NewsItem]:
    return [
        NewsItem.publish(
            source=i % 3,
            created_at=PublicationSchedule.publication_cycle_of(i, n, publish_cycles),
            title=f"item-{i}",
        )
        for i in range(n)
    ]


class TestPublicationSchedule:
    def test_uniform_spreads_all_items(self):
        sched = PublicationSchedule.uniform(items(10), publish_cycles=5)
        total = sum(len(sched.items_at(c)) for c in range(5))
        assert total == 10
        assert sched.n_items == 10

    def test_uniform_balanced(self):
        sched = PublicationSchedule.uniform(items(10), publish_cycles=5)
        for c in range(5):
            assert len(sched.items_at(c)) == 2

    def test_items_at_empty_cycle(self):
        sched = PublicationSchedule.uniform(items(2, 1), publish_cycles=1)
        assert sched.items_at(99) == []

    def test_last_cycle(self):
        sched = PublicationSchedule.uniform(items(10), publish_cycles=5)
        assert sched.last_cycle == 4

    def test_index_of_is_dense_and_ordered(self):
        its = items(6)
        sched = PublicationSchedule.uniform(its, publish_cycles=5)
        for i, item in enumerate(its):
            assert sched.index_of(item.item_id) == i

    def test_duplicate_item_rejected(self):
        it = items(1, 1)[0]
        with pytest.raises(ConfigurationError, match="duplicate"):
            PublicationSchedule([(0, it), (1, it)])

    def test_negative_cycle_rejected(self):
        it = items(1, 1)[0]
        with pytest.raises(ConfigurationError):
            PublicationSchedule([(-1, it)])

    def test_zero_publish_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            PublicationSchedule.uniform(items(3, 1), publish_cycles=0)

    def test_publication_cycle_of_monotone(self):
        cycles = [
            PublicationSchedule.publication_cycle_of(i, 100, 10) for i in range(100)
        ]
        assert cycles == sorted(cycles)
        assert min(cycles) == 0 and max(cycles) == 9


class TestDisseminationLog:
    def test_log_and_arrays(self):
        log = DisseminationLog()
        log.log_delivery(0, 5, 1, 2, 1, True, True)
        log.log_delivery(1, 6, 2, 0, 0, False, False)
        log.log_forward(0, 5, 1, 2, True, 3)
        arr = log.arrays()
        assert arr["d_item"].tolist() == [0, 1]
        assert arr["d_liked"].tolist() == [True, False]
        assert arr["f_targets"].tolist() == [3]
        assert log.n_deliveries == 2
        assert log.n_forwards == 1

    def test_duplicates_counted(self):
        log = DisseminationLog()
        log.log_duplicate()
        log.log_duplicate()
        assert log.duplicates == 2

    def test_arrays_cache_invalidated_on_append(self):
        log = DisseminationLog()
        log.log_delivery(0, 1, 0, 0, 0, True, True)
        first = log.arrays()
        log.log_delivery(1, 2, 0, 0, 0, True, True)
        assert len(log.arrays()["d_item"]) == 2
        assert len(first["d_item"]) == 1  # old snapshot unchanged

    def test_reached_matrix(self):
        log = DisseminationLog()
        log.log_delivery(0, 1, 0, 0, 0, True, True)
        log.log_delivery(2, 3, 0, 0, 0, False, True)
        reached = log.reached_matrix(n_nodes=4, n_items=3)
        assert reached.shape == (4, 3)
        assert reached[1, 0] and reached[3, 2]
        assert reached.sum() == 2

    def test_reached_matrix_empty(self):
        reached = DisseminationLog().reached_matrix(3, 2)
        assert not reached.any()
