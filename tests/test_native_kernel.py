"""Native kernel (:mod:`repro._native`) unit, parity and gating tests.

The compiled tier must be **bitwise-identical** to the scalar metrics and
to the Python trim/argmax selections — every parity assertion below uses
``==`` on floats, never approx.  On boxes without a C toolchain (or with
``REPRO_NATIVE=0`` set) the whole module degrades to the gating tests
that prove the pure-Python fallback stays in charge.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro._native import (
    ensure_built,
    kernel,
    native_available,
    native_kernel,
    native_kernel_enabled,
    set_native_kernel,
)
from repro.core.profiles import FrozenProfile, UserProfile
from repro.core.similarity import (
    cosine_similarity,
    jaccard_similarity,
    overlap_similarity,
    score_candidates,
    wup_similarity,
)
from repro.gossip.views import View, ViewEntry
from tests.conftest import make_item_profile, make_user_profile

#: Build the extension in place when a toolchain is available, unless the
#: user explicitly disabled the native tier for this run.  The no-compiler
#: CI leg (fresh checkout, REPRO_NATIVE=0) skips every parity test below
#: and still exercises the graceful-fallback assertions.
if os.environ.get("REPRO_NATIVE", "1").lower() in ("0", "false", "no", "off"):
    NK = None
else:
    NK = ensure_built()

needs_native = pytest.mark.skipif(
    NK is None, reason="native kernel unavailable (no cffi/C toolchain)"
)


@pytest.fixture(autouse=True)
def _native_on():
    """Pin the native gate on (restored on exit) for the parity tests."""
    with native_kernel(True):
        yield


def binary_pool(seed: int = 0, k: int = 12) -> list[FrozenProfile]:
    """A varied binary pool: overlapping, disjoint, empty, dislike-heavy."""
    rng = np.random.default_rng(seed)
    pool = []
    for _j in range(k):
        profile = UserProfile()
        for iid in rng.integers(0, 40, size=int(rng.integers(0, 12))):
            profile.record_opinion(int(iid), 0, bool(rng.integers(0, 2)))
        pool.append(profile.snapshot())
    pool.append(UserProfile().snapshot())  # empty profile, norm 0
    only_dislikes = UserProfile()
    for iid in (1, 2, 3):
        only_dislikes.record_opinion(iid, 0, False)
    pool.append(only_dislikes.snapshot())  # rated but norm 0
    return pool


class TestScoreProfilesParity:
    """One C call per pool must equal the scalar metric pair-by-pair."""

    @needs_native
    @pytest.mark.parametrize(
        "metric_fn,code",
        [
            (wup_similarity, 0),
            (cosine_similarity, 2),
            (jaccard_similarity, 3),
            (overlap_similarity, 4),
        ],
    )
    def test_owner_as_chooser_bitwise(self, metric_fn, code):
        owner = make_user_profile([1, 5, 9, 14], [2, 7]).snapshot()
        pool = binary_pool()
        out = NK.score_profiles(owner, pool, code)
        assert out is not None
        assert out.tolist() == [metric_fn(owner, c) for c in pool]

    @needs_native
    def test_wup_owner_as_candidate_bitwise(self):
        owner = make_user_profile([1, 5, 9, 14], [2, 7]).snapshot()
        pool = binary_pool(seed=3)
        out = NK.score_profiles(owner, pool, 1)
        assert out is not None
        assert out.tolist() == [wup_similarity(c, owner) for c in pool]

    @needs_native
    @pytest.mark.parametrize(
        "metric_fn,code", [(wup_similarity, 5), (cosine_similarity, 6)]
    )
    def test_item_owner_orientation_bitwise(self, metric_fn, code):
        # BEEP's orientation: real-valued item profile as candidate side
        item = make_item_profile({1: 0.75, 5: 0.5, 9: 1.0, 11: 0.0, 30: 0.25})
        pool = binary_pool(seed=7)
        out = NK.score_profiles(item, pool, code)
        assert out is not None
        assert out.tolist() == [metric_fn(c, item) for c in pool]

    @needs_native
    def test_zero_norm_item_scores_zero(self):
        item = make_item_profile({1: 0.0, 2: 0.0})
        pool = binary_pool(seed=1)
        out = NK.score_profiles(item, pool, 5)
        assert out is not None and out.tolist() == [0.0] * len(pool)

    @needs_native
    def test_lazy_snapshot_descriptor_filled_from_c(self):
        owner = make_user_profile([1, 2]).snapshot()
        cand = make_user_profile([2, 3]).snapshot()
        assert cand._nd is None  # packed lazily
        out = NK.score_profiles(owner, [cand], 0)
        assert out is not None
        assert cand._nd is not None  # the kernel triggered _pack()
        assert out.tolist() == [wup_similarity(owner, cand)]

    @needs_native
    def test_mutable_profiles_resolve_via_packed(self):
        owner = make_user_profile([1, 2, 3])  # mutable UserProfile
        pool = [make_user_profile([2, 3, 4]), make_user_profile([9])]
        out = NK.score_profiles(owner, pool, 0)
        assert out is not None
        assert out.tolist() == [wup_similarity(owner, c) for c in pool]

    @needs_native
    def test_non_binary_pool_member_falls_back(self):
        owner = make_user_profile([1, 2]).snapshot()
        pool = [make_user_profile([2]).snapshot(), make_item_profile({2: 0.5})]
        assert NK.score_profiles(owner, pool, 0) is None  # wup needs binary
        # ...but the liked-set metrics take any profile shape
        out = NK.score_profiles(owner, pool, 3)
        assert out is not None
        assert out.tolist() == [jaccard_similarity(owner, c) for c in pool]

    @needs_native
    def test_foreign_objects_fall_back_cleanly(self):
        owner = make_user_profile([1]).snapshot()
        assert NK.score_profiles(owner, [object()], 0) is None
        assert NK.score_profiles(object(), [owner], 0) is None
        assert NK.score_profiles(owner, [owner], 99) is not None  # unknown
        # unknown codes score 0.0 (defensive); dispatch never emits them


class TestMergeRankParity:
    """The fused score+trim must match the Python trim's kept dict exactly."""

    @staticmethod
    def entries(profiles, timestamps):
        return [
            ViewEntry(100 + i, "a", p, ts)
            for i, (p, ts) in enumerate(zip(profiles, timestamps, strict=True))
        ]

    @needs_native
    def test_matches_trim_ranked_aligned(self):
        owner = make_user_profile([1, 5, 9, 14, 20], [2]).snapshot()
        pool = binary_pool(seed=5)
        rng = np.random.default_rng(2)
        entries = self.entries(pool, rng.integers(0, 6, len(pool)).tolist())
        capacity = 5

        keep = NK.merge_rank(owner, entries, 0, capacity)
        assert keep is not None

        reference = View(capacity, owner_id=0)
        reference.upsert_all(entries)
        scores = [wup_similarity(owner, e.profile) for e in entries]
        reference.trim_ranked_aligned(entries, scores)

        kept = [entries[i] for i in keep.tolist()]
        assert [e.node_id for e in kept] == reference.node_ids()

    @needs_native
    def test_tie_break_order_is_timestamp_then_node_id(self):
        owner = make_user_profile([1]).snapshot()
        same = make_user_profile([1]).snapshot()  # identical scores
        entries = [
            ViewEntry(3, "a", same, 5),
            ViewEntry(7, "a", same, 9),
            ViewEntry(4, "a", same, 9),
        ]
        keep = NK.merge_rank(owner, entries, 0, 2)
        # all scores tie: freshest timestamp first, then smaller node id
        assert [entries[i].node_id for i in keep.tolist()] == [4, 7]

    @needs_native
    def test_capacity_at_least_pool_keeps_everything(self):
        owner = make_user_profile([1]).snapshot()
        entries = self.entries(binary_pool(seed=8), [0] * 14)
        keep = NK.merge_rank(owner, entries, 0, 50)
        assert keep is not None and len(keep) == len(entries)


class TestSelectionKernels:
    @needs_native
    def test_item_argmax_matches_flatnonzero(self):
        item = make_item_profile({1: 0.9, 5: 0.4, 9: 0.7})
        pool = binary_pool(seed=11)
        tied = NK.item_argmax(item, pool, 5)
        assert tied is not None
        scores = np.array([wup_similarity(c, item) for c in pool])
        assert tied.tolist() == np.flatnonzero(scores == scores.max()).tolist()

    @needs_native
    def test_item_argmax_all_zero_ties_everyone(self):
        item = make_item_profile({999: 1.0})  # matches nobody
        pool = binary_pool(seed=13)
        tied = NK.item_argmax(item, pool, 5)
        assert tied is not None
        assert tied.tolist() == list(range(len(pool)))

    @needs_native
    def test_rank_topk_matches_tuple_sort(self):
        rng = np.random.default_rng(3)
        scores = rng.random(40)
        scores[7] = scores[21]  # force a score tie
        ts = rng.integers(0, 8, 40).astype(np.int64)
        nids = np.arange(40, dtype=np.int64)
        out = NK.rank_topk(scores, ts, nids, 12)
        rows = sorted(
            ((scores[i], int(ts[i]), -i, i) for i in range(40)), reverse=True
        )
        assert out.tolist() == [r[3] for r in rows[:12]]

    @needs_native
    def test_argmax_ties(self):
        s = np.array([0.5, 2.0, 2.0, 1.0, 2.0])
        assert NK.argmax_ties(s).tolist() == [1, 2, 4]


class TestDispatchIntegration:
    @needs_native
    def test_score_candidates_native_equals_python_tiers(self):
        owner = make_user_profile(list(range(0, 30, 2)), [1, 3]).snapshot()
        pool = binary_pool(seed=17, k=30)
        with native_kernel(True):
            native_scores = score_candidates(owner, pool, "wup")
        with native_kernel(False):
            python_scores = score_candidates(owner, pool, "wup")
        assert native_scores == python_scores

    def test_gate_setter_returns_previous(self):
        previous = set_native_kernel(False)
        try:
            assert set_native_kernel(previous) is False
        finally:
            set_native_kernel(previous)

    def test_context_manager_restores_on_error(self):
        before = native_kernel_enabled()
        with pytest.raises(RuntimeError), native_kernel(not before):
            raise RuntimeError("boom")
        assert native_kernel_enabled() == before

    def test_kernel_none_when_gate_off(self):
        with native_kernel(False):
            assert kernel() is None
            assert not native_kernel_enabled()

    def test_missing_extension_degrades_gracefully(self):
        # whatever the build state, the gate never raises and enabled()
        # implies availability
        assert native_kernel_enabled() == (
            native_available() and native_kernel_enabled()
        )
        if not native_available():
            with native_kernel(True):
                assert kernel() is None


class TestStatePlaneKernels:
    """The ArrayView bookkeeping kernels vs their Python equivalents."""

    @staticmethod
    def _array_view(capacity=8, owner=99, n=12, seed=4):
        from repro.gossip.views import ArrayView

        rng = np.random.default_rng(seed)
        v = ArrayView(capacity, owner_id=owner)
        entries = [
            ViewEntry(
                int(nid),
                f"10.0.0.{int(nid)}",
                FrozenProfile({int(nid): 1.0}, is_binary=True),
                int(rng.integers(0, 10)),
            )
            for nid in rng.choice(500, size=n, replace=False)
        ]
        v.upsert_all(entries)
        return v

    @needs_native
    def test_state_oldest_matches_python_min(self):
        v = self._array_view()
        with native_kernel(True):
            native_pick = v.oldest()
        with native_kernel(False):
            python_pick = v.oldest()
        assert native_pick == python_pick

    @needs_native
    def test_state_find_matches_index(self):
        v = self._array_view()
        nid = v.node_ids()[3]
        assert NK.state_find(v._cols_addr, v._alloc, len(v), nid) == 3
        assert NK.state_find(v._cols_addr, v._alloc, len(v), 10**6) == -1

    @needs_native
    def test_state_upsert_equals_python_loop(self):
        from repro.gossip.views import ArrayView

        rng = np.random.default_rng(9)
        base = [
            ViewEntry(i, "a", FrozenProfile({i: 1.0}, is_binary=True), i)
            for i in rng.choice(40, size=10, replace=False)
        ]
        # incoming batch with in-batch duplicates, owner rows, stale rows
        inc = [
            ViewEntry(
                int(nid),
                "b",
                FrozenProfile({int(nid): 1.0, 7: 1.0}, is_binary=True),
                int(ts),
            )
            for nid, ts in zip(
                rng.choice(45, size=14, replace=True),
                rng.integers(0, 20, size=14),
                strict=True,
            )
        ]
        inc.append(ViewEntry(99, "o", FrozenProfile({}, is_binary=True), 50))
        cols_arr = np.empty((3, len(inc)), dtype=np.int64)
        cols_arr[0] = [e.node_id for e in inc]
        cols_arr[1] = [e.timestamp for e in inc]
        cols_arr[2] = [0] * len(inc)
        via_kernel = ArrayView(8, owner_id=99)
        via_kernel.upsert_all(base)
        with native_kernel(True):
            via_kernel.upsert_columns(
                tuple(inc), (cols_arr, len(inc), len(inc))
            )
        via_python = ArrayView(8, owner_id=99)
        via_python.upsert_all(base)
        with native_kernel(False):
            via_python.upsert_all(inc)
        assert via_kernel.entries() == via_python.entries()
        assert via_kernel.node_ids() == via_python.node_ids()

    @needs_native
    def test_state_select_reorders_and_releases(self):
        import sys

        v = self._array_view(n=10)
        entries = v.entries()
        dropped = entries[0]
        refs_before = sys.getrefcount(dropped)
        sel = np.array([3, 1, 2], dtype=np.int64)
        kept_expect = [entries[3], entries[1], entries[2]]
        assert NK.state_select(
            v._cols_addr, v._alloc, v._pobj_addr, len(v), sel, sel.size
        )
        v._n = sel.size
        v._mutations += 1
        assert v.entries() == kept_expect
        assert v.node_ids() == [e.node_id for e in kept_expect]
        # dropped payload references were released by the kernel
        assert sys.getrefcount(dropped) < refs_before

    @needs_native
    def test_state_trim_drop_equals_mask_compaction(self):
        from repro.gossip.views import ArrayView

        rng = np.random.default_rng(21)
        shared = [
            ViewEntry(
                int(nid),
                "a",
                FrozenProfile({int(nid): 1.0}, is_binary=True),
                int(rng.integers(0, 10)),
            )
            for nid in rng.choice(500, size=12, replace=False)
        ]
        v1 = ArrayView(8, owner_id=99)
        v1.upsert_all(shared)
        v2 = ArrayView(8, owner_id=99)
        v2.upsert_all(shared)
        drop = np.array([0, 5, 11], dtype=np.int64)
        new_n = NK.state_trim_drop(
            v1._cols_addr, v1._alloc, v1._pobj_addr, len(v1), drop, drop.size
        )
        assert new_n == 9
        v1._n = new_n
        v1._mutations += 1
        keep = np.array(
            [i for i in range(12) if i not in (0, 5, 11)], dtype=np.int64
        )
        with native_kernel(False):
            v2._select(keep)
        assert v1.entries() == v2.entries()
        assert v1.node_ids() == v2.node_ids()

    @needs_native
    def test_state_ship_wire_total_matches_walk(self):
        from repro.gossip.views import descriptor_wire_size

        v = self._array_view(n=9, seed=8)
        own = ViewEntry(99, "o", FrozenProfile({1: 1.0}, is_binary=True), 7)
        shipped, cols, wire = v.ship_all_except(
            v.node_ids()[2], own, 99, 7
        )
        assert len(shipped) == 8
        assert wire == 1 + descriptor_wire_size(own) + sum(
            descriptor_wire_size(e) for e in shipped
        )
        arr, stride, count = cols
        assert count == 9 and stride == 9
        assert arr[0, 0] == 99 and arr[1, 0] == 7

    @needs_native
    def test_state_ship_selected_bumps_past_exclusion(self):
        v = self._array_view(n=9, seed=8)
        ids = v.node_ids()
        excl_slot = 4
        own = ViewEntry(99, "o", FrozenProfile({}, is_binary=True), 3)
        sel = np.array([2, 4, 6], dtype=np.int64)  # candidate indices
        shipped, cols, _wire = v.ship_selected(sel, excl_slot, own, 99, 3)
        # candidates at/after the excluded slot map to slot+1
        assert [e.node_id for e in shipped] == [ids[2], ids[5], ids[7]]
        arr, _stride, _count = cols
        assert list(arr[0, 1:]) == [ids[2], ids[5], ids[7]]
