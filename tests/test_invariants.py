"""System-level invariants that must hold for every protocol and workload.

These pin down the simulation's *semantic* correctness: SIR delivery
uniqueness, TTL bounds, hop/cycle consistency, message conservation —
properties that hold regardless of parameters and would silently corrupt
every metric if violated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WhatsUpConfig
from repro.datasets import digg_dataset, survey_dataset, synthetic_dataset
from repro.experiments import build_system
from repro.network.message import MessageKind
from repro.network.transport import UniformLossTransport


SYSTEMS = ("whatsup", "whatsup-cos", "cf-wup", "gossip", "c-whatsup")


@pytest.fixture(scope="module")
def workload():
    return survey_dataset(n_base_users=50, n_base_items=60, seed=6, publish_cycles=20)


@pytest.fixture(scope="module", params=SYSTEMS)
def finished_system(request, workload):
    system = build_system(request.param, workload, fanout=5, seed=4)
    system.run()
    return system


class TestDeliveryInvariants:
    def test_at_most_one_delivery_per_user_item(self, finished_system):
        arr = finished_system.log.arrays()
        pairs = set(zip(arr["d_node"].tolist(), arr["d_item"].tolist(), strict=True))
        assert len(pairs) == finished_system.log.n_deliveries

    def test_publisher_counted_at_hop_zero(self, finished_system, workload):
        arr = finished_system.log.arrays()
        zero_hops = arr["d_hops"] == 0
        # exactly one hop-0 delivery per published item (its source)
        assert zero_hops.sum() == workload.n_items
        sources = {it.source for it in workload.items}
        assert set(arr["d_node"][zero_hops].tolist()) <= sources

    def test_hops_equal_cycles_since_publication(self, finished_system, workload):
        # one hop per cycle: receipt cycle - publication cycle == hops
        arr = finished_system.log.arrays()
        pub_cycle = np.array([it.created_at for it in workload.items])
        assert (
            arr["d_cycle"] - pub_cycle[arr["d_item"]] == arr["d_hops"]
        ).all()

    def test_reached_within_population(self, finished_system, workload):
        arr = finished_system.log.arrays()
        assert (arr["d_node"] >= 0).all()
        assert (arr["d_node"] < workload.n_users).all()
        assert (arr["d_item"] >= 0).all()
        assert (arr["d_item"] < workload.n_items).all()


class TestTtlInvariants:
    @pytest.mark.parametrize("ttl", [0, 1, 4])
    def test_dislike_counter_bounded_by_ttl(self, workload, ttl):
        system = build_system(
            "whatsup", workload, seed=4, config=WhatsUpConfig(f_like=5, beep_ttl=ttl)
        )
        system.run()
        arr = system.log.arrays()
        if len(arr["d_dislikes"]):
            assert int(arr["d_dislikes"].max()) <= ttl

    def test_dislike_forward_counts_bounded(self, workload):
        # each dislike-forward targets exactly f_dislike (=1) node
        system = build_system("whatsup", workload, fanout=5, seed=4)
        system.run()
        arr = system.log.arrays()
        dislike_forwards = arr["f_targets"][~arr["f_liked"]]
        if len(dislike_forwards):
            assert int(dislike_forwards.max()) == 1

    def test_like_forward_counts_bounded_by_fanout(self, workload):
        system = build_system("whatsup", workload, fanout=5, seed=4)
        system.run()
        arr = system.log.arrays()
        like_forwards = arr["f_targets"][arr["f_liked"]]
        assert int(like_forwards.max()) <= 5


class TestMessageConservation:
    def test_deliveries_plus_duplicates_equal_delivered_messages(self, workload):
        # on a lossless network every sent item message is delivered, and
        # each delivery is either a first receipt or a duplicate; sources'
        # own hop-0 receipts are not messages
        system = build_system("whatsup", workload, fanout=5, seed=4)
        system.run()
        delivered = system.stats.delivered[MessageKind.ITEM]
        first_receipts = system.log.n_deliveries - workload.n_items
        assert delivered == first_receipts + system.log.duplicates

    def test_loss_conservation(self, workload):
        system = build_system(
            "whatsup",
            workload,
            fanout=5,
            seed=4,
            transport=UniformLossTransport(0.3),
        )
        system.run()
        s = system.stats
        for kind in MessageKind:
            assert s.sent[kind] == s.delivered[kind] + s.dropped[kind]

    def test_forward_targets_equal_item_messages(self, workload):
        system = build_system("whatsup", workload, fanout=5, seed=4)
        system.run()
        arr = system.log.arrays()
        assert int(arr["f_targets"].sum()) == system.stats.sent[MessageKind.ITEM]


class TestCrossDatasetSmoke:
    @pytest.mark.parametrize(
        "dataset_factory",
        [
            lambda: synthetic_dataset(
                n_users=60,
                n_communities=4,
                items_per_community=6,
                seed=6,
                publish_cycles=20,
            ),
            lambda: digg_dataset(n_users=50, n_items=60, seed=6, publish_cycles=20),
        ],
        ids=["synthetic", "digg"],
    )
    def test_whatsup_runs_on_every_workload(self, dataset_factory):
        ds = dataset_factory()
        system = build_system("whatsup", ds, fanout=5, seed=4)
        system.run()
        assert system.log.n_deliveries >= ds.n_items  # at least the sources
        reached = system.reached_matrix()
        assert reached.any()
