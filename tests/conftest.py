"""Shared fixtures for the WHATSUP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiles import ItemProfile, UserProfile
from repro.utils.rng import RngStreams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RngStreams:
    """A deterministic stream registry, fresh per test."""
    return RngStreams(seed=777)


def make_user_profile(
    likes: list[int], dislikes: list[int] = (), timestamp: int = 0
) -> UserProfile:
    """Build a binary user profile from explicit like/dislike id lists."""
    profile = UserProfile()
    for iid in likes:
        profile.record_opinion(iid, timestamp, True)
    for iid in dislikes:
        profile.record_opinion(iid, timestamp, False)
    return profile


def make_item_profile(scores: dict[int, float], timestamp: int = 0) -> ItemProfile:
    """Build an item profile with explicit real-valued scores."""
    profile = ItemProfile()
    for iid, score in scores.items():
        profile.set(iid, timestamp, score)
    return profile


@pytest.fixture
def user_profile_factory():
    """Factory fixture for binary user profiles."""
    return make_user_profile


@pytest.fixture
def item_profile_factory():
    """Factory fixture for real-valued item profiles."""
    return make_item_profile
