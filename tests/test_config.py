"""Unit tests for WhatsUpConfig (paper Table II)."""

from __future__ import annotations

import pytest

from repro.core.config import WhatsUpConfig
from repro.utils.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_table2_defaults(self):
        cfg = WhatsUpConfig()
        assert cfg.rps_view_size == 30
        assert cfg.beep_ttl == 4
        assert cfg.profile_window == 13
        assert cfg.f_dislike == 1
        assert cfg.similarity == "wup"

    def test_wup_view_defaults_to_twice_fanout(self):
        assert WhatsUpConfig(f_like=7).effective_wup_view_size == 14
        assert WhatsUpConfig(f_like=7, wup_view_size=9).effective_wup_view_size == 9

    def test_table2_rows_cover_all_parameters(self):
        rows = WhatsUpConfig().table2_rows()
        names = [r[0] for r in rows]
        assert names == ["RPSvs", "RPSf", "WUPvs", "Profile window", "BEEP TTL"]


class TestValidation:
    def test_bad_fanout(self):
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(f_like=0)

    def test_bad_rps_view(self):
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(rps_view_size=-1)

    def test_negative_ttl(self):
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(beep_ttl=-1)

    def test_zero_ttl_allowed(self):
        # TTL 0 disables the dislike path entirely (Figure 5's x=0 point)
        assert WhatsUpConfig(beep_ttl=0).beep_ttl == 0

    def test_wup_view_smaller_than_fanout_rejected(self):
        # the paper: WUPvs "must be at least as large as" fLIKE
        with pytest.raises(ConfigurationError, match="wup_view_size"):
            WhatsUpConfig(f_like=10, wup_view_size=5)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="unknown similarity"):
            WhatsUpConfig(similarity="euclid")

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(profile_window=0)

    def test_bad_periods(self):
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(rps_every=0)
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(wup_every=0)

    def test_bad_cycle_seconds(self):
        with pytest.raises(ConfigurationError):
            WhatsUpConfig(cycle_seconds=0)


class TestDerivedCopies:
    def test_with_fanout_keeps_defaulted_view_tied(self):
        cfg = WhatsUpConfig(f_like=5).with_fanout(12)
        assert cfg.f_like == 12
        assert cfg.effective_wup_view_size == 24

    def test_with_fanout_preserves_explicit_view(self):
        cfg = WhatsUpConfig(f_like=5, wup_view_size=20).with_fanout(12)
        assert cfg.effective_wup_view_size == 20

    def test_with_metric(self):
        cfg = WhatsUpConfig().with_metric("cosine")
        assert cfg.similarity == "cosine"

    def test_frozen(self):
        with pytest.raises(Exception):
            WhatsUpConfig().f_like = 3
