"""Tests for repro.api.RunConfig — the typed gate-matrix API.

The contract under test:

* ``RunConfig()`` equals the out-of-the-box pipeline, and
  ``RunConfig.from_env()`` on a clean environment equals ``RunConfig()``
  (env parity: same spellings, floors, and invalid-value fallbacks the
  owning modules use);
* ``as_env()`` is the exact inverse of ``from_env()``;
* ``apply()`` activates every gate/knob for the block and restores all
  prior state on exit — including when the block raises;
* the plumbing: ``WhatsUpSystem(run_config=)``, ``make_engine(run_config=)``
  and ``run_experiment(run_config=)`` all construct under the config.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.simulation.sharding as sharding_mod
from repro.api import RunConfig
from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.similarity import batch_scoring_enabled
from repro.datasets import survey_dataset
from repro.simulation.delivery import delivery_batching_enabled
from repro.simulation.faults import fault_schedule
from repro.simulation.sharding import shard_count, wire_tier


@pytest.fixture
def clean_env(monkeypatch):
    """Strip every REPRO_* gate so from_env() sees the defaults."""
    import os

    for name in list(os.environ):
        if name.startswith("REPRO_"):
            monkeypatch.delenv(name)
    return os.environ


VARIANT = dict(
    batch_sim=False,
    native=False,
    shards=4,
    shard_shm=False,
    wire_tier="pickle",
    pin_cpus=True,
    mailbox_bytes=1 << 17,
    intern_cap=512,
    faults="crash@5:1:q",
    recovery="degraded",
    checkpoint_every=3,
    degraded_window=6,
    max_recoveries=2,
    ctrl_timeout=30.0,
    exchange_timeout=45.5,
    retries=9,
    backoff=0.25,
)


class TestEnvParity:
    def test_defaults_match_clean_env(self, clean_env):
        assert RunConfig.from_env() == RunConfig()

    def test_as_env_roundtrips_defaults(self):
        cfg = RunConfig()
        assert RunConfig.from_env(cfg.as_env()) == cfg
        assert "REPRO_FAULTS" not in cfg.as_env()

    def test_as_env_roundtrips_every_field(self):
        cfg = RunConfig(**VARIANT)
        env = cfg.as_env()
        assert env["REPRO_FAULTS"] == "crash@5:1:q"
        assert RunConfig.from_env(env) == cfg

    def test_from_env_parses_module_spellings(self):
        env = {
            "REPRO_BATCH_SIM": "OFF",
            "REPRO_NATIVE": "No",
            "REPRO_SHARDS": "3",
            "REPRO_SHARD_WIRE": " Columns ",
            "REPRO_FAULTS": "  ",
        }
        cfg = RunConfig.from_env(env)
        assert cfg.batch_sim is False
        assert cfg.native is False
        assert cfg.shards == 3
        assert cfg.wire_tier == "columns"
        assert cfg.faults is None  # blank spec means no schedule

    def test_from_env_applies_module_floors_and_fallbacks(self):
        cfg = RunConfig.from_env(
            {
                "REPRO_SHARDS": "zero",  # unparseable -> default
                "REPRO_SHARD_WIRE": "msgpack",  # unknown -> default
                "REPRO_SHARD_RECOVERY": "prayer",  # unknown -> default
                "REPRO_SHARD_INTERN_CAP": "5",  # floored
                "REPRO_SHARD_BACKOFF": "0.000001",  # floored
                "REPRO_SHARD_RETRIES": "0",  # floored
            }
        )
        assert cfg.shards == 1
        assert cfg.wire_tier == "delta"
        assert cfg.recovery == "auto"
        assert cfg.intern_cap == 256
        assert cfg.backoff == 0.005
        assert cfg.retries == 1

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="wire tier"):
            RunConfig(wire_tier="msgpack")
        with pytest.raises(ValueError, match="recovery"):
            RunConfig(recovery="prayer")
        with pytest.raises(ValueError, match="shards"):
            RunConfig(shards=0)

    def test_frozen_and_replace(self):
        cfg = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.shards = 4
        derived = cfg.replace(shards=4, wire_tier="columns")
        assert (derived.shards, derived.wire_tier) == (4, "columns")
        assert cfg.shards == 1  # original untouched
        with pytest.raises(ValueError):
            cfg.replace(wire_tier="msgpack")


class TestApply:
    # the restore assertions compare against *captured* prior state, not
    # hard-coded defaults — the tier-1 CI legs run this suite under env
    # gates (REPRO_SHARDS=4, REPRO_BATCH_SIM=0, …) and apply() must put
    # back whatever was set, defaults or not

    def test_apply_sets_and_restores_everything(self):
        cfg = RunConfig(**VARIANT)
        before = (
            batch_scoring_enabled(),
            delivery_batching_enabled(),
            shard_count(),
            wire_tier(),
            fault_schedule(),
            sharding_mod.shard_knobs(),
        )
        with cfg.apply():
            assert batch_scoring_enabled() is False
            assert delivery_batching_enabled() is True  # cfg default
            assert shard_count() == 4
            assert wire_tier() == "pickle"
            schedule = fault_schedule()
            assert schedule is not None
            assert [e.kind for e in schedule.events] == ["crash"]
            knobs = sharding_mod.shard_knobs()
            assert knobs["mailbox_bytes"] == 1 << 17
            assert knobs["intern_cap"] == 512
            assert knobs["pin_cpus"] is True
            assert knobs["recovery"] == "degraded"
            assert knobs["retries"] == 9
        assert before == (
            batch_scoring_enabled(),
            delivery_batching_enabled(),
            shard_count(),
            wire_tier(),
            fault_schedule(),
            sharding_mod.shard_knobs(),
        )

    def test_apply_restores_on_exception(self):
        before = (shard_count(), wire_tier())
        cfg = RunConfig(shards=2, wire_tier="columns")
        with pytest.raises(RuntimeError, match="boom"), cfg.apply():
            assert shard_count() == 2
            raise RuntimeError("boom")
        assert (shard_count(), wire_tier()) == before

    def test_apply_nests(self):
        before = wire_tier()
        with RunConfig(wire_tier="columns").apply():
            with RunConfig(wire_tier="pickle").apply():
                assert wire_tier() == "pickle"
            assert wire_tier() == "columns"
        assert wire_tier() == before


class TestPlumbing:
    @pytest.fixture(scope="class")
    def dataset(self):
        return survey_dataset(n_base_users=24, n_base_items=20, seed=3)

    def test_whatsup_system_constructs_under_config(self, dataset):
        before = shard_count()
        cfg = RunConfig(shards=2)
        system = WhatsUpSystem(
            dataset, WhatsUpConfig(f_like=5), seed=7, run_config=cfg
        )
        try:
            assert type(system.engine).__name__ == "ShardedCycleEngine"
            assert shard_count() == before  # config never leaked
            system.run(cycles=4, drain=False)
            assert system.engine.now == 4
            assert any(node.profile.scores for node in system.nodes)
        finally:
            system.close()

    def test_system_matches_env_gated_run(self, dataset):
        """run_config=RunConfig(shards=2) ≙ the sharding() context."""

        def state(system):
            return [
                (node.node_id, sorted(node.profile.scores.items()),
                 sorted(node.seen))
                for node in system.nodes
            ]

        with sharding_mod.sharding(2):
            ref = WhatsUpSystem(dataset, WhatsUpConfig(f_like=5), seed=7)
            try:
                ref.run(cycles=6, drain=False)
                want = state(ref)
            finally:
                ref.close()
        system = WhatsUpSystem(
            dataset, WhatsUpConfig(f_like=5), seed=7,
            run_config=RunConfig(shards=2),
        )
        try:
            system.run(cycles=6, drain=False)
            assert state(system) == want
        finally:
            system.close()

    def test_make_engine_accepts_run_config(self, dataset):
        from repro.simulation.sharding import make_engine

        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=5), seed=7)
        engine = make_engine(
            system.nodes,
            dataset.schedule(),
            streams=system.streams,
            run_config=RunConfig(shards=2, wire_tier="columns"),
        )
        try:
            assert type(engine).__name__ == "ShardedCycleEngine"
        finally:
            engine.close()

    def test_run_experiment_accepts_run_config(self):
        from repro.experiments import ScaleProfile, run_experiment

        tiny = ScaleProfile(
            name="tiny",
            survey_base_users=30,
            survey_base_items=30,
            survey_replication=1,
            synthetic_users=40,
            synthetic_items_per_community=2,
            digg_users=30,
            digg_items=30,
            publish_cycles=8,
            fanouts_survey=(2, 4),
            fanouts_synthetic=(2, 4),
            fanouts_digg=(2, 4),
        )
        before = wire_tier()
        cfg = RunConfig(wire_tier="columns")
        rep = run_experiment("table1", tiny, seed=2, run_config=cfg)
        assert "Synthetic" in rep.text
        assert wire_tier() == before  # restored
