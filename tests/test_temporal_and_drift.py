"""Tests for the latency extension (temporal metrics, LatencyTransport)
and the interest-drift workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.datasets.drift import drifting_survey_dataset
from repro.metrics.temporal import (
    LatencySummary,
    delivery_latencies,
    latency_summary,
    time_to_audience,
)
from repro.network.message import Envelope, MessageKind
from repro.network.transport import LatencyTransport, UniformLossTransport
from repro.simulation.events import DisseminationLog
from repro.utils.exceptions import DatasetError


def env(target=1):
    return Envelope(0, target, MessageKind.ITEM, None, 100)


class TestLatencyTransport:
    def test_unit_tail_is_one_cycle(self, rng):
        t = LatencyTransport(tail=1.0)
        assert all(t.delay(env(), rng) == 1 for _ in range(50))

    def test_geometric_tail_produces_spread(self, rng):
        t = LatencyTransport(tail=0.4)
        delays = [t.delay(env(), rng) for _ in range(3000)]
        assert min(delays) == 1
        assert max(delays) > 3
        assert np.mean(delays) == pytest.approx(1 / 0.4, rel=0.15)

    def test_slow_nodes_scaled(self, rng):
        t = LatencyTransport(tail=1.0, slow_fraction=1.0, slow_multiplier=4)
        t.setup(range(10), rng)
        assert len(t.slow_nodes) == 10
        assert all(t.delay(env(target=3), rng) == 4 for _ in range(20))

    def test_wraps_inner_loss_model(self, rng):
        t = LatencyTransport(UniformLossTransport(1.0))
        assert not t.attempt(env(), rng)

    def test_validation(self):
        with pytest.raises(Exception):
            LatencyTransport(tail=0.0)
        with pytest.raises(Exception):
            LatencyTransport(slow_multiplier=0)

    def test_end_to_end_delays_slow_dissemination(self):
        from repro.datasets import survey_dataset

        ds = survey_dataset(n_base_users=40, n_base_items=50, seed=3, publish_cycles=20)
        fast = WhatsUpSystem(ds, WhatsUpConfig(f_like=4), seed=1)
        fast.run()
        slow = WhatsUpSystem(
            ds,
            WhatsUpConfig(f_like=4),
            seed=1,
            transport=LatencyTransport(tail=0.3),
        )
        slow.run()
        pub = np.array([it.created_at for it in ds.items])
        lat_fast = latency_summary(fast.log, pub, liked_only=False)
        lat_slow = latency_summary(slow.log, pub, liked_only=False)
        assert lat_slow.mean > lat_fast.mean


class TestTemporalMetrics:
    def _log(self):
        log = DisseminationLog()
        # item 0 published at cycle 2: deliveries at cycles 2, 4, 8
        for node, cyc, hops, liked in (
            (0, 2, 0, True),
            (1, 4, 2, True),
            (2, 8, 6, False),
        ):
            log.log_delivery(0, node, cyc, hops, 0, liked, True)
        return log

    def test_delivery_latencies(self):
        lat = delivery_latencies(self._log(), np.array([2]))
        assert sorted(lat.tolist()) == [0, 2, 6]

    def test_liked_only_filter(self):
        lat = delivery_latencies(self._log(), np.array([2]), liked_only=True)
        assert sorted(lat.tolist()) == [0, 2]

    def test_latency_summary_values(self):
        s = latency_summary(self._log(), np.array([2]), liked_only=False)
        assert isinstance(s, LatencySummary)
        assert s.mean == pytest.approx(8 / 3)
        assert s.median == pytest.approx(2)
        assert s.max == 6

    def test_latency_summary_empty(self):
        s = latency_summary(DisseminationLog(), np.array([0]))
        assert s.as_row() == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_time_to_audience(self):
        tta = time_to_audience(self._log(), np.array([2]), n_items=1, fraction=0.9)
        # 90% of 3 deliveries -> 3rd delivery at cycle 8 -> latency 6
        assert tta.tolist() == [6]
        tta_half = time_to_audience(self._log(), np.array([2]), n_items=1, fraction=0.5)
        # 50% of 3 -> 2nd delivery at cycle 4 -> latency 2
        assert tta_half.tolist() == [2]

    def test_time_to_audience_validation(self):
        with pytest.raises(ValueError):
            time_to_audience(DisseminationLog(), np.array([0]), 1, fraction=0.0)

    def test_unreached_items_report_zero(self):
        tta = time_to_audience(self._log(), np.array([2, 5]), n_items=2)
        assert tta[1] == 0


class TestDriftingDataset:
    def test_basic_shape(self):
        ds = drifting_survey_dataset(
            n_base_users=40, n_base_items=60, n_phases=3, seed=2
        )
        assert ds.n_users == 40 and ds.n_items == 60
        assert ds.n_topics == 3 * 15  # phase-tagged topic space

    def test_every_item_has_interested_source(self):
        ds = drifting_survey_dataset(n_base_users=30, n_base_items=45, seed=2)
        for idx, item in enumerate(ds.items):
            assert ds.likes[item.source, idx]

    def test_phases_ordered_in_time(self):
        ds = drifting_survey_dataset(
            n_base_users=30, n_base_items=60, n_phases=3, publish_cycles=90, seed=2
        )
        phases = ds.item_topics // 15
        cycles = np.array([it.created_at for it in ds.items])
        # mean publication cycle increases with phase
        means = [cycles[phases == p].mean() for p in range(3)]
        assert means[0] < means[1] < means[2]

    def test_zero_drift_keeps_interest_overlap_high(self):
        def phase_overlap(ds):
            phases = ds.item_topics // 15
            a = ds.likes[:, phases == 0]
            b = ds.likes[:, phases == 2]
            # users' like-rate correlation between first and last phase
            ra = a.mean(axis=1)
            rb = b.mean(axis=1)
            return float(np.corrcoef(ra, rb)[0, 1])

        static = drifting_survey_dataset(
            n_base_users=60, n_base_items=120, drift=0.0, seed=2
        )
        drifty = drifting_survey_dataset(
            n_base_users=60, n_base_items=120, drift=0.9, seed=2
        )
        assert phase_overlap(static) > phase_overlap(drifty)

    def test_deterministic(self):
        a = drifting_survey_dataset(n_base_users=25, n_base_items=40, seed=8)
        b = drifting_survey_dataset(n_base_users=25, n_base_items=40, seed=8)
        np.testing.assert_array_equal(a.likes, b.likes)

    def test_validation(self):
        with pytest.raises(DatasetError):
            drifting_survey_dataset(n_base_items=2, n_phases=5)
        with pytest.raises(Exception):
            drifting_survey_dataset(drift=1.5)

    def test_whatsup_runs_on_drift_workload(self):
        ds = drifting_survey_dataset(
            n_base_users=40, n_base_items=60, publish_cycles=45, seed=2
        )
        system = WhatsUpSystem(ds, WhatsUpConfig(f_like=5, profile_window=15), seed=1)
        system.run()
        assert system.log.n_deliveries > ds.n_items
