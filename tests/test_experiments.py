"""Tests for the experiment harness: factory, runner, sweeps, registry, CLI.

Heavier registry experiments are exercised end-to-end by the benchmark
suite; here we validate the machinery on tiny workloads.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core import WhatsUpConfig
from repro.experiments import (
    EXPERIMENTS,
    ScaleProfile,
    best_result,
    build_system,
    fanout_sweep,
    get_experiment,
    get_scale,
    run_experiment,
    run_one,
    score_system,
    ttl_sweep,
)
from repro.experiments.reporting import ExperimentReport, results_table, series_table
from repro.experiments.results import RunResult
from repro.metrics.retrieval import RetrievalScores
from repro.utils.exceptions import ConfigurationError

TINY = ScaleProfile(
    name="tiny",
    survey_base_users=30,
    survey_base_items=30,
    survey_replication=1,
    synthetic_users=40,
    synthetic_items_per_community=2,
    digg_users=30,
    digg_items=30,
    publish_cycles=12,
    fanouts_survey=(2, 4),
    fanouts_synthetic=(2, 4),
    fanouts_digg=(2, 4),
)


@pytest.fixture(scope="module")
def tiny_survey():
    return TINY.survey(seed=2)


class TestScaleProfiles:
    def test_get_scale_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale().name == "medium"

    def test_get_scale_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale("paper").name == "paper"

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            get_scale("galactic")

    def test_paper_scale_dimensions(self):
        paper = get_scale("paper")
        assert paper.survey_base_users * paper.survey_replication == 480
        assert paper.synthetic_users == 3180
        assert paper.digg_users == 750

    def test_dataset_by_name(self):
        assert TINY.dataset("survey").name == "WHATSUP Survey"
        assert TINY.dataset("synthetic").name == "Synthetic"
        assert TINY.dataset("digg").name == "Digg"
        with pytest.raises(ConfigurationError):
            TINY.dataset("imdb")

    def test_fanout_grid_lookup(self):
        assert TINY.fanouts("survey") == (2, 4)


class TestFactory:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("whatsup", "whatsup"),
            ("whatsup-cos", "whatsup-cos"),
            ("cf-wup", "cf-wup"),
            ("cf-cos", "cf-cos"),
            ("gossip", "gossip"),
            ("c-whatsup", "c-whatsup"),
            ("c-pubsub", "c-pubsub"),
        ],
    )
    def test_builds_all_names(self, tiny_survey, name, expected):
        system = build_system(name, tiny_survey, fanout=3, seed=1)
        assert system.system_name == expected

    def test_cascade_needs_graph(self, tiny_survey):
        from repro.utils.exceptions import DatasetError

        with pytest.raises(DatasetError):
            build_system("cascade", tiny_survey)
        digg = TINY.digg(seed=2)
        assert build_system("cascade", digg).system_name == "cascade"

    def test_unknown_name(self, tiny_survey):
        with pytest.raises(ConfigurationError, match="unknown system"):
            build_system("bittorrent", tiny_survey)

    def test_fanout_sets_config(self, tiny_survey):
        system = build_system("whatsup", tiny_survey, fanout=7, seed=1)
        assert system.config.f_like == 7

    def test_config_passthrough(self, tiny_survey):
        cfg = WhatsUpConfig(f_like=3, beep_ttl=2)
        system = build_system("whatsup", tiny_survey, config=cfg, seed=1)
        assert system.config.beep_ttl == 2


class TestRunnerAndSweeps:
    def test_run_one_scores(self, tiny_survey):
        result = run_one("whatsup", tiny_survey, fanout=3, seed=1)
        assert result.system == "whatsup"
        assert result.dataset == tiny_survey.name
        assert 0 <= result.f1 <= 1
        assert result.item_messages > 0
        assert result.cycles > 0
        assert result.wall_seconds > 0
        assert result.params == {"fanout": 3}

    def test_run_one_pubsub_closed_form(self, tiny_survey):
        result = run_one("c-pubsub", tiny_survey, seed=1)
        assert result.recall == pytest.approx(1.0, abs=0.02)
        assert result.messages_per_user > 0
        assert result.cycles == 0  # no engine cycles

    def test_fanout_sweep_cardinality(self, tiny_survey):
        results = fanout_sweep(tiny_survey, ("gossip", "whatsup"), (2, 3), seed=1)
        assert len(results) == 4
        assert {r.system for r in results} == {"gossip", "whatsup"}

    def test_best_result(self):
        runs = [
            RunResult("a", "d", {"fanout": 1}, RetrievalScores(0.5, 0.5, 0.5)),
            RunResult("a", "d", {"fanout": 2}, RetrievalScores(0.6, 0.6, 0.6)),
            RunResult("b", "d", {}, RetrievalScores(0.9, 0.9, 0.9)),
        ]
        assert best_result(runs, "a").params["fanout"] == 2
        with pytest.raises(ValueError):
            best_result(runs, "zzz")

    def test_ttl_sweep_params_recorded(self, tiny_survey):
        results = ttl_sweep(tiny_survey, (0, 2), f_like=3, seed=1)
        assert [r.params["beep_ttl"] for r in results] == [0, 2]

    def test_score_system_label(self, tiny_survey):
        system = build_system("whatsup", tiny_survey, fanout=3, seed=1)
        system.run()
        result = score_system(system, tiny_survey, {"fanout": 3})
        assert result.label() == "whatsup(fanout=3)"
        row = result.table_row()
        assert row[0] == "whatsup(fanout=3)"


class TestReporting:
    def test_results_table_renders(self):
        runs = [
            RunResult("whatsup", "d", {"fanout": 3}, RetrievalScores(0.4, 0.8, 0.53))
        ]
        runs[0].messages_per_user = 12.3
        out = results_table(runs, title="T")
        assert "whatsup(fanout=3)" in out
        assert "0.800" in out

    def test_series_table_handles_nan(self):
        out = series_table("x", [1, 2], {"y": [0.5, float("nan")]})
        assert "-" in out

    def test_experiment_report_str(self):
        rep = ExperimentReport("t", "Title", "body")
        assert "Title" in str(rep) and "body" in str(rep)


class TestRegistry:
    def test_all_ids_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "fig3-synthetic", "fig3-digg", "fig3-survey",
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "ablate-window", "ablate-rpsvs", "ablate-wupvs", "ablate-metric",
            "shard-outage",
        }
        assert expected <= set(EXPERIMENTS)

    def test_get_experiment_unknown(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_run_table1_tiny(self):
        rep = run_experiment("table1", TINY, seed=2)
        assert "Synthetic" in rep.text
        assert rep.data["rows"][0][1] == TINY.synthetic_users

    def test_run_table2(self):
        rep = run_experiment("table2", TINY, seed=2)
        assert "BEEP TTL" in rep.text

    def test_run_table4_tiny(self):
        rep = run_experiment("table4", TINY, seed=2)
        dist = rep.data["distribution"]
        assert sum(dist.values()) == pytest.approx(1.0, abs=0.01)

    def test_run_fig6_tiny(self):
        rep = run_experiment("fig6", TINY, seed=2)
        assert rep.data["mean_hops"] > 0

    def test_run_fig11_tiny(self):
        rep = run_experiment("fig11", TINY, seed=2)
        assert len(rep.data["centres"]) == 10

    def test_run_shard_outage_tiny(self):
        rep = run_experiment("shard-outage", TINY, seed=2)
        rows = rep.data["rows"]
        assert rows[0][0] == "no outage" and rows[0][1] == 0
        # every outage row killed a residue class and delivered no more
        # item messages per user than the clean run
        assert all(row[1] > 0 for row in rows[1:])
        assert all(row[2] <= rows[0][2] for row in rows[1:])
        assert "Recall" in rep.text


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig9" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "BEEP TTL" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_with_scale_flag(self, capsys):
        assert main(["run", "table2", "--scale", "paper"]) == 0

    def test_faults_flag_scoped_to_the_run(self, capsys, monkeypatch):
        """``--faults`` is active during the experiments, restored after.

        The CLI resolves flags through ``RunConfig.apply()``, so the
        schedule (like every other gate) is scoped to the run instead of
        leaking into the process.
        """
        import repro.cli as cli_mod
        from repro.simulation.faults import fault_schedule

        args = build_parser().parse_args(
            ["run", "table2", "--faults", "crash@5:1:q"]
        )
        assert args.faults == "crash@5:1:q"
        seen = {}
        orig = cli_mod.run_experiment

        def spy(exp_id, scale, seed, run_config=None):
            seen["schedule"] = fault_schedule()
            return orig(exp_id, scale, seed, run_config)

        monkeypatch.setattr(cli_mod, "run_experiment", spy)
        assert main(["run", "table2", "--faults", "stall@2:0:r:0.01"]) == 0
        active = seen["schedule"]
        assert active is not None
        assert [e.kind for e in active.events] == ["stall"]
        assert fault_schedule() is None

    def test_wire_tier_flag_scoped_to_the_run(self, capsys, monkeypatch):
        import repro.cli as cli_mod
        from repro.simulation.sharding import shard_count, wire_tier

        seen = {}
        orig = cli_mod.run_experiment

        def spy(exp_id, scale, seed, run_config=None):
            seen["tier"] = wire_tier()
            seen["shards"] = shard_count()
            return orig(exp_id, scale, seed, run_config)

        before = (wire_tier(), shard_count())
        monkeypatch.setattr(cli_mod, "run_experiment", spy)
        assert (
            main(["run", "table2", "--shards", "3", "--wire-tier", "pickle"])
            == 0
        )
        assert seen == {"tier": "pickle", "shards": 3}
        assert (wire_tier(), shard_count()) == before
