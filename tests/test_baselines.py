"""Unit and behavioural tests for the competitor systems (paper §IV-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CascadeSystem,
    CfSystem,
    CPubSubSystem,
    CWhatsUpSystem,
    GossipSystem,
)
from repro.core import WhatsUpConfig
from repro.datasets import digg_dataset, survey_dataset
from repro.utils.exceptions import ConfigurationError, DatasetError


def prf(reached, likes):
    tp = (reached & likes).sum()
    p = tp / max(reached.sum(), 1)
    r = tp / max(likes.sum(), 1)
    return p, r


@pytest.fixture(scope="module")
def survey():
    return survey_dataset(n_base_users=60, n_base_items=80, seed=3, publish_cycles=25)


@pytest.fixture(scope="module")
def digg():
    return digg_dataset(n_users=60, n_items=80, seed=3, publish_cycles=25)


class TestGossipSystem:
    def test_runs_and_reaches_almost_everyone(self, survey):
        s = GossipSystem(survey, fanout=5, seed=1)
        s.run()
        reached = s.reached_matrix()
        # homogeneous gossip at f=5 floods: recall near 1
        _, recall = prf(reached, survey.likes)
        assert recall > 0.9

    def test_precision_tracks_like_rate(self, survey):
        s = GossipSystem(survey, fanout=5, seed=1)
        s.run()
        p, _ = prf(s.reached_matrix(), survey.likes)
        assert p == pytest.approx(survey.like_rate(), abs=0.05)

    def test_forwarding_is_opinion_blind(self, survey):
        s = GossipSystem(survey, fanout=4, seed=1)
        s.run()
        arr = s.log.arrays()
        # both likers and dislikers forwarded: forwards ≈ deliveries
        assert s.log.n_forwards >= 0.9 * s.log.n_deliveries

    def test_invalid_fanout(self, survey):
        with pytest.raises(ConfigurationError):
            GossipSystem(survey, fanout=0)

    def test_system_name(self, survey):
        assert GossipSystem(survey, fanout=3).system_name == "gossip"


class TestCfSystem:
    def test_no_action_on_dislike(self, survey):
        s = CfSystem(survey, k=8, metric="wup", seed=1)
        s.run()
        arr = s.log.arrays()
        assert bool(arr["f_liked"].all())  # every forward is a like-forward

    def test_metric_names_system(self, survey):
        assert CfSystem(survey, k=5, metric="wup").system_name == "cf-wup"
        assert CfSystem(survey, k=5, metric="cosine").system_name == "cf-cos"

    def test_wup_metric_beats_cosine_recall(self, survey):
        # §V-A: the WUP metric improves recall over cosine for CF
        rec = {}
        for metric in ("wup", "cosine"):
            s = CfSystem(survey, k=8, metric=metric, seed=1)
            s.run()
            _, rec[metric] = prf(s.reached_matrix(), survey.likes)
        assert rec["wup"] > rec["cosine"]

    def test_beats_random_gossip_precision(self, survey):
        cf = CfSystem(survey, k=8, metric="wup", seed=1)
        cf.run()
        p_cf, _ = prf(cf.reached_matrix(), survey.likes)
        assert p_cf > survey.like_rate() + 0.05

    def test_invalid_k(self, survey):
        with pytest.raises(ConfigurationError):
            CfSystem(survey, k=0)


class TestCascadeSystem:
    def test_requires_social_graph(self, survey):
        with pytest.raises(DatasetError, match="social graph"):
            CascadeSystem(survey)

    def test_runs_on_digg(self, digg):
        s = CascadeSystem(digg, seed=1)
        s.run()
        assert s.log.n_deliveries > 0

    def test_low_recall_signature(self, digg):
        # Table V: cascade recall is dramatically lower than gossip-based
        # dissemination because the explicit graph is interest-misaligned
        cas = CascadeSystem(digg, seed=1)
        cas.run()
        _, r_cas = prf(cas.reached_matrix(), digg.likes)
        gos = GossipSystem(digg, fanout=5, seed=1)
        gos.run()
        _, r_gos = prf(gos.reached_matrix(), digg.likes)
        assert r_cas < 0.5 * r_gos

    def test_only_likes_cascade(self, digg):
        s = CascadeSystem(digg, seed=1)
        s.run()
        assert bool(s.log.arrays()["f_liked"].all())

    def test_static_topology_no_gossip_traffic(self, digg):
        from repro.network.message import MessageKind

        s = CascadeSystem(digg, seed=1)
        s.run()
        assert s.stats.sent[MessageKind.RPS] == 0
        assert s.stats.sent[MessageKind.WUP] == 0


class TestCPubSub:
    def test_recall_is_one_on_subscribed_topics(self, survey):
        ps = CPubSubSystem(survey)
        ps.run()
        reached = ps.reached_matrix()
        likes = survey.likes
        # complete dissemination: every liked item reached its liker,
        # except likes that are forced-fan noise outside any subscription
        subs = survey.topic_subscriptions()
        for u in range(survey.n_users):
            for i in np.flatnonzero(likes[u]):
                if survey.item_topics[i] in subs[u]:
                    assert reached[u, i]

    def test_full_recall(self, survey):
        ps = CPubSubSystem(survey)
        ps.run()
        _, recall = prf(ps.reached_matrix(), survey.likes)
        assert recall == pytest.approx(1.0, abs=0.01)

    def test_message_cost_is_spanning_tree(self, survey):
        ps = CPubSubSystem(survey)
        ps.run()
        reached = ps.reached_matrix()
        expected = int(
            sum(max(reached[:, i].sum() - 1, 0) for i in range(survey.n_items))
        )
        assert ps.total_messages == expected

    def test_requires_run_before_reached(self, survey):
        with pytest.raises(RuntimeError):
            CPubSubSystem(survey).reached_matrix()

    def test_requires_topics(self):
        from repro.datasets import dataset_from_likes

        ds = dataset_from_likes(np.ones((3, 3), dtype=bool), seed=0)
        with pytest.raises(DatasetError):
            CPubSubSystem(ds)


class TestCWhatsUp:
    def test_runs_and_beats_like_rate_precision(self, survey):
        s = CWhatsUpSystem(survey, WhatsUpConfig(f_like=6), seed=1)
        s.run()
        p, r = prf(s.reached_matrix(), survey.likes)
        assert p > survey.like_rate() + 0.05
        assert r > 0.1

    def test_precision_exceeds_decentralized(self, survey):
        # Figure 9 / §V-G: global knowledge yields better precision
        from repro.core import WhatsUpSystem

        cfg = WhatsUpConfig(f_like=8)
        c = CWhatsUpSystem(survey, cfg, seed=1)
        c.run()
        w = WhatsUpSystem(survey, cfg, seed=1)
        w.run()
        p_c, _ = prf(c.reached_matrix(), survey.likes)
        p_w, _ = prf(w.reached_matrix(), survey.likes)
        assert p_c > p_w

    def test_no_duplicate_deliveries_scheduled(self, survey):
        # the server's informed-set bookkeeping means receivers see very few
        # duplicates (only races within a cycle window)
        s = CWhatsUpSystem(survey, WhatsUpConfig(f_like=6), seed=1)
        s.run()
        assert s.log.duplicates == 0

    def test_dislike_ttl_respected(self, survey):
        s = CWhatsUpSystem(survey, WhatsUpConfig(f_like=6, beep_ttl=2), seed=1)
        s.run()
        assert int(s.log.arrays()["d_dislikes"].max(initial=0)) <= 2


class TestSeedDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda ds, seed: GossipSystem(ds, fanout=4, seed=seed),
            lambda ds, seed: CfSystem(ds, k=6, seed=seed),
            lambda ds, seed: CWhatsUpSystem(ds, WhatsUpConfig(f_like=4), seed=seed),
        ],
        ids=["gossip", "cf", "c-whatsup"],
    )
    def test_deterministic(self, survey, factory):
        def run(seed):
            s = factory(survey, seed)
            s.run()
            return (s.log.n_deliveries, s.log.duplicates, s.stats.item_messages())

        assert run(7) == run(7)
