"""Tests for the process-sharded cycle engine (repro.simulation.sharding).

Covers the PR's determinism contract:

* ``REPRO_SHARDS=1`` constructs the plain single-process engine — bitwise
  identical to a directly-built :class:`CycleEngine` run;
* shard counts 2 and 4 are deterministic run-to-run at a fixed seed,
  including under churn, mid-run cold-start joins, the scalar pipeline
  and the legacy state plane;
* the shared-memory staging layer never changes outcomes: shm on vs off,
  and forced multi-chunk mailbox flushes, produce identical bits;
* the shard arena really is shared memory: the parent reads live view
  columns zero-copy, and the native state kernels operate on mapped
  blocks;
* the pickle-safety layer (ArrayView / FrozenProfile / BaseNode) drops
  process-local address caches and rebuilds coherent state.
"""

from __future__ import annotations

import pickle
import warnings as _warnings

import numpy as np
import pytest

import repro.simulation.sharding as sharding_mod
from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.arraystate import array_state
from repro.core.similarity import batch_scoring
from repro.datasets import survey_dataset
from repro.core.profiles import FrozenProfile
from repro.gossip.views import ArrayView, ViewEntry
from repro.network.transport import UniformLossTransport
from repro.simulation.delivery import delivery_batching
from repro.simulation.engine import CycleEngine
from repro.simulation.events import DisseminationLog
from repro.simulation.sharding import (
    ShardedCycleEngine,
    ShardRngStreams,
    make_engine,
    shard_of,
    shard_shm,
    sharding,
)

SEED = 11
CYCLES = 15


def always_like(node_id, item):
    """Module-level opinion oracle: picklable into shard workers."""
    return True


@pytest.fixture(scope="module")
def dataset():
    return survey_dataset(n_base_users=36, n_base_items=30, seed=4)


def system_state(system) -> dict:
    """Every outcome dissemination can influence, per node and globally."""
    state = {}
    for node in system.nodes:
        state[node.node_id] = (
            node.alive,
            tuple(sorted(node.wup.view.node_ids())),
            tuple(sorted(node.rps.view.node_ids())),
            tuple(sorted(node.profile.scores.items())),
            tuple(sorted(node.seen)),
        )
    log = system.engine.log
    arrays = log.arrays()
    state["_log"] = tuple(
        (key, tuple(arrays[key].tolist())) for key in sorted(arrays)
    )
    state["_duplicates"] = log.duplicates
    stats = system.engine.stats
    state["_traffic"] = tuple(
        (str(kind), stats.sent[kind], stats.delivered[kind],
         stats.bytes_delivered[kind])
        for kind in sorted(stats.sent, key=str)
    )
    return state


def run_sharded(dataset, n_shards, *, cycles=CYCLES, churn=None, shm=True):
    """One fixed-seed sharded run; returns the final state snapshot."""
    with sharding(n_shards), shard_shm(shm):
        system = WhatsUpSystem(
            dataset, WhatsUpConfig(f_like=6), seed=SEED, churn=churn
        )
        try:
            system.run(cycles=cycles, drain=False)
            return system_state(system)
        finally:
            system.close()


# --------------------------------------------------------------------------- #
# gate + partition basics                                                     #
# --------------------------------------------------------------------------- #


def test_gate_selects_engine_type(dataset):
    """The factory honours the gate (whatever the ambient environment)."""
    with sharding(1):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        assert type(system.engine) is CycleEngine
    with sharding(2):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        assert isinstance(system.engine, ShardedCycleEngine)
        system.close()


def test_shard1_bitwise_identical_to_direct_engine(dataset):
    """At shards=1 the factory output IS the plain engine, bit for bit.

    The gated system's engine must be the exact single-process class (no
    wrapper), and a run through it must match a run whose engine was
    constructed by hand from the same population.
    """
    with sharding(1):
        gated = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
    assert type(gated.engine) is CycleEngine
    gated.run(cycles=CYCLES, drain=False)

    with sharding(1):
        direct = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
    # swap in a hand-built CycleEngine over the same nodes/schedule:
    # identical construction args, no factory involvement at all
    direct.engine = CycleEngine(
        direct.nodes,
        dataset.schedule(),
        streams=direct.streams,
    )
    direct.run(cycles=CYCLES, drain=False)
    assert system_state(gated) == system_state(direct)


def test_shard_of_is_stable_modulo():
    assert [shard_of(nid, 4) for nid in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_shard_rng_streams_are_independent_and_reproducible():
    a0 = ShardRngStreams(5, 0).get("engine-order").random(4)
    a0b = ShardRngStreams(5, 0).get("engine-order").random(4)
    a1 = ShardRngStreams(5, 1).get("engine-order").random(4)
    assert np.array_equal(a0, a0b)
    assert not np.array_equal(a0, a1)


def test_lossy_transport_falls_back_single_process(dataset):
    nodes = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED).nodes
    with sharding(2), pytest.warns(RuntimeWarning, match="lossless"):
        engine = make_engine(
            nodes,
            dataset.schedule(),
            transport=UniformLossTransport(loss_rate=0.2),
        )
    assert type(engine) is CycleEngine


def test_tiny_population_falls_back_single_process(dataset):
    nodes = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED).nodes
    with sharding(32), pytest.warns(RuntimeWarning, match="too small"):
        engine = make_engine(nodes[:10], dataset.schedule())
    assert type(engine) is CycleEngine


# --------------------------------------------------------------------------- #
# determinism                                                                 #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def shard2_state(dataset):
    return run_sharded(dataset, 2)


def test_shard2_deterministic(dataset, shard2_state):
    assert run_sharded(dataset, 2) == shard2_state


def test_shard4_deterministic(dataset):
    assert run_sharded(dataset, 4) == run_sharded(dataset, 4)


def test_shm_off_matches_shm_on(dataset, shard2_state):
    """The staging transport (shm vs inline pipes) never changes bits."""
    assert run_sharded(dataset, 2, shm=False) == shard2_state


def test_multi_chunk_mailboxes_match(dataset, shard2_state, monkeypatch):
    """Blobs forced through many tiny chunks produce identical outcomes."""
    monkeypatch.setattr(sharding_mod, "_INLINE_CHUNK", 64)
    assert run_sharded(dataset, 2, shm=False) == shard2_state
    monkeypatch.setattr(sharding_mod, "_MAILBOX_BYTES", 2048)
    assert run_sharded(dataset, 2, shm=True) == shard2_state


def test_sharded_run_delivers_and_accounts(dataset, shard2_state):
    deliveries = dict(shard2_state["_log"])["d_item"]
    assert len(deliveries) > 0
    traffic = dict(
        (kind, sent) for kind, sent, _d, _b in shard2_state["_traffic"]
    )
    assert traffic.get("rps", 0) > 0
    assert traffic.get("item", 0) > 0


def test_scalar_pipeline_under_sharding_deterministic(dataset):
    with batch_scoring(False), delivery_batching(False):
        a = run_sharded(dataset, 2, cycles=10)
        b = run_sharded(dataset, 2, cycles=10)
    assert a == b


def test_legacy_state_under_sharding_deterministic(dataset):
    with array_state(False):
        a = run_sharded(dataset, 2, cycles=10)
        b = run_sharded(dataset, 2, cycles=10)
    assert a == b


def test_churn_under_sharding_deterministic(dataset):
    from repro.simulation import ChurnModel

    def fresh_churn():
        return ChurnModel(kill_rate=0.06, rejoin_after=2, start_cycle=2)

    a = run_sharded(dataset, 2, churn=fresh_churn())
    b = run_sharded(dataset, 2, churn=fresh_churn())
    assert a == b
    # kills actually happened and the aggregate counters surfaced
    churn = fresh_churn()
    run_sharded(dataset, 2, churn=churn)
    assert churn.total_kills > 0


def test_coldstart_join_under_sharding(dataset):
    def run_with_joins():
        with sharding(2):
            system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
            try:
                system.run(cycles=6, drain=False)
                j1 = system.join_node(1001, opinion=always_like)
                system.join_node(1002, opinion=always_like)
                assert j1.node_id == 1001
                system.run(cycles=8, drain=False)
                return system_state(system)
            finally:
                system.close()

    a = run_with_joins()
    b = run_with_joins()
    assert a == b
    assert a[1001][0] is True  # joiner alive
    assert len(a[1001][4]) > 0  # joiner received items


# --------------------------------------------------------------------------- #
# the facade surface                                                          #
# --------------------------------------------------------------------------- #


def test_facade_api(dataset):
    with sharding(2):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        engine = system.engine
        assert isinstance(engine, ShardedCycleEngine)
        try:
            n_users = dataset.n_users
            assert sorted(engine.alive_node_ids()) == list(range(n_users))
            system.run(cycles=5, drain=False)
            assert engine.now == 5
            assert engine.pending_item_messages() >= 0
            # node() fetches a live worker copy mid-run
            node = engine.node(3)
            assert node.node_id == 3
            # nodes property collects and is coherent afterwards
            assert sorted(engine.nodes) == list(range(n_users))
            # drain to empty
            system.run()
            assert engine.pending_item_messages() == 0
            assert engine.cycles_run > 5
        finally:
            system.close()
        # closed facade refuses further work
        with pytest.raises(Exception):
            engine.run(1)


def test_facade_observers_fire_per_cycle(dataset):
    with sharding(2):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        seen = []
        system.engine.add_observer(lambda eng, cycle: seen.append(cycle))
        try:
            system.run(cycles=4, drain=False)
        finally:
            system.close()
    assert seen == [0, 1, 2, 3]


def test_run_until_drained_sharded(dataset):
    with sharding(2):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        try:
            system.run()  # publish window + drain
            assert system.engine.pending_item_messages() == 0
        finally:
            system.close()


# --------------------------------------------------------------------------- #
# the shared-memory state plane                                               #
# --------------------------------------------------------------------------- #


def test_parent_reads_view_columns_zero_copy(dataset):
    with sharding(2):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        engine = system.engine
        try:
            if not engine._arenas:
                pytest.skip("no shared memory on this platform")
            system.run(cycles=5, drain=False)
            placement = engine.state_map()
            assert placement  # arena-resident views exist
            ids, ts = engine.view_columns(7, "rps")
            worker_copy = engine.node(7)
            assert ids.tolist() == worker_copy.rps.view.node_ids()
            assert len(ts) == len(ids)
        finally:
            system.close()


def test_collected_views_are_coherent_and_mutable(dataset):
    """Collected (unpickled) views rebuild private state that still works."""
    with sharding(2):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
        try:
            system.run(cycles=5, drain=False)
            view = system.engine.nodes[0].rps.view
            before = view.node_ids()
            stub = FrozenProfile({}, is_binary=True)
            view.upsert(ViewEntry(424242, "10.9.9.9", stub, 99))
            assert 424242 in view.node_ids()
            assert len(view.node_ids()) == len(before) + 1
        finally:
            system.close()


def _entry_stub():
    return FrozenProfile({}, is_binary=True)


def test_arrayview_rehome_onto_shared_memory():
    shared_memory = pytest.importorskip("multiprocessing.shared_memory")
    profile_stub = _entry_stub()

    def entry(nid, ts):
        return ViewEntry(nid, f"10.0.0.{nid}", profile_stub, ts)

    view = ArrayView(8, owner_id=99)
    twin = ArrayView(8, owner_id=99)
    for nid in range(6):
        view.upsert(entry(nid, nid * 3))
        twin.upsert(entry(nid, nid * 3))

    seg = shared_memory.SharedMemory(create=True, size=3 * 8 * 32)
    try:
        block = np.frombuffer(seg.buf, dtype=np.int64, count=3 * 24)
        block = block.reshape(3, 24)
        view.rehome(block)
        assert view._cols_addr == block.ctypes.data
        assert view.node_ids() == twin.node_ids()
        # mutations on the mapped block stay in lock-step with the twin
        for nid in range(6, 12):
            view.upsert(entry(nid, nid))
            twin.upsert(entry(nid, nid))
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        view.trim_random(rng_a)
        twin.trim_random(rng_b)
        assert view.node_ids() == twin.node_ids()
        assert view.oldest() == twin.oldest()
        # the shared segment really holds the data
        assert block[0, : len(view)].tolist() == view.node_ids()
        # release numpy views before closing the segment
        view._allocate(view._alloc)
        del block
    finally:
        seg.close()
        seg.unlink()


def test_rehome_rejects_undersized_block():
    view = ArrayView(8, owner_id=1)
    stub = _entry_stub()
    for nid in range(5):
        view.upsert(ViewEntry(nid + 2, "a", stub, nid))
    from repro.utils.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        view.rehome(np.empty((3, 2), dtype=np.int64))


# --------------------------------------------------------------------------- #
# pickle safety                                                               #
# --------------------------------------------------------------------------- #


def test_arrayview_pickle_roundtrip_rebinds_addresses():
    stub = _entry_stub()
    view = ArrayView(6, owner_id=50)
    for nid in range(5):
        view.upsert(ViewEntry(nid, "a", stub, nid * 2))
    clone = pickle.loads(pickle.dumps(view))
    assert clone.node_ids() == view.node_ids()
    assert clone.mutation_count == view.mutation_count
    assert clone._cols_addr == clone._cols.ctypes.data
    assert clone._ids.base is clone._cols
    # mutations after the round trip stay in lock-step with the original
    clone.upsert(ViewEntry(77, "a", stub, 9))
    view.upsert(ViewEntry(77, "a", stub, 9))
    assert clone.node_ids() == view.node_ids()
    assert clone.oldest().node_id == view.oldest().node_id


def test_frozen_profile_pickle_drops_native_descriptor():
    from repro.core.profiles import UserProfile

    profile = UserProfile()
    for iid in range(8):
        profile.record_opinion(iid, 1, iid % 2 == 0)
    snap = profile.snapshot()
    _ = snap.rated_ids  # materialise the packed arrays
    snap._pack()
    assert snap._nd is not None
    clone = pickle.loads(pickle.dumps(snap))
    assert clone._nd is None
    assert clone.uid == snap.uid
    assert clone.scores == snap.scores
    assert np.array_equal(clone.rated_ids, snap.rated_ids)


def test_node_pickle_drops_engine_hook_and_cache(dataset):
    from repro.core.similarity import default_score_cache

    # needs a live single-process engine so the alive-listener hook is
    # armed on the parent-side node objects
    with sharding(1):
        system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=SEED)
    system.run(cycles=3, drain=False)
    node = system.nodes[5]
    assert node._alive_listener is not None
    clone = pickle.loads(pickle.dumps(node))
    assert clone._alive_listener is None
    assert clone.beep.cache is default_score_cache()
    assert clone.wup.cache is default_score_cache()
    assert clone.rps.view.node_ids() == node.rps.view.node_ids()
    assert clone.profile.scores == node.profile.scores


# --------------------------------------------------------------------------- #
# log merging                                                                 #
# --------------------------------------------------------------------------- #


def test_dissemination_log_merge():
    a = DisseminationLog()
    a.log_delivery(0, 1, 2, 3, 0, True, True)
    a.log_forward(0, 1, 2, 3, True, 4)
    a.log_duplicates(2)
    b = DisseminationLog()
    b.log_delivery(5, 6, 7, 8, 1, False, False)
    b.log_duplicate()
    a.merge(b)
    assert a.n_deliveries == 2
    assert a.n_forwards == 1
    assert a.duplicates == 3
    assert a.d_item == [0, 5]
    assert a.d_liked == [True, False]


def test_no_stray_warnings_from_sharded_teardown(dataset):
    """A full construct/run/close cycle emits no warnings at all."""
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        run_sharded(dataset, 2, cycles=4)


# --------------------------------------------------------------------------- #
# programmatic configuration (repro.api.RunConfig)                            #
# --------------------------------------------------------------------------- #


def test_runconfig_programmatic_path_bitwise(dataset, shard2_state):
    """``run_config=RunConfig(shards=2)`` ≙ the ``sharding(2)`` context.

    The typed API and the env/context gates are the same resolution
    path: a programmatic sharded run reproduces the gated run bit for
    bit, and nothing leaks once the system is built.
    """
    from repro.api import RunConfig

    before = sharding_mod.shard_count()
    system = WhatsUpSystem(
        dataset,
        WhatsUpConfig(f_like=6),
        seed=SEED,
        run_config=RunConfig(shards=2),
    )
    try:
        assert sharding_mod.shard_count() == before  # scoped to construction
        system.run(cycles=CYCLES, drain=False)
        state = system_state(system)
    finally:
        system.close()
    assert state == shard2_state


def test_runconfig_wire_tier_sweep_bitwise(dataset, shard2_state):
    """Every wire tier selected through RunConfig matches the default."""
    from repro.api import RunConfig

    for tier in ("pickle", "columns"):
        system = WhatsUpSystem(
            dataset,
            WhatsUpConfig(f_like=6),
            seed=SEED,
            run_config=RunConfig(shards=2, wire_tier=tier),
        )
        try:
            system.run(cycles=CYCLES, drain=False)
            assert system_state(system) == shard2_state, tier
        finally:
            system.close()
