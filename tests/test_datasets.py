"""Unit and property tests for the workload generators (paper §IV-A)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.news import NewsItem
from repro.datasets import (
    Dataset,
    OpinionOracle,
    community_sizes,
    dataset_from_likes,
    digg_dataset,
    survey_dataset,
    synthetic_dataset,
    zipf_weights,
)
from repro.utils.exceptions import DatasetError


def small_synthetic(**kw) -> Dataset:
    defaults = dict(n_users=80, n_communities=8, items_per_community=4, seed=3)
    defaults.update(kw)
    return synthetic_dataset(**defaults)


class TestDatasetInvariants:
    """Invariants every generator must satisfy."""

    @pytest.fixture(
        params=[
            lambda: small_synthetic(),
            lambda: digg_dataset(n_users=60, n_items=90, seed=3),
            lambda: survey_dataset(n_base_users=30, n_base_items=40, seed=3),
            lambda: survey_dataset(
                n_base_users=20, n_base_items=25, replication=3, seed=3
            ),
        ],
        ids=["synthetic", "digg", "survey", "survey-x3"],
    )
    def dataset(self, request) -> Dataset:
        return request.param()

    def test_shapes_consistent(self, dataset):
        assert dataset.likes.shape == (dataset.n_users, dataset.n_items)
        assert len(dataset.item_topics) == dataset.n_items

    def test_every_item_has_interested_source(self, dataset):
        for idx, item in enumerate(dataset.items):
            assert 0 <= item.source < dataset.n_users
            assert dataset.likes[item.source, idx]

    def test_publication_cycles_in_window(self, dataset):
        for item in dataset.items:
            assert 0 <= item.created_at < dataset.publish_cycles

    def test_publication_roughly_uniform(self, dataset):
        cycles = np.array([it.created_at for it in dataset.items])
        # every quarter of the window gets at least one item
        for q in range(4):
            lo = q * dataset.publish_cycles / 4
            hi = (q + 1) * dataset.publish_cycles / 4
            assert ((cycles >= lo) & (cycles < hi)).any()

    def test_schedule_round_trip(self, dataset):
        sched = dataset.schedule()
        assert sched.n_items == dataset.n_items
        for idx, item in enumerate(dataset.items):
            assert sched.index_of(item.item_id) == idx

    def test_unique_item_ids(self, dataset):
        ids = [it.item_id for it in dataset.items]
        assert len(set(ids)) == len(ids)

    def test_popularity_in_unit_interval(self, dataset):
        pop = dataset.popularity()
        assert (pop > 0).all() and (pop <= 1).all()

    def test_summary_row(self, dataset):
        name, users, news = dataset.summary_row()
        assert users == dataset.n_users and news == dataset.n_items

    def test_determinism(self, dataset):
        # regenerating with the same parameters gives identical workloads
        pass  # per-generator determinism tested below


class TestSyntheticDataset:
    def test_community_sizes_sum_and_bounds(self):
        sizes = community_sizes(1000, 21, size_ratio=33.0)
        assert sum(sizes) == 1000
        assert min(sizes) >= 1
        assert max(sizes) / max(min(sizes), 1) >= 5  # a real spread

    def test_community_sizes_more_communities_than_users_raises(self):
        with pytest.raises(DatasetError):
            community_sizes(5, 10)

    def test_zero_noise_blocks_cross_community_likes(self):
        ds = small_synthetic(noise=0.0)
        # items of a community are liked by exactly that community's members
        for idx in range(ds.n_items):
            fans = np.flatnonzero(ds.likes[:, idx])
            topics_of_fans_items = ds.likes[fans].astype(int) @ (
                ds.item_topics == ds.item_topics[idx]
            )
            # all fans like *all* items of this community
            per_comm = (ds.item_topics == ds.item_topics[idx]).sum()
            assert (topics_of_fans_items == per_comm).all()

    def test_noise_adds_cross_community_likes(self):
        clean = small_synthetic(noise=0.0)
        noisy = small_synthetic(noise=0.3)
        assert noisy.likes.sum() > clean.likes.sum()

    def test_item_count(self):
        ds = small_synthetic()
        assert ds.n_items == 8 * 4

    def test_deterministic_in_seed(self):
        a = small_synthetic(seed=9)
        b = small_synthetic(seed=9)
        np.testing.assert_array_equal(a.likes, b.likes)
        assert [i.item_id for i in a.items] == [i.item_id for i in b.items]

    def test_different_seeds_differ(self):
        a = small_synthetic(seed=1)
        b = small_synthetic(seed=2)
        assert [i.item_id for i in a.items] != [i.item_id for i in b.items]

    def test_paper_scale_matches_table1(self):
        ds = synthetic_dataset(
            n_users=3180, n_communities=21, items_per_community=120, seed=0
        )
        assert ds.n_users == 3180
        assert ds.n_items == 2520  # the paper's "about 2000"
        assert ds.n_topics == 21


class TestDiggDataset:
    def test_zipf_weights_normalised_and_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_social_graph_present(self):
        ds = digg_dataset(n_users=50, n_items=60, seed=1)
        g = ds.social_graph
        assert g is not None
        assert g.number_of_nodes() == 50
        assert g.number_of_edges() > 0

    def test_graph_nodes_are_users(self):
        ds = digg_dataset(n_users=40, n_items=50, seed=1)
        assert set(ds.social_graph.nodes) == set(range(40))

    def test_no_self_follows(self):
        ds = digg_dataset(n_users=60, n_items=60, seed=2)
        assert all(u != v for u, v in ds.social_graph.edges)

    def test_interests_drive_likes(self):
        # With zero noise a user either likes every item of a topic (it is
        # one of her categories) or none — modulo the rare fans force-added
        # for items nobody liked (ensure_items_liked).
        ds = digg_dataset(n_users=50, n_items=100, noise=0.0, seed=4)
        partial_topic_count = 0
        for user in range(ds.n_users):
            liked_topics = set(ds.item_topics[np.flatnonzero(ds.likes[user])])
            for t in liked_topics:
                liked_of_t = int((ds.likes[user] & (ds.item_topics == t)).sum())
                total_of_t = int((ds.item_topics == t).sum())
                if liked_of_t != total_of_t:
                    partial_topic_count += 1
        # Forced fans create single-fan items; each can break at most one
        # (user, topic) pair, which bounds the number of partial topics.
        single_fan_items = int((ds.likes.sum(axis=0) == 1).sum())
        assert partial_topic_count <= single_fan_items

    def test_deterministic_in_seed(self):
        a = digg_dataset(n_users=40, n_items=50, seed=7)
        b = digg_dataset(n_users=40, n_items=50, seed=7)
        np.testing.assert_array_equal(a.likes, b.likes)
        assert sorted(a.social_graph.edges) == sorted(b.social_graph.edges)

    def test_homophily_increases_interest_alignment(self):
        def alignment(ds):
            g = ds.social_graph
            pairs = list(g.edges)
            sims = []
            for u, v in pairs:
                lu, lv = ds.likes[u], ds.likes[v]
                inter = (lu & lv).sum()
                union = (lu | lv).sum()
                sims.append(inter / union if union else 0.0)
            return float(np.mean(sims))

        low = digg_dataset(n_users=80, n_items=120, homophily=0.0, seed=5)
        high = digg_dataset(n_users=80, n_items=120, homophily=1.0, seed=5)
        assert alignment(high) > alignment(low)


class TestSurveyDataset:
    def test_replication_multiplies_dimensions(self):
        base = survey_dataset(n_base_users=20, n_base_items=30, replication=1, seed=1)
        rep = survey_dataset(n_base_users=20, n_base_items=30, replication=4, seed=1)
        assert rep.n_users == 4 * base.n_users
        assert rep.n_items == 4 * base.n_items

    def test_replicas_share_opinions(self):
        ds = survey_dataset(n_base_users=10, n_base_items=12, replication=2, seed=2)
        # replicas of the same base user must have identical like *rates*
        # over replicas of the same base items; verify via topic counts:
        # reconstruct per-user like counts per topic and check duplicates.
        per_user_topic = np.zeros((ds.n_users, ds.n_topics), dtype=int)
        for u in range(ds.n_users):
            for t in range(ds.n_topics):
                per_user_topic[u, t] = int(
                    (ds.likes[u] & (ds.item_topics == t)).sum()
                )
        # user u and u+10 are replicas (tiling order)
        for u in range(10):
            np.testing.assert_array_equal(
                per_user_topic[u], per_user_topic[u + 10]
            )

    def test_paper_scale_matches_table1(self):
        ds = survey_dataset(n_base_users=120, n_base_items=250, replication=4, seed=0)
        assert ds.n_users == 480
        assert ds.n_items == 1000

    def test_heterogeneous_user_like_rates(self):
        ds = survey_dataset(n_base_users=60, n_base_items=100, seed=3)
        rates = ds.likes.mean(axis=1)
        assert rates.std() > 0.02  # a real sociability spectrum

    def test_deterministic_in_seed(self):
        a = survey_dataset(n_base_users=15, n_base_items=20, seed=11)
        b = survey_dataset(n_base_users=15, n_base_items=20, seed=11)
        np.testing.assert_array_equal(a.likes, b.likes)


class TestCustomDataset:
    def test_from_matrix_basic(self):
        likes = np.zeros((5, 6), dtype=bool)
        likes[0, :] = True
        ds = dataset_from_likes(likes, name="mine", seed=1)
        assert ds.n_users == 5 and ds.n_items == 6
        assert ds.name == "mine"

    def test_empty_columns_get_a_fan(self):
        likes = np.zeros((4, 3), dtype=bool)
        ds = dataset_from_likes(likes, seed=1)
        assert (ds.likes.sum(axis=0) >= 1).all()

    def test_no_shuffle_preserves_order(self):
        likes = np.eye(4, dtype=bool)
        ds = dataset_from_likes(likes, shuffle_items=False, seed=1)
        # item i liked exactly by user i in the original order
        for i in range(4):
            assert ds.likes[i, i]

    def test_topics_enable_subscriptions(self):
        likes = np.ones((3, 4), dtype=bool)
        ds = dataset_from_likes(likes, item_topics=np.array([0, 0, 1, 1]), seed=1)
        subs = ds.topic_subscriptions()
        assert subs[0] == {0, 1}

    def test_invalid_shapes_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_likes(np.zeros((0, 3), dtype=bool))
        with pytest.raises(DatasetError):
            dataset_from_likes(np.zeros(3, dtype=bool))
        with pytest.raises(DatasetError):
            dataset_from_likes(
                np.ones((2, 2), dtype=bool), item_topics=np.array([1])
            )


class TestDatasetValidation:
    def _items(self, n, n_users=3, cycles=5):
        return [
            NewsItem.publish(source=0, created_at=i % cycles, title=f"i{i}")
            for i in range(n)
        ]

    def test_shape_mismatch_raises(self):
        with pytest.raises(DatasetError, match="shape"):
            Dataset(
                name="bad",
                n_users=3,
                items=self._items(2),
                likes=np.ones((3, 5), dtype=bool),
                publish_cycles=5,
            )

    def test_source_must_like_item(self):
        items = self._items(1)
        likes = np.zeros((3, 1), dtype=bool)  # source 0 does not like item 0
        with pytest.raises(DatasetError, match="does not like"):
            Dataset(
                name="bad", n_users=3, items=items, likes=likes, publish_cycles=5
            )

    def test_topicless_dataset_refuses_subscriptions(self):
        likes = np.ones((2, 2), dtype=bool)
        ds = dataset_from_likes(likes, seed=0)
        with pytest.raises(DatasetError, match="no topics"):
            ds.topic_subscriptions()


class TestOpinionOracle:
    def test_oracle_matches_matrix(self):
        ds = small_synthetic()
        oracle = OpinionOracle(ds)
        for idx in [0, 5, len(ds.items) - 1]:
            item = ds.items[idx]
            for user in [0, ds.n_users // 2, ds.n_users - 1]:
                assert oracle(user, item) == bool(ds.likes[user, idx])


@settings(max_examples=20, deadline=None)
@given(
    n_users=st.integers(10, 60),
    n_comm=st.integers(2, 8),
    items_per=st.integers(1, 5),
    seed=st.integers(0, 10),
)
def test_synthetic_generator_properties(n_users, n_comm, items_per, seed):
    if n_comm > n_users:
        return
    ds = synthetic_dataset(
        n_users=n_users,
        n_communities=n_comm,
        items_per_community=items_per,
        seed=seed,
    )
    assert ds.n_items == n_comm * items_per
    assert ds.likes.any(axis=0).all()  # every item liked by someone
    for idx, item in enumerate(ds.items):
        assert ds.likes[item.source, idx]
