"""Unit tests for the RPS and clustering (Vicinity) gossip protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiles import FrozenProfile
from repro.core.similarity import wup_similarity
from repro.gossip.rps import RpsMessage, RpsProtocol
from repro.gossip.vicinity import ClusteringMessage, ClusteringProtocol
from repro.gossip.views import ViewEntry
from tests.conftest import make_user_profile


def snapshot(likes: tuple[int, ...] = ()) -> FrozenProfile:
    return FrozenProfile({i: 1.0 for i in likes}, is_binary=True)


def entry(node_id: int, ts: int = 0, likes: tuple[int, ...] = ()) -> ViewEntry:
    return ViewEntry(node_id, f"10.0.0.{node_id}", snapshot(likes), ts)


@pytest.fixture
def rps_pair(rng):
    a = RpsProtocol(1, view_size=4, rng=np.random.default_rng(1))
    b = RpsProtocol(2, view_size=4, rng=np.random.default_rng(2))
    return a, b


class TestRpsProtocol:
    def test_initiate_empty_view_returns_none(self, rps_pair):
        a, _ = rps_pair
        assert a.initiate(snapshot(), now=0) is None

    def test_partner_is_oldest(self, rps_pair):
        a, _ = rps_pair
        a.view.upsert(entry(5, ts=3))
        a.view.upsert(entry(7, ts=1))
        assert a.select_partner() == 7

    def test_request_carries_own_descriptor_first(self, rps_pair):
        a, _ = rps_pair
        a.view.upsert(entry(9, ts=0))
        partner, msg = a.initiate(snapshot((1,)), now=4)
        assert partner == 9
        assert msg.is_request
        assert msg.entries[0].node_id == 1
        assert msg.entries[0].timestamp == 4

    def test_request_ships_half_view(self):
        a = RpsProtocol(1, view_size=8, rng=np.random.default_rng(0))
        for i in range(2, 10):
            a.view.upsert(entry(i))
        _, msg = a.initiate(snapshot(), now=0)
        # own descriptor + half of 8 = 4
        assert len(msg.entries) == 1 + 4

    def test_shipment_excludes_partner_descriptor(self):
        a = RpsProtocol(1, view_size=2, rng=np.random.default_rng(0))
        a.view.upsert(entry(2, ts=0))
        a.view.upsert(entry(3, ts=5))
        partner, msg = a.initiate(snapshot(), now=6)
        assert partner == 2
        shipped_ids = {e.node_id for e in msg.entries}
        assert 2 not in shipped_ids

    def test_handle_request_returns_reply_and_merges(self, rps_pair):
        a, b = rps_pair
        a.view.upsert(entry(2, ts=0))
        _, req = a.initiate(snapshot((1,)), now=1)
        reply = b.handle(req, snapshot((2,)), now=1)
        assert isinstance(reply, RpsMessage)
        assert not reply.is_request
        assert 1 in b.view  # learned about a

    def test_handle_reply_returns_none(self, rps_pair):
        a, b = rps_pair
        reply = RpsMessage(2, (entry(2, ts=1),), is_request=False)
        assert a.handle(reply, snapshot(), now=1) is None
        assert 2 in a.view

    def test_view_never_exceeds_capacity(self, rps_pair):
        a, _ = rps_pair
        big = RpsMessage(
            9, tuple(entry(i, ts=1) for i in range(10, 30)), is_request=False
        )
        a.handle(big, snapshot(), now=1)
        assert len(a.view) <= a.view.capacity

    def test_own_descriptor_never_kept(self, rps_pair):
        a, _ = rps_pair
        msg = RpsMessage(2, (entry(1, ts=9), entry(2, ts=9)), is_request=False)
        a.handle(msg, snapshot(), now=9)
        assert 1 not in a.view

    def test_wire_size(self):
        msg = RpsMessage(1, (entry(2, likes=(1, 2)),), is_request=True)
        assert msg.wire_size() == 1 + (4 + 8 + 8) + 16 + 3

    def test_push_pull_converges_views(self):
        # after one full exchange both nodes know each other
        a = RpsProtocol(1, view_size=4, rng=np.random.default_rng(1))
        b = RpsProtocol(2, view_size=4, rng=np.random.default_rng(2))
        a.view.upsert(entry(2, ts=0))
        _, req = a.initiate(snapshot((1,)), now=1)
        reply = b.handle(req, snapshot((2,)), now=1)
        a.handle(reply, snapshot((1,)), now=1)
        assert 2 in a.view and 1 in b.view
        assert a.view.get(2).timestamp == 1  # refreshed descriptor


class TestClusteringProtocol:
    def _proto(self, node_id: int, view_size: int = 3) -> ClusteringProtocol:
        return ClusteringProtocol(
            node_id,
            view_size=view_size,
            metric=wup_similarity,
            rng=np.random.default_rng(node_id),
        )

    def test_initiate_ships_entire_view(self):
        p = self._proto(1, view_size=5)
        for i in range(2, 6):
            p.view.upsert(entry(i, ts=i))
        partner, msg = p.initiate(snapshot((1,)), now=9)
        assert partner == 2  # oldest
        # own descriptor + all entries except the partner's
        assert len(msg.entries) == 1 + 3
        assert isinstance(msg, ClusteringMessage)

    def test_merge_keeps_most_similar(self):
        own = make_user_profile([1, 2, 3]).snapshot()
        p = self._proto(1, view_size=2)
        p.merge(
            own,
            [
                entry(10, likes=(1, 2, 3)),   # sim 1.0
                entry(11, likes=(1,)),        # high (selective)
                entry(12, likes=(50,)),       # sim 0
                entry(13, likes=(60,)),       # sim 0
            ],
        )
        kept = set(p.view.node_ids())
        assert kept == {10, 11}

    def test_merge_includes_rps_candidates(self):
        own = make_user_profile([1, 2]).snapshot()
        p = self._proto(1, view_size=1)
        p.merge(own, [], rps_entries=[entry(42, likes=(1, 2))])
        assert p.view.node_ids() == [42]

    def test_handle_request_replies_and_merges(self):
        own_a = make_user_profile([1]).snapshot()
        own_b = make_user_profile([1]).snapshot()
        a, b = self._proto(1), self._proto(2)
        a.view.upsert(entry(2, ts=0))
        _, req = a.initiate(own_a, now=1)
        reply = b.handle(req, own_b, now=1)
        assert reply is not None and not reply.is_request
        assert 1 in b.view
        a.handle(reply, own_a, now=1)
        assert 2 in a.view

    def test_refresh_reranks_with_new_profile(self):
        p = self._proto(1, view_size=1)
        old_profile = make_user_profile([50]).snapshot()
        p.merge(old_profile, [entry(10, likes=(50,)), entry(11, likes=(1, 2))])
        assert p.view.node_ids() == [10]
        new_profile = make_user_profile([1, 2]).snapshot()
        p.refresh(new_profile, [entry(10, likes=(50,)), entry(11, likes=(1, 2))])
        assert p.view.node_ids() == [11]

    def test_view_capacity_respected(self):
        own = make_user_profile([1]).snapshot()
        p = self._proto(1, view_size=2)
        p.merge(own, [entry(i, likes=(1,)) for i in range(10, 20)])
        assert len(p.view) == 2

    def test_wup_vs_cosine_instantiation(self):
        # the protocol is metric-agnostic: same candidates, different ranking
        from repro.core.similarity import cosine_similarity

        own = make_user_profile([1, 2, 3, 4]).snapshot()
        candidates = [
            entry(10, likes=(1,)),            # selective: WUP favours
            entry(11, likes=(1, 2, 3, 4, 5, 6, 7, 8)),  # broad overlap: cosine favours
        ]
        wup_p = ClusteringProtocol(1, 1, wup_similarity, np.random.default_rng(0))
        cos_p = ClusteringProtocol(1, 1, cosine_similarity, np.random.default_rng(0))
        wup_p.merge(own, candidates)
        cos_p.merge(own, candidates)
        assert wup_p.view.node_ids() == [10]
        assert cos_p.view.node_ids() == [11]
