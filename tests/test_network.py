"""Unit tests for transports, envelopes and traffic statistics."""

from __future__ import annotations

import pytest

from repro.core.news import ItemCopy, NewsItem
from repro.network.message import Envelope, MessageKind
from repro.network.stats import TrafficStats
from repro.network.transport import (
    PerfectTransport,
    PlanetLabTransport,
    UniformLossTransport,
)
from repro.utils.exceptions import ConfigurationError


def env(target=1, kind=MessageKind.ITEM, size=100) -> Envelope:
    return Envelope(sender=0, target=target, kind=kind, payload=None, size_bytes=size)


class TestPerfectTransport:
    def test_always_delivers(self, rng):
        t = PerfectTransport()
        assert all(t.attempt(env(), rng) for _ in range(100))


class TestUniformLossTransport:
    def test_zero_loss_always_delivers(self, rng):
        t = UniformLossTransport(0.0)
        assert all(t.attempt(env(), rng) for _ in range(100))

    def test_full_loss_never_delivers(self, rng):
        t = UniformLossTransport(1.0)
        assert not any(t.attempt(env(), rng) for _ in range(100))

    def test_empirical_rate_close_to_nominal(self, rng):
        t = UniformLossTransport(0.2)
        n = 20_000
        delivered = sum(t.attempt(env(), rng) for _ in range(n))
        assert delivered / n == pytest.approx(0.8, abs=0.02)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLossTransport(1.5)


class TestPlanetLabTransport:
    def test_setup_marks_fraction_overloaded(self, rng):
        t = PlanetLabTransport(overloaded_fraction=0.3)
        t.setup(range(100), rng)
        assert len(t.overloaded_nodes) == 30

    def test_zero_fraction_no_overloaded(self, rng):
        t = PlanetLabTransport(overloaded_fraction=0.0, base_loss=0.0)
        t.setup(range(50), rng)
        assert not t.overloaded_nodes
        assert all(t.attempt(env(target=i), rng) for i in range(50))

    def test_overloaded_nodes_lose_more(self, rng):
        t = PlanetLabTransport(
            overloaded_fraction=0.5,
            overloaded_loss=0.5,
            base_loss=0.0,
            inbox_capacity=0,
        )
        t.setup(range(100), rng)
        over = next(iter(t.overloaded_nodes))
        ok_node = next(i for i in range(100) if i not in t.overloaded_nodes)
        n = 4000
        over_rate = sum(t.attempt(env(target=over), rng) for _ in range(n)) / n
        ok_rate = sum(t.attempt(env(target=ok_node), rng) for _ in range(n)) / n
        assert ok_rate == 1.0
        assert over_rate == pytest.approx(0.5, abs=0.05)

    def test_inbox_congestion_drops_excess(self, rng):
        t = PlanetLabTransport(
            overloaded_fraction=1.0,
            overloaded_loss=0.0,
            base_loss=0.0,
            inbox_capacity=5,
        )
        t.setup([7], rng)
        t.begin_cycle()
        outcomes = [t.attempt(env(target=7), rng) for _ in range(10)]
        assert outcomes == [True] * 5 + [False] * 5

    def test_begin_cycle_resets_congestion(self, rng):
        t = PlanetLabTransport(
            overloaded_fraction=1.0,
            overloaded_loss=0.0,
            base_loss=0.0,
            inbox_capacity=1,
        )
        t.setup([7], rng)
        t.begin_cycle()
        assert t.attempt(env(target=7), rng)
        assert not t.attempt(env(target=7), rng)
        t.begin_cycle()
        assert t.attempt(env(target=7), rng)

    def test_gossip_not_subject_to_inbox_cap(self, rng):
        t = PlanetLabTransport(
            overloaded_fraction=1.0,
            overloaded_loss=0.0,
            base_loss=0.0,
            inbox_capacity=1,
        )
        t.setup([7], rng)
        t.begin_cycle()
        outcomes = [
            t.attempt(env(target=7, kind=MessageKind.RPS), rng) for _ in range(5)
        ]
        assert all(outcomes)


class TestTrafficStats:
    def test_record_delivery_and_drop(self):
        s = TrafficStats()
        s.record(env(size=10), delivered=True)
        s.record(env(size=10), delivered=False)
        assert s.sent[MessageKind.ITEM] == 2
        assert s.delivered[MessageKind.ITEM] == 1
        assert s.dropped[MessageKind.ITEM] == 1
        assert s.bytes_delivered[MessageKind.ITEM] == 10

    def test_loss_rate(self):
        s = TrafficStats()
        for i in range(10):
            s.record(env(), delivered=i < 7)
        assert s.loss_rate() == pytest.approx(0.3)
        assert s.loss_rate(MessageKind.ITEM) == pytest.approx(0.3)
        assert s.loss_rate(MessageKind.RPS) == 0.0

    def test_item_vs_gossip_split(self):
        s = TrafficStats()
        s.record(env(kind=MessageKind.ITEM), True)
        s.record(env(kind=MessageKind.RPS), True)
        s.record(env(kind=MessageKind.WUP), True)
        assert s.item_messages() == 1
        assert s.gossip_messages() == 2
        assert s.total_sent() == 3

    def test_messages_per_user_per_cycle(self):
        s = TrafficStats()
        for _ in range(100):
            s.record(env(kind=MessageKind.ITEM), True)
        assert s.messages_per_user_per_cycle(n_nodes=10, n_cycles=5) == pytest.approx(
            2.0
        )
        assert s.messages_per_user(n_nodes=10) == pytest.approx(10.0)

    def test_bandwidth_kbps(self):
        s = TrafficStats()
        # 30s cycles, 2 nodes, 1 cycle: 7500 bytes => 7500*8/1000/30/2 = 1 Kbps
        s.record(env(size=7500), True)
        assert s.bandwidth_kbps(2, 1, 30.0) == pytest.approx(1.0)
        assert s.bandwidth_kbps(2, 1, 30.0, MessageKind.RPS) == 0.0

    def test_degenerate_dimensions(self):
        s = TrafficStats()
        assert s.messages_per_user_per_cycle(0, 0) == 0.0
        assert s.bandwidth_kbps(0, 0, 0) == 0.0
        assert s.loss_rate() == 0.0

    def test_merge(self):
        a, b = TrafficStats(), TrafficStats()
        a.record(env(size=5), True)
        b.record(env(size=7), False)
        a.merge(b)
        assert a.sent[MessageKind.ITEM] == 2
        assert a.dropped[MessageKind.ITEM] == 1


class TestWireSizes:
    def test_item_copy_wire_size(self):
        from repro.core.profiles import ItemProfile

        item = NewsItem.publish(source=1, created_at=0, title="t")
        profile = ItemProfile()
        profile.set(1, 0, 1.0)
        profile.set(2, 0, 0.5)
        copy = ItemCopy(item=item, profile=profile)
        assert copy.wire_size() == (8 + 1 + 600) + 2 * 24

    def test_clone_for_forward_increments_hops_and_copies_profile(self):
        item = NewsItem.publish(source=1, created_at=0)
        copy = ItemCopy(item=item)
        copy.profile.set(1, 0, 1.0)
        clone = copy.clone_for_forward()
        assert clone.hops == copy.hops + 1
        clone.profile.set(2, 0, 1.0)
        assert 2 not in copy.profile
        assert clone.item is copy.item  # immutable part shared
