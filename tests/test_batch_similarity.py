"""Tests for the batch similarity subsystem.

Covers the tentpole guarantees of the vectorised scoring stack:

* :func:`repro.core.similarity.score_candidates` matches the scalar metrics
  pairwise — to 1e-12 by requirement, and bitwise in practice — across
  binary, real-valued, empty and disjoint profiles, both orientations of
  the asymmetric WUP metric, and both sides of the adaptive scalar/numpy
  dispatch threshold;
* the version-keyed :class:`~repro.core.similarity.ScoreCache` serves
  unchanged pairs and can never serve a stale score after a
  ``set``/``remove``/``purge_older_than`` version bump;
* ``View.trim_ranked`` with precomputed scores (and the aligned fast path)
  selects exactly what the key-based form selects;
* a full fixed-seed WhatsUpSystem run produces *identical* view contents
  under the scalar and batch paths;
* the engine's O(1) pending-message counter and cached alive-id list stay
  coherent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WhatsUpConfig, WhatsUpSystem
from repro.core.profiles import FrozenProfile, UserProfile, pack_id_array
from repro.core.similarity import (
    CACHE_MIN_OWNER_ENTRIES,
    VECTOR_MIN_PAIRS,
    ScoreCache,
    available_metrics,
    batch_scoring,
    default_score_cache,
    get_metric,
    metric_name_of,
    native_available,
    native_kernel,
    score_candidates,
    set_batch_scoring,
    wup_similarity,
)
from repro.datasets import survey_dataset
from repro.gossip.views import View, ViewEntry
from repro.utils.exceptions import ConfigurationError
from tests.conftest import make_item_profile, make_user_profile


def random_binary_frozen(rng, n_items=40, universe=500) -> FrozenProfile:
    ids = rng.choice(universe, size=n_items, replace=False)
    return FrozenProfile(
        {int(i): float(rng.random() < 0.6) for i in ids}, is_binary=True
    )


def random_real_frozen(rng, n_items=40, universe=500) -> FrozenProfile:
    ids = rng.choice(universe, size=n_items, replace=False)
    return FrozenProfile(
        {int(i): float(rng.random()) for i in ids}, is_binary=False
    )


class TestScoreCandidatesEquivalence:
    @pytest.mark.parametrize("metric", ["wup", "cosine", "jaccard", "overlap"])
    @pytest.mark.parametrize("role", ["n", "c"])
    def test_binary_pools_match_scalar(self, metric, role):
        rng = np.random.default_rng(101)
        fn = get_metric(metric)
        for _trial in range(8):
            owner = random_binary_frozen(rng, n_items=int(rng.integers(1, 60)))
            pool = [
                random_binary_frozen(rng, n_items=int(rng.integers(0, 60)))
                for _ in range(12)
            ]
            got = score_candidates(owner, pool, metric, owner_role=role)
            for c, s in zip(pool, got, strict=True):
                want = fn(owner, c) if role == "n" else fn(c, owner)
                assert s == pytest.approx(want, abs=1e-12)
                assert s == want  # bitwise, by construction

    @pytest.mark.parametrize("metric", ["wup", "cosine"])
    @pytest.mark.parametrize("role", ["n", "c"])
    def test_real_valued_pools_match_scalar(self, metric, role):
        rng = np.random.default_rng(202)
        fn = get_metric(metric)
        for _trial in range(6):
            owner = random_real_frozen(rng, n_items=int(rng.integers(1, 80)))
            pool = [
                random_real_frozen(rng, n_items=int(rng.integers(0, 80)))
                for _ in range(8)
            ] + [random_binary_frozen(rng) for _ in range(4)]
            got = score_candidates(owner, pool, metric, owner_role=role)
            for c, s in zip(pool, got, strict=True):
                want = fn(owner, c) if role == "n" else fn(c, owner)
                assert s == pytest.approx(want, abs=1e-12)

    def test_item_profile_owner_matches_scalar(self):
        # BEEP orientation: live mutable ItemProfile against binary peers
        rng = np.random.default_rng(7)
        item = make_item_profile(
            {int(i): float(rng.random()) for i in rng.choice(300, 50, replace=False)}
        )
        pool = [random_binary_frozen(rng, n_items=25) for _ in range(10)]
        got = score_candidates(item, pool, "wup", owner_role="c")
        want = [wup_similarity(p, item) for p in pool]
        assert got == want

    def test_empty_and_disjoint_profiles(self):
        empty = FrozenProfile({}, is_binary=True)
        a = FrozenProfile({1: 1.0, 2: 1.0, 3: 0.0}, is_binary=True)
        b = FrozenProfile({9: 1.0, 10: 0.0}, is_binary=True)  # disjoint from a
        for metric in available_metrics():
            fn = get_metric(metric)
            got = score_candidates(a, [empty, b, a], metric)
            assert got[0] == fn(a, empty) == 0.0
            assert got[1] == fn(a, b) == 0.0
            assert got[2] == fn(a, a)
            assert score_candidates(empty, [a, b], metric) == [0.0, 0.0]

    def test_vectorised_path_matches_scalar(self):
        # pool large enough to cross the adaptive numpy threshold
        rng = np.random.default_rng(303)
        owner = random_binary_frozen(rng, n_items=120, universe=4000)
        pool = [
            random_binary_frozen(rng, n_items=100, universe=4000)
            for _ in range(VECTOR_MIN_PAIRS + 8)
        ]
        for metric in available_metrics():
            fn = get_metric(metric)
            got = score_candidates(owner, pool, metric)
            want = [fn(owner, c) for c in pool]
            assert got == want  # bitwise even through the numpy kernel

    def test_vectorised_real_valued_matches_scalar(self):
        rng = np.random.default_rng(404)
        owner = random_real_frozen(rng, n_items=120, universe=3000)
        pool = [
            random_real_frozen(rng, n_items=90, universe=3000)
            for _ in range(VECTOR_MIN_PAIRS + 4)
        ]
        for role in ("n", "c"):
            got = score_candidates(owner, pool, "wup", owner_role=role)
            want = [
                wup_similarity(owner, c) if role == "n" else wup_similarity(c, owner)
                for c in pool
            ]
            assert got == want

    def test_custom_callable_falls_back_to_pairwise(self):
        calls = []

        def fake_metric(a, b):
            calls.append((a, b))
            return 0.5

        owner = FrozenProfile({1: 1.0}, is_binary=True)
        pool = [FrozenProfile({2: 1.0}, is_binary=True)] * 3
        assert metric_name_of(fake_metric) is None
        assert score_candidates(owner, pool, fake_metric) == [0.5] * 3
        assert len(calls) == 3

    def test_empty_pool_and_bad_role(self):
        owner = FrozenProfile({1: 1.0}, is_binary=True)
        assert score_candidates(owner, [], "wup") == []
        with pytest.raises(ConfigurationError):
            score_candidates(owner, [owner], "wup", owner_role="x")
        with pytest.raises(ConfigurationError):
            score_candidates(owner, [owner], "not-a-metric")


def big_user_profile(likes, dislikes=()) -> UserProfile:
    """A user profile large enough to clear the cache's size gate."""
    profile = make_user_profile(list(likes), dislikes=list(dislikes))
    for iid in range(9000, 9000 + CACHE_MIN_OWNER_ENTRIES):
        profile.record_opinion(iid, 0, True)
    return profile


class TestScoreCache:
    def test_second_call_is_served_from_cache(self):
        owner = big_user_profile([1, 2, 3]).snapshot()
        pool = [FrozenProfile({1: 1.0, 5: 1.0}, is_binary=True) for _ in range(6)]
        cache = ScoreCache()
        first = score_candidates(owner, pool, "wup", cache=cache)
        assert cache.misses == 6 and cache.hits == 0
        second = score_candidates(owner, pool, "wup", cache=cache)
        assert second == first
        assert cache.hits == 6 and cache.misses == 6

    @pytest.mark.parametrize("mutation", ["set", "remove", "purge"])
    def test_owner_version_bump_evicts(self, mutation):
        profile = big_user_profile([1, 2, 3], dislikes=[4])
        cand = FrozenProfile({1: 1.0, 2: 1.0, 4: 0.0}, is_binary=True)
        cache = ScoreCache()
        before = score_candidates(profile.snapshot(), [cand], "wup", cache=cache)[0]
        assert before == wup_similarity(profile.snapshot(), cand)
        assert cache.misses == 1

        if mutation == "set":
            profile.record_opinion(2, 0, False)  # flip a like to a dislike
        elif mutation == "remove":
            profile.remove(1)
        else:
            # age out the original entries; fresh ratings keep the profile
            # above the cache's owner-size gate
            for iid in range(7000, 7000 + CACHE_MIN_OWNER_ENTRIES):
                profile.record_opinion(iid, 50, True)
            assert profile.purge_older_than(25) > 0

        after = score_candidates(profile.snapshot(), [cand], "wup", cache=cache)[0]
        # a fresh snapshot uid -> the stale entry is unreachable: re-scored
        assert cache.misses == 2
        assert after == wup_similarity(profile.snapshot(), cand)
        assert after != before

    def test_candidate_version_bump_evicts(self):
        owner_profile = big_user_profile([1, 2, 3])
        owner = owner_profile.snapshot()
        cand_profile = UserProfile()
        cand_profile.record_opinion(1, 0, True)
        cache = ScoreCache()
        before = score_candidates(
            owner, [cand_profile.snapshot()], "wup", cache=cache
        )[0]
        cand_profile.record_opinion(2, 0, False)  # version bump
        after = score_candidates(
            owner, [cand_profile.snapshot()], "wup", cache=cache
        )[0]
        assert cache.misses == 2 and cache.hits == 0
        assert after == wup_similarity(owner, cand_profile.snapshot())
        assert after != before

    def test_tiny_owner_profiles_skip_the_cache(self):
        owner = make_user_profile([1]).snapshot()
        cand = FrozenProfile({1: 1.0}, is_binary=True)
        cache = ScoreCache()
        score_candidates(owner, [cand], "wup", cache=cache)
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0

    def test_eviction_bounds_size(self):
        cache = ScoreCache(max_entries=40)
        rng = np.random.default_rng(5)
        for _ in range(30):
            owner = random_binary_frozen(rng, n_items=CACHE_MIN_OWNER_ENTRIES + 4)
            pool = [random_binary_frozen(rng, n_items=8) for _ in range(5)]
            score_candidates(owner, pool, "wup", cache=cache)
        assert len(cache) <= 40

    def test_clear(self):
        cache = ScoreCache()
        owner = big_user_profile([1]).snapshot()
        score_candidates(
            owner, [FrozenProfile({1: 1.0}, is_binary=True)], "wup", cache=cache
        )
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestPackedSnapshots:
    def test_packed_arrays_sorted_and_aligned(self):
        snap = FrozenProfile({30: 1.0, 5: 0.0, 17: 0.5}, is_binary=False)
        assert snap.rated_ids.tolist() == [5, 17, 30]
        assert snap.rated_scores.tolist() == [0.0, 0.5, 1.0]
        assert snap.liked_ids.tolist() == [17, 30]

    def test_uid_is_stable_per_version_and_fresh_after_mutation(self):
        profile = UserProfile()
        profile.record_opinion(1, 0, True)
        s1 = profile.snapshot()
        assert profile.snapshot().uid == s1.uid  # memoised
        profile.record_opinion(2, 0, True)
        s2 = profile.snapshot()
        assert s2.uid != s1.uid
        assert s2.version > s1.version

    def test_pack_id_array_handles_out_of_range_ids(self):
        arr = pack_id_array({-1: 0, 3: 0, 2**63 + 5: 0}.keys(), 3)
        assert arr.dtype == np.uint64
        assert len(set(arr.tolist())) == 3

    def test_huge_item_ids_score_correctly(self):
        big = 2**63 + 11  # realistic 8-byte digests exceed int64
        a = FrozenProfile({big: 1.0, 3: 1.0}, is_binary=True)
        b = FrozenProfile({big: 1.0}, is_binary=True)
        assert score_candidates(a, [b], "wup")[0] == wup_similarity(a, b)


class TestTrimRankedScores:
    def entries(self, n=9):
        rng = np.random.default_rng(31)
        out = []
        for nid in range(1, n + 1):
            profile = FrozenProfile(
                {int(i): 1.0 for i in rng.choice(50, 5, replace=False)},
                is_binary=True,
            )
            out.append(ViewEntry(nid, "10.0.0.1", profile, int(rng.integers(10))))
        return out

    def test_scores_mapping_matches_key_form(self):
        rng = np.random.default_rng(8)
        entries = self.entries()
        scores = {e.node_id: float(rng.choice([0.0, 0.25, 0.5])) for e in entries}
        v_key, v_scores = View(4, owner_id=0), View(4, owner_id=0)
        v_key.upsert_all(entries)
        v_scores.upsert_all(entries)
        v_key.trim_ranked(lambda e: scores[e.node_id])
        v_scores.trim_ranked(scores=scores)
        assert v_key.node_ids() == v_scores.node_ids()

    def test_aligned_form_matches_mapping_form(self):
        rng = np.random.default_rng(9)
        entries = self.entries()
        aligned = [float(rng.choice([0.0, 0.25, 0.5])) for _ in entries]
        mapping = {e.node_id: s for e, s in zip(entries, aligned, strict=True)}
        v_map, v_aligned = View(4, owner_id=0), View(4, owner_id=0)
        v_map.upsert_all(entries)
        v_aligned.upsert_all(entries)
        v_map.trim_ranked(scores=mapping)
        v_aligned.trim_ranked_aligned(v_aligned.entries(), aligned)
        assert v_map.node_ids() == v_aligned.node_ids()

    def test_exactly_one_ranking_source_required(self):
        v = View(2, owner_id=0)
        with pytest.raises(ConfigurationError):
            v.trim_ranked()
        with pytest.raises(ConfigurationError):
            v.trim_ranked(lambda e: 0.0, scores={})

    def test_missing_scores_use_default(self):
        entries = self.entries(3)
        v = View(1, owner_id=0)
        v.upsert_all(entries)
        v.trim_ranked(scores={entries[2].node_id: 1.0}, default=0.0)
        assert v.node_ids() == [entries[2].node_id]

    def test_mutation_count_advances(self):
        v = View(2, owner_id=0)
        tag = v.mutation_count
        v.upsert_all(self.entries(4))
        assert v.mutation_count > tag
        tag = v.mutation_count
        v.trim_ranked(scores={})
        assert v.mutation_count > tag


class TestEndToEndEquivalence:
    """Fixed-seed three-way equivalence: scalar, batch and native tiers."""

    @staticmethod
    def _run(batch: bool, native: bool):
        # the restore-guarded context managers keep a failure here from
        # poisoning the module globals for the rest of the suite
        with batch_scoring(batch), native_kernel(native):
            default_score_cache().clear()
            dataset = survey_dataset(
                n_base_users=60, n_base_items=80, publish_cycles=15, seed=5
            )
            system = WhatsUpSystem(dataset, WhatsUpConfig(f_like=6), seed=5)
            system.engine.run(25)
        return {
            n.node_id: (
                sorted(n.wup.view.node_ids()),
                sorted(n.rps.view.node_ids()),
                sorted(n.profile.scores.items()),
            )
            for n in system.nodes
        }

    def test_scalar_and_batch_paths_produce_identical_views(self):
        assert self._run(False, False) == self._run(True, False)

    def test_batch_toggle_returns_previous(self):
        first = set_batch_scoring(False)
        try:
            assert set_batch_scoring(first) is False
        finally:
            set_batch_scoring(first)

    def test_scoring_disabled_pins_and_restores_both_gates(self):
        from repro.core.similarity import (
            batch_scoring_enabled,
            native_kernel_enabled,
            scoring_disabled,
        )

        batch_before = batch_scoring_enabled()
        native_before = native_kernel_enabled()
        with pytest.raises(RuntimeError), scoring_disabled():
            assert not batch_scoring_enabled()
            assert not native_kernel_enabled()
            raise RuntimeError("boom")
        # restored even though the guarded block raised
        assert batch_scoring_enabled() == batch_before
        assert native_kernel_enabled() == native_before

    @pytest.mark.skipif(
        not native_available(), reason="native kernel not built"
    )
    def test_native_path_produces_identical_views(self):
        assert self._run(True, False) == self._run(True, True)


class TestEngineCounters:
    def _system(self):
        # unit tests of the single-process engine's internal counters
        # (_future_inboxes, the alive-id cache): pin REPRO_SHARDS=1 so a
        # forced sharded environment (the CI sharded leg) does not swap
        # the facade in under them
        from repro.simulation.sharding import sharding

        dataset = survey_dataset(
            n_base_users=40, n_base_items=50, publish_cycles=10, seed=3
        )
        with sharding(1):
            return WhatsUpSystem(dataset, WhatsUpConfig(f_like=5), seed=3)

    def test_pending_counter_matches_inbox_contents(self):
        system = self._system()
        engine = system.engine
        seen = []

        def check(eng, cycle):
            actual = sum(
                len(copies)
                for per_node in eng._future_inboxes.values()
                for copies in per_node.values()
            )
            seen.append((eng.pending_item_messages(), actual))

        engine.add_observer(check)
        engine.run(12)
        assert seen and all(counter == actual for counter, actual in seen)

    def test_pending_counter_drains_to_zero(self):
        system = self._system()
        system.run(12, drain=True)
        assert system.engine.pending_item_messages() == 0
        assert not system.engine._future_inboxes

    def test_alive_cache_tracks_direct_flag_writes(self):
        system = self._system()
        engine = system.engine
        all_ids = engine.alive_node_ids()
        engine.nodes[3].alive = False  # direct write, as churn models do
        assert 3 not in engine.alive_node_ids()
        engine.nodes[3].alive = True
        assert sorted(engine.alive_node_ids()) == sorted(all_ids)


class TestCopyOnWriteProfiles:
    def test_clone_mutation_does_not_leak_to_parent(self):
        parent = make_item_profile({1: 0.5, 2: 1.0})
        clone = parent.copy()
        clone.set(9, 0, 1.0)
        assert 9 not in parent
        parent.set(10, 0, 0.25)
        assert 10 not in clone
        assert clone.score_of(1) == 0.5

    def test_unmutated_clone_shares_storage(self):
        parent = make_item_profile({1: 0.5})
        clone = parent.copy()
        assert clone._scores is parent._scores  # COW: no copy until write

    def test_purge_fast_path_skips_scan_but_stays_correct(self):
        profile = make_item_profile({})
        profile.set(1, 10, 1.0)
        profile.set(2, 20, 0.5)
        assert profile.purge_older_than(5) == 0  # below min ts: no-op
        assert profile.purge_older_than(15) == 1
        assert 1 not in profile and 2 in profile
        assert profile.purge_older_than(15) == 0
