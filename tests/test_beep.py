"""Unit tests for the BEEP forwarder (paper Algorithm 2, Section III)."""

from __future__ import annotations

import numpy as np

from repro.core.beep import BeepForwarder
from repro.core.config import WhatsUpConfig
from repro.core.news import ItemCopy, NewsItem
from repro.core.profiles import FrozenProfile
from repro.core.similarity import wup_similarity
from repro.gossip.views import View, ViewEntry
from tests.conftest import make_item_profile


class FakeEngine:
    """Captures sends and forward logs."""

    def __init__(self):
        self.sent = []  # (sender, target, copy, via_like)
        self.forwards = []  # (node, copy, liked, n_targets)

    def send_item(self, sender, target, copy, via_like):
        self.sent.append((sender, target, copy, via_like))

    def log_forward(self, node, copy, liked, n_targets):
        self.forwards.append((node, copy, liked, n_targets))


def view_of(owner: int, specs: dict[int, tuple[int, ...]], capacity: int = 30) -> View:
    """Build a view from {node_id: liked item ids}."""
    v = View(capacity, owner_id=owner)
    for nid, likes in specs.items():
        v.upsert(
            ViewEntry(
                node_id=nid,
                address=f"10.0.0.{nid}",
                profile=FrozenProfile({i: 1.0 for i in likes}, is_binary=True),
                timestamp=0,
            )
        )
    return v


def fresh_copy(dislikes: int = 0, scores: dict[int, float] | None = None) -> ItemCopy:
    item = NewsItem.publish(source=0, created_at=0, title="t")
    profile = make_item_profile(scores or {})
    return ItemCopy(item=item, profile=profile, dislikes=dislikes, hops=2)


def forwarder(**cfg_kwargs) -> BeepForwarder:
    cfg = WhatsUpConfig(**({"f_like": 3} | cfg_kwargs))
    return BeepForwarder(cfg, wup_similarity, np.random.default_rng(0))


class TestLikePath:
    def test_forwards_flike_targets_from_wup_view(self):
        fw = forwarder(f_like=3)
        wup = view_of(0, {i: (1,) for i in range(1, 10)})
        rps = view_of(0, {})
        eng = FakeEngine()
        n = fw.forward(0, fresh_copy(), True, wup, rps, eng)
        assert n == 3
        assert len(eng.sent) == 3
        assert all(via for *_, via in eng.sent)
        targets = {t for _, t, _, _ in eng.sent}
        assert len(targets) == 3 and targets <= set(range(1, 10))

    def test_small_view_caps_targets(self):
        fw = forwarder(f_like=5)
        wup = view_of(0, {1: (1,), 2: (1,)})
        eng = FakeEngine()
        n = fw.forward(0, fresh_copy(), True, wup, view_of(0, {}), eng)
        assert n == 2

    def test_empty_view_sends_nothing(self):
        fw = forwarder()
        eng = FakeEngine()
        n = fw.forward(0, fresh_copy(), True, view_of(0, {}), view_of(0, {}), eng)
        assert n == 0
        assert not eng.sent and not eng.forwards

    def test_clones_are_independent_and_hop_incremented(self):
        fw = forwarder(f_like=2)
        wup = view_of(0, {1: (1,), 2: (1,)})
        eng = FakeEngine()
        copy = fresh_copy(scores={9: 1.0})
        fw.forward(0, copy, True, wup, view_of(0, {}), eng)
        clones = [c for _, _, c, _ in eng.sent]
        assert all(c.hops == copy.hops + 1 for c in clones)
        clones[0].profile.set(5, 0, 1.0)
        assert 5 not in clones[1].profile
        assert 5 not in copy.profile

    def test_like_does_not_touch_dislike_counter(self):
        fw = forwarder(f_like=2)
        wup = view_of(0, {1: (1,), 2: (1,)})
        eng = FakeEngine()
        fw.forward(0, fresh_copy(dislikes=2), True, wup, view_of(0, {}), eng)
        assert all(c.dislikes == 2 for _, _, c, _ in eng.sent)

    def test_forward_logged_with_realised_fanout(self):
        fw = forwarder(f_like=4)
        wup = view_of(0, {1: (1,), 2: (1,)})
        eng = FakeEngine()
        fw.forward(0, fresh_copy(), True, wup, view_of(0, {}), eng)
        assert eng.forwards == [(0, eng.forwards[0][1], True, 2)]


class TestDislikePath:
    def test_selects_most_similar_rps_node(self):
        fw = forwarder()
        # item profile likes items {1, 2}; candidate 7 matches best
        copy = fresh_copy(scores={1: 1.0, 2: 1.0})
        rps = view_of(0, {5: (9,), 6: (1, 50, 51), 7: (1, 2)})
        eng = FakeEngine()
        n = fw.forward(0, copy, False, view_of(0, {}), rps, eng)
        assert n == 1
        assert eng.sent[0][1] == 7
        assert eng.sent[0][3] is False  # via_like

    def test_dislike_counter_incremented_on_clone_only(self):
        fw = forwarder()
        copy = fresh_copy(dislikes=1, scores={1: 1.0})
        rps = view_of(0, {5: (1,)})
        eng = FakeEngine()
        fw.forward(0, copy, False, view_of(0, {}), rps, eng)
        assert eng.sent[0][2].dislikes == 2
        assert copy.dislikes == 1  # local copy untouched

    def test_ttl_reached_drops(self):
        fw = forwarder(beep_ttl=4)
        copy = fresh_copy(dislikes=4, scores={1: 1.0})
        rps = view_of(0, {5: (1,)})
        eng = FakeEngine()
        n = fw.forward(0, copy, False, view_of(0, {}), rps, eng)
        assert n == 0 and not eng.sent

    def test_ttl_zero_disables_dislike_path(self):
        fw = forwarder(beep_ttl=0)
        rps = view_of(0, {5: (1,)})
        eng = FakeEngine()
        n = fw.forward(0, fresh_copy(scores={1: 1.0}), False, view_of(0, {}), rps, eng)
        assert n == 0

    def test_empty_rps_view_sends_nothing(self):
        fw = forwarder()
        eng = FakeEngine()
        n = fw.forward(
            0, fresh_copy(scores={1: 1.0}), False, view_of(0, {}), view_of(0, {}), eng
        )
        assert n == 0

    def test_no_similarity_still_forwards_somewhere(self):
        # serendipity: even with zero-similarity candidates the item moves on
        fw = forwarder()
        copy = fresh_copy(scores={1: 1.0})
        rps = view_of(0, {5: (99,), 6: (98,)})
        eng = FakeEngine()
        n = fw.forward(0, copy, False, view_of(0, {}), rps, eng)
        assert n == 1
        assert eng.sent[0][1] in (5, 6)

    def test_f_dislike_ablation_multiple_targets(self):
        fw = forwarder(f_dislike=2)
        copy = fresh_copy(scores={1: 1.0})
        rps = view_of(0, {5: (1,), 6: (1, 2), 7: (50,)})
        eng = FakeEngine()
        n = fw.forward(0, copy, False, view_of(0, {}), rps, eng)
        assert n == 2
        assert {t for _, t, _, _ in eng.sent} == {5, 6}

    def test_random_tiebreak_covers_all_tied_candidates(self):
        # equal-similarity candidates must all get a chance (a fixed
        # tie-break would permanently starve fresh nodes)
        winners = set()
        for seed in range(30):
            fw = BeepForwarder(
                WhatsUpConfig(f_like=3), wup_similarity, np.random.default_rng(seed)
            )
            copy = fresh_copy(scores={1: 1.0})
            rps = view_of(0, {8: (1,), 3: (1,)})
            eng = FakeEngine()
            fw.forward(0, copy, False, view_of(0, {}), rps, eng)
            winners.add(eng.sent[0][1])
        assert winners == {3, 8}

    def test_higher_similarity_still_wins_over_random_ties(self):
        fw = forwarder()
        copy = fresh_copy(scores={1: 1.0, 2: 1.0})
        rps = view_of(0, {5: (1,), 6: (1, 2), 7: (9,)})
        eng = FakeEngine()
        fw.forward(0, copy, False, view_of(0, {}), rps, eng)
        assert eng.sent[0][1] == 6


class TestAmplificationContrast:
    def test_liked_items_fan_out_wider_than_disliked(self):
        fw = forwarder(f_like=6)
        wup = view_of(0, {i: (1,) for i in range(1, 20)})
        rps = view_of(0, {i: (1,) for i in range(20, 40)})
        eng = FakeEngine()
        n_like = fw.forward(0, fresh_copy(scores={1: 1.0}), True, wup, rps, eng)
        n_dislike = fw.forward(0, fresh_copy(scores={1: 1.0}), False, wup, rps, eng)
        assert n_like == 6 and n_dislike == 1
